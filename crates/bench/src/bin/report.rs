//! Renders the measured numbers in `results/*.jsonl` as the markdown
//! tables EXPERIMENTS.md embeds. Run after the experiment binaries:
//!
//! `cargo run --release -p nebula-bench --bin report`

use nebula_bench::results_dir;
use serde_json::Value;
use std::collections::BTreeMap;

/// Per-strategy `(comm MiB, rounds to adapt)` cells of a fig7 table row.
type MibRounds = BTreeMap<String, (f64, u64)>;

fn read(experiment: &str) -> Vec<Value> {
    let path = results_dir().join(format!("{experiment}.jsonl"));
    let Ok(text) = std::fs::read_to_string(&path) else {
        return Vec::new();
    };
    text.lines().filter_map(|l| serde_json::from_str(l).ok()).collect()
}

fn table1() {
    let records = read("table1");
    if records.is_empty() {
        return;
    }
    println!("### Table 1 (measured)\n");
    println!("| Task | Model | Partition | NA | LA | AN | FA | HFL | Nebula |");
    println!("|---|---|---|---|---|---|---|---|---|");
    // Group by (task, partition) preserving insertion order via Vec.
    let mut rows: Vec<(String, String, String, BTreeMap<String, f64>)> = Vec::new();
    for r in &records {
        let task = r["task"].as_str().unwrap_or("?").to_string();
        let model = r["model"].as_str().unwrap_or("?").to_string();
        let part = r["partition"].as_str().unwrap_or("?").to_string();
        let strat = r["strategy"].as_str().unwrap_or("?").to_string();
        let acc = r["accuracy"].as_f64().unwrap_or(f64::NAN);
        if let Some(row) = rows.iter_mut().find(|(t, _, p, _)| *t == task && *p == part) {
            row.3.insert(strat, acc);
        } else {
            let mut m = BTreeMap::new();
            m.insert(strat, acc);
            rows.push((task, model, part, m));
        }
    }
    for (task, model, part, accs) in rows {
        // Bold the row's actual winner — presenting Nebula as best on rows
        // it did not win would misreport the data.
        let best = accs.values().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
        let cell = |k: &str| {
            accs.get(k).map_or("—".into(), |&v| {
                if (v - best).abs() < 1e-9 {
                    format!("**{v:.2}**")
                } else {
                    format!("{v:.2}")
                }
            })
        };
        println!(
            "| {task} | {model} | {part} | {} | {} | {} | {} | {} | {} |",
            cell("NA"),
            cell("LA"),
            cell("AN"),
            cell("FA"),
            cell("HFL"),
            cell("Nebula"),
        );
    }
    println!();
}

fn fig7() {
    let records = read("fig7");
    if records.is_empty() {
        return;
    }
    println!("### Fig 7 (measured): MiB to adapt, with rounds in parentheses\n");
    println!("| Task | Partition | FA | HFL | Nebula | FA/Nebula | HFL/Nebula |");
    println!("|---|---|---|---|---|---|---|");
    let mut rows: Vec<(String, String, MibRounds)> = Vec::new();
    for r in &records {
        let task = r["task"].as_str().unwrap_or("?").to_string();
        let part = r["partition"].as_str().unwrap_or("?").to_string();
        let strat = r["strategy"].as_str().unwrap_or("?").to_string();
        let mib = r["comm_mib"].as_f64().unwrap_or(f64::NAN);
        let rounds = r["rounds_to_adapt"].as_u64().unwrap_or(0);
        if let Some(row) = rows.iter_mut().find(|(t, p, _)| *t == task && *p == part) {
            row.2.insert(strat, (mib, rounds));
        } else {
            let mut m = BTreeMap::new();
            m.insert(strat, (mib, rounds));
            rows.push((task, part, m));
        }
    }
    let mut fa_factors = Vec::new();
    let mut hfl_factors = Vec::new();
    for (task, part, v) in rows {
        let get = |k: &str| v.get(k).copied().unwrap_or((f64::NAN, 0));
        let (fa, far) = get("FA");
        let (hfl, hr) = get("HFL");
        let (nb, nr) = get("Nebula");
        let fa_x = fa / nb.max(1e-9);
        let hfl_x = hfl / nb.max(1e-9);
        fa_factors.push(fa_x);
        hfl_factors.push(hfl_x);
        println!(
            "| {task} | {part} | {fa:.1} ({far}) | {hfl:.1} ({hr}) | {nb:.1} ({nr}) | {fa_x:.2}× | {hfl_x:.2}× |"
        );
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "\nMean Nebula reduction: {:.2}× vs FedAvg, {:.2}× vs HeteroFL (paper: 4.60× / 2.76×).\n",
        mean(&fa_factors),
        mean(&hfl_factors)
    );
}

fn fig89() {
    let records = read("fig8_fig9");
    if records.is_empty() {
        return;
    }
    println!("### Figs 8–9 (measured): Nebula(m1) reduction factors vs the full model\n");
    println!("| Task | Device | Mem reduction | Latency reduction |");
    println!("|---|---|---|---|");
    // index (task, device) -> system -> (mem, lat)
    let mut map: BTreeMap<(String, String), BTreeMap<String, (f64, f64)>> = BTreeMap::new();
    for r in &records {
        let key =
            (r["task"].as_str().unwrap_or("?").to_string(), r["device"].as_str().unwrap_or("?").to_string());
        map.entry(key).or_default().insert(
            r["system"].as_str().unwrap_or("?").to_string(),
            (
                r["train_mem_bytes"].as_f64().unwrap_or(f64::NAN),
                r["train_latency_ms"].as_f64().unwrap_or(f64::NAN),
            ),
        );
    }
    for ((task, device), systems) in map {
        let Some(&(fm, fl)) = systems.get("Full model") else { continue };
        let Some(&(nm, nl)) = systems.get("Nebula (m1)") else { continue };
        println!("| {task} | {device} | {:.2}× | {:.2}× |", fm / nm, fl / nl);
    }
    println!();
}

fn fig1011() {
    let records = read("fig10_fig11");
    if records.is_empty() {
        return;
    }
    println!("### Figs 10–11 (measured): mean accuracy / mean adaptation time over drift slots\n");
    println!("| Task | Strategy | Mean accuracy | Adapt time (ms) |");
    println!("|---|---|---|---|");
    for r in &records {
        println!(
            "| {} | {} | {:.3} | {:.0} |",
            r["task"].as_str().unwrap_or("?"),
            r["strategy"].as_str().unwrap_or("?"),
            r["mean_accuracy"].as_f64().unwrap_or(f64::NAN),
            r["mean_adapt_time_ms"].as_f64().unwrap_or(f64::NAN),
        );
    }
    println!();
}

fn fig12() {
    let records = read("fig12");
    if records.is_empty() {
        return;
    }
    println!("### Fig 12 (measured): mean random-sub-model accuracy by training mode\n");
    println!("| Panel | w/o enhancing | w/ enhancing | best selected |");
    println!("|---|---|---|---|");
    let mut panels: BTreeMap<String, (Vec<f64>, Vec<f64>, f64)> = BTreeMap::new();
    for r in &records {
        let panel = r["panel"].as_str().unwrap_or("?").to_string();
        let acc = r["accuracy"].as_f64().unwrap_or(f64::NAN);
        let entry = panels.entry(panel).or_insert((Vec::new(), Vec::new(), 0.0));
        match r["series"].as_str().unwrap_or("?") {
            "w/o enhancing" => entry.0.push(acc),
            "w/ enhancing" => entry.1.push(acc),
            _ => entry.2 = entry.2.max(acc),
        }
    }
    for (panel, (plain, enhanced, best)) in panels {
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        println!("| {panel} | {:.3} | {:.3} | {best:.3} |", mean(&plain), mean(&enhanced));
    }
    println!();
}

fn fig13() {
    let records = read("fig13");
    if records.is_empty() {
        return;
    }
    println!("### Fig 13 (measured)\n");
    for (panel, title) in [
        ("a_size_ratio", "accuracy vs max sub-model size ratio"),
        ("b_granularity", "accuracy vs modules per layer"),
        ("c_participants", "adaptation time (s) vs participants"),
    ] {
        println!("**{title}**\n");
        let mut series: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
        for r in records.iter().filter(|r| r["panel"].as_str() == Some(panel)) {
            series
                .entry(r["series"].as_str().unwrap_or("?").to_string())
                .or_default()
                .push((r["x"].as_f64().unwrap_or(0.0), r["y"].as_f64().unwrap_or(0.0)));
        }
        for (name, pts) in series {
            let cells: Vec<String> = pts.iter().map(|(x, y)| format!("{x}→{y:.3}")).collect();
            println!("- {name}: {}", cells.join(", "));
        }
        println!();
    }
}

fn ablations() {
    let records = read("ablations");
    if records.is_empty() {
        return;
    }
    println!("### Ablations (measured)\n");
    println!("| Study | Variant | Metric | Value |");
    println!("|---|---|---|---|");
    for r in &records {
        println!(
            "| {} | {} | {} | {:.4} |",
            r["study"].as_str().unwrap_or("?"),
            r["variant"].as_str().unwrap_or("?"),
            r["metric"].as_str().unwrap_or("?"),
            r["value"].as_f64().unwrap_or(f64::NAN),
        );
    }
    println!();
}

fn main() {
    table1();
    fig7();
    fig89();
    fig1011();
    fig12();
    fig13();
    ablations();
}
