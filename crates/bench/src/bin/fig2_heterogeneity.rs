//! **Figure 2** — heterogeneous on-device resources and the cost of
//! on-device training.
//!
//! * (a) RAM-capacity histogram over a sampled device population;
//! * (b) inference-latency distribution (MobileNetV3-class workload),
//!   mobile SoCs vs IoT boards;
//! * (c) model footprints: disk size, inference/training peak memory and
//!   latency for the three CNN-scale task models, on a Jetson-class and a
//!   Pi-class device.
//!
//! Run: `cargo run --release -p nebula-bench --bin fig2_heterogeneity`

use nebula_bench::{emit_record, print_row};
use nebula_core::modular_config_for;
use nebula_data::TaskPreset;
use nebula_modular::cost::CostModel;
use nebula_sim::latency::{inference_latency_ms, training_batch_latency_ms};
use nebula_sim::{DeviceClass, DeviceResources, ResourceSampler};
use nebula_tensor::NebulaRng;
use serde::Serialize;

/// MobileNetV3-Large forward cost (≈219 M MACs), the workload behind the
/// paper's Fig. 2(b) latency statistics.
const MOBILENET_FLOPS: u64 = 219_000_000;

#[derive(Serialize)]
struct HistRecord {
    experiment: &'static str,
    panel: &'static str,
    bucket: String,
    value: f64,
}

fn main() {
    let mut rng = NebulaRng::seed(2024);
    let pop = ResourceSampler::default().sample_population(1000, &mut rng);

    // ---- (a) RAM histogram --------------------------------------------
    println!("Fig 2(a): on-device RAM capacity histogram (1000 devices)");
    let buckets = [(0.0, 2.0), (2.0, 4.0), (4.0, 6.0), (6.0, 8.0), (8.0, 10.0), (10.0, 12.0), (12.0, 99.0)];
    let labels = ["<2", "2~4", "4~6", "6~8", "8~10", "10~12", ">12"];
    for ((lo, hi), label) in buckets.iter().zip(labels) {
        let frac = pop
            .iter()
            .filter(|d| {
                let gb = d.ram_bytes as f64 / 1e9;
                gb >= *lo && gb < *hi
            })
            .count() as f64
            / pop.len() as f64;
        println!("  {label:>6} GB : {frac:.3}  {}", "#".repeat((frac * 100.0) as usize));
        emit_record(
            "fig2",
            &HistRecord { experiment: "fig2", panel: "a_ram", bucket: label.to_string(), value: frac },
        );
    }

    // ---- (b) inference latency CDF -------------------------------------
    println!("\nFig 2(b): MobileNetV3 inference latency CDF (ms)");
    let latencies = |class: DeviceClass| -> Vec<f64> {
        let mut v: Vec<f64> = pop
            .iter()
            .filter(|d| d.class == class)
            .map(|d| inference_latency_ms(d, MOBILENET_FLOPS))
            .collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v
    };
    for (class, name) in [(DeviceClass::MobileSoc, "Mobile SoCs"), (DeviceClass::Iot, "IoT devices")] {
        let v = latencies(class);
        let q = |p: f64| v[((v.len() - 1) as f64 * p) as usize];
        println!(
            "  {name:<12}: p10 {:>8.1}  p50 {:>8.1}  p90 {:>8.1}  p99 {:>8.1}",
            q(0.10),
            q(0.50),
            q(0.90),
            q(0.99)
        );
        for (p, label) in [(0.10, "p10"), (0.50, "p50"), (0.90, "p90"), (0.99, "p99")] {
            emit_record(
                "fig2",
                &HistRecord {
                    experiment: "fig2",
                    panel: "b_latency",
                    bucket: format!("{name}/{label}"),
                    value: q(p),
                },
            );
        }
    }

    // ---- (c) model footprints -------------------------------------------
    println!("\nFig 2(c): model footprints and latency (batch 16)");
    let nano = DeviceResources {
        class: DeviceClass::MobileSoc,
        ram_bytes: 4_000_000_000,
        flops_per_sec: 5.4e9,
        bandwidth_bps: 2e7,
        budget_ratio: 0.5,
        background_procs: 0,
    };
    let pi = DeviceResources {
        class: DeviceClass::Iot,
        ram_bytes: 2_000_000_000,
        flops_per_sec: 5.4e8,
        bandwidth_bps: 2e7,
        budget_ratio: 0.25,
        background_procs: 0,
    };
    let widths = [14usize, 10, 12, 12, 12, 14, 14];
    print_row(
        ["Model", "Disk(KB)", "InfMem(KB)", "TrnMem(KB)", "Inf(ms)", "Train@Nano", "Train@Pi"]
            .map(String::from)
            .as_ref(),
        &widths,
    );
    for task in [TaskPreset::Cifar10, TaskPreset::Cifar100, TaskPreset::SpeechCommands] {
        let cm = CostModel::new(modular_config_for(task));
        let full = cm.full_model();
        let inf_nano = inference_latency_ms(&nano, full.flops);
        let train_nano = training_batch_latency_ms(&nano, full.flops, 16);
        let train_pi = training_batch_latency_ms(&pi, full.flops, 16);
        print_row(
            &[
                task.model_name().to_string(),
                format!("{}", full.comm_bytes / 1024),
                format!("{}", full.inference_mem_bytes / 1024),
                format!("{}", full.training_mem_bytes / 1024),
                format!("{inf_nano:.2}"),
                format!("{train_nano:.2}"),
                format!("{train_pi:.2}"),
            ],
            &widths,
        );
        emit_record(
            "fig2",
            &HistRecord {
                experiment: "fig2",
                panel: "c_train_vs_inf_mem_ratio",
                bucket: task.model_name().to_string(),
                value: full.training_mem_bytes as f64 / full.inference_mem_bytes as f64,
            },
        );
    }
    println!("\n(training-vs-inference memory ratios appended to results/fig2.jsonl)");
}
