//! **Figures 8 & 9** — memory footprint and per-batch training latency
//! during model adaptation, on a Jetson-class and a Pi-class device, for:
//! the full model (FedAvg), HeteroFL's width-scaled sub-model, and
//! Nebula's derived sub-models under the two data partitions (m1 / m2).
//!
//! These are cost-model quantities (the paper measures them on hardware);
//! no training is needed, so this binary is fast.
//!
//! Run: `cargo run --release -p nebula-bench --bin fig8_fig9_footprint`

use nebula_baselines::ratio_for_budget;
use nebula_bench::{emit_record, print_row, Scale, TaskRow};
use nebula_core::{derive_submodel, modular_config_for, ResourceProfile};
use nebula_data::TaskPreset;
use nebula_modular::cost::CostModel;
use nebula_nn::Layer;
use nebula_sim::latency::training_batch_latency_ms;
use nebula_sim::{DeviceClass, DeviceResources};
use serde::Serialize;

#[derive(Serialize)]
struct FootprintRecord {
    experiment: &'static str,
    task: String,
    device: &'static str,
    system: String,
    params: u64,
    train_mem_bytes: u64,
    train_latency_ms: f64,
}

fn device(class: DeviceClass) -> DeviceResources {
    match class {
        DeviceClass::MobileSoc => DeviceResources {
            class,
            ram_bytes: 4_000_000_000,
            flops_per_sec: 5.4e9,
            bandwidth_bps: 2e7,
            budget_ratio: 0.5,
            background_procs: 0,
        },
        DeviceClass::Iot => DeviceResources {
            class,
            ram_bytes: 2_000_000_000,
            flops_per_sec: 5.4e8,
            bandwidth_bps: 2e7,
            budget_ratio: 0.2,
            background_procs: 0,
        },
    }
}

fn main() {
    let _ = Scale::from_args();
    println!("Figs 8 & 9: training memory footprint and per-batch latency during adaptation\n");
    let widths = [14usize, 12, 14, 12, 14, 14];
    print_row(
        ["Task", "Device", "System", "Params(K)", "TrnMem(KB)", "Batch(ms)"].map(String::from).as_ref(),
        &widths,
    );

    for row in [
        TaskRow { task: TaskPreset::Har, skew_m: None },
        TaskRow { task: TaskPreset::Cifar10, skew_m: Some(2) },
        TaskRow { task: TaskPreset::Cifar100, skew_m: Some(10) },
        TaskRow { task: TaskPreset::SpeechCommands, skew_m: Some(5) },
    ] {
        let mcfg = modular_config_for(row.task);
        let cost = CostModel::new(mcfg.clone());
        let full_mod = cost.full_model();

        // Dense full model (FedAvg / LA reference).
        let scfg = row.strategy_config(Scale::quick());
        let dense = scfg.dense_model(1);
        let dense_params = dense.param_count() as u64;

        // The two Nebula partitions: m1/m2 drive different importance
        // concentration, which we approximate with the knapsack under the
        // device budget at two cap levels (m1 = tighter sub-task → fewer
        // modules suffice).
        for dev_class in [DeviceClass::MobileSoc, DeviceClass::Iot] {
            let dev = device(dev_class);
            let budget = ResourceProfile {
                mem_bytes: (full_mod.training_mem_bytes as f64 * dev.budget_ratio as f64) as u64,
                flops: (full_mod.flops as f64 * dev.budget_ratio as f64) as u64,
                comm_bytes: (full_mod.comm_bytes as f64 * dev.budget_ratio as f64) as u64,
            };
            let uniform =
                vec![vec![1.0 / mcfg.modules_per_layer as f32; mcfg.modules_per_layer]; mcfg.num_layers];
            let m1_cap = (mcfg.modules_per_layer / 4).max(2);
            let m2_cap = (mcfg.modules_per_layer / 2).max(3);
            let nebula_m1 = cost.submodel(&derive_submodel(&cost, &uniform, &budget, Some(m1_cap)).spec);
            let nebula_m2 = cost.submodel(&derive_submodel(&cost, &uniform, &budget, Some(m2_cap)).spec);
            let hfl_ratio =
                ratio_for_budget(&dense, (dense_params as f64 * dev.budget_ratio as f64) as usize);
            let hfl_params = dense.active_params(hfl_ratio) as u64;

            let rows: Vec<(String, u64, u64)> = vec![
                ("Full model".to_string(), dense_params, 3 * dense_params * 4),
                ("HeteroFL".to_string(), hfl_params, 3 * hfl_params * 4),
                ("Nebula (m1)".to_string(), nebula_m1.params, nebula_m1.training_mem_bytes),
                ("Nebula (m2)".to_string(), nebula_m2.params, nebula_m2.training_mem_bytes),
            ];
            for (system, params, mem) in rows {
                let latency = training_batch_latency_ms(&dev, params, 16);
                print_row(
                    &[
                        row.task.name().to_string(),
                        dev.class.name().to_string(),
                        system.clone(),
                        format!("{}", params / 1000),
                        format!("{}", mem / 1024),
                        format!("{latency:.2}"),
                    ],
                    &widths,
                );
                emit_record(
                    "fig8_fig9",
                    &FootprintRecord {
                        experiment: "fig8_fig9",
                        task: row.task.name().to_string(),
                        device: dev.class.name(),
                        system,
                        params,
                        train_mem_bytes: mem,
                        train_latency_ms: latency,
                    },
                );
            }
        }
    }
    println!(
        "\n(Nebula-vs-full reduction factors are computed in EXPERIMENTS.md from results/fig8_fig9.jsonl)"
    );
}
