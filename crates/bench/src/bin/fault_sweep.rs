//! **Fault sweep** — graceful degradation of the collaborative systems
//! under injected edge faults (DESIGN.md "Fault model & robust rounds").
//!
//! Protocol: each grid point installs a seeded [`FaultPlan`] (dropout ×
//! straggler rate, plus a fixed corruption rate) on an otherwise identical
//! world, then runs the standard one-step adaptation experiment per
//! strategy. Nebula's robust round loop (deadline, retry accounting,
//! sanitize gate, staleness discount) faces the same faults as FedAvg and
//! HeteroFL, which have no per-update gate — a corrupted client poisons
//! their averaged weights directly.
//!
//! Run: `cargo run --release -p nebula-bench --bin fault_sweep [--quick]`

use nebula_bench::{emit_record, print_row, Scale, TaskRow};
use nebula_sim::experiment::{run_adaptation_step, ExperimentConfig};
use nebula_sim::{
    AdaptStrategy, AdversaryPlan, CorruptionKind, FaultPlan, FedAvgStrategy, HeteroFlStrategy,
    NebulaStrategy, RoundPolicy,
};
use serde::Serialize;

#[derive(Serialize)]
struct FaultRecord {
    experiment: &'static str,
    task: String,
    strategy: String,
    dropout_prob: f64,
    straggler_prob: f64,
    corrupt_prob: f64,
    /// P(an upload frame is corrupted in transit → CRC-rejected).
    frame_corrupt_prob: f64,
    /// Accuracy before the adaptation step (pre-trained model).
    accuracy_before: f32,
    /// Accuracy after adapting under faults; -1 when the model was
    /// poisoned to NaN (JSON has no NaN literal).
    accuracy_after: f32,
    poisoned: bool,
    comm_mib: f64,
    retry_mib: f64,
    sampled: u64,
    participated: u64,
    dropped: u64,
    deadline_dropped: u64,
    link_dropped: u64,
    rejected: u64,
    retried: u64,
    stale: u64,
    /// Upload frames rejected by the wire CRC check.
    corrupt_frames: u64,
}

fn plan(dropout: f64, straggler: f64, corrupt: f64, frame_corrupt: f64) -> FaultPlan {
    FaultPlan {
        seed: 0xFA17,
        dropout_prob: dropout,
        crash_prob: 0.02,
        straggler_prob: straggler,
        straggler_slowdown: 20.0,
        link_flake_prob: 0.1,
        bandwidth_collapse: 8.0,
        corrupt_prob: corrupt,
        corruption: CorruptionKind::NanPoison,
        explode_scale: 1e4,
        frame_corrupt_prob: frame_corrupt,
        adversary: AdversaryPlan::none(),
    }
}

fn main() {
    let scale = Scale::from_args();
    let seed = 42u64;
    let corrupt = 0.08; // ~2 corrupted updates per 25-device round
    let row = TaskRow::table1_rows()[1]; // CIFAR-10, m=2

    // (dropout, straggler, frame_corrupt): the original dropout/straggler
    // grid plus a transit-corruption sweep exercising the CRC-reject path.
    let grid: [(f64, f64, f64); 9] = [
        (0.0, 0.0, 0.0),
        (0.15, 0.0, 0.0),
        (0.3, 0.0, 0.0),
        (0.5, 0.0, 0.0),
        (0.0, 0.3, 0.0),
        (0.3, 0.3, 0.0),
        (0.0, 0.0, 0.1),
        (0.0, 0.0, 0.3),
        (0.3, 0.3, 0.1),
    ];

    println!("Fault sweep: adaptation under dropout/straggler/corruption\n");
    let widths = [9usize, 8, 8, 8, 9, 9, 9, 7, 7, 7, 7, 7];
    print_row(
        [
            "Strategy",
            "Drop",
            "Straggle",
            "FrmCor",
            "AccBefore",
            "AccAfter",
            "Comm(MiB)",
            "Part",
            "Lost",
            "Rej",
            "Retry",
            "BadFrm",
        ]
        .map(String::from)
        .as_ref(),
        &widths,
    );

    for &(dropout, straggler, frame_corrupt) in &grid {
        let strategies: Vec<Box<dyn AdaptStrategy>> = vec![
            Box::new(FedAvgStrategy::new(row.strategy_config(scale), seed)),
            Box::new(HeteroFlStrategy::new(row.strategy_config(scale), seed)),
            Box::new(NebulaStrategy::new(row.strategy_config(scale), seed)),
        ];
        for mut s in strategies {
            let mut world = row.world(scale, None, seed);
            world.set_fault_plan(plan(dropout, straggler, corrupt, frame_corrupt));
            world.set_round_policy(RoundPolicy { deadline_factor: Some(4.0), ..RoundPolicy::default() });
            let exp = ExperimentConfig { eval_devices: scale.eval_devices, seed };
            let out = run_adaptation_step(s.as_mut(), &mut world, &exp);

            let poisoned = !out.accuracy_after.is_finite();
            let acc_after = if poisoned { -1.0 } else { out.accuracy_after };
            let f = out.faults;
            print_row(
                &[
                    out.strategy.clone(),
                    format!("{dropout:.2}"),
                    format!("{straggler:.2}"),
                    format!("{frame_corrupt:.2}"),
                    format!("{:.3}", out.accuracy_before),
                    if poisoned { "NaN".to_string() } else { format!("{acc_after:.3}") },
                    format!("{:.1}", out.comm.total_mib()),
                    format!("{}", f.participated),
                    format!("{}", f.lost()),
                    format!("{}", f.rejected),
                    format!("{}", f.retried),
                    format!("{}", f.corrupt_frames),
                ],
                &widths,
            );
            emit_record(
                "fault_sweep",
                &FaultRecord {
                    experiment: "fault_sweep",
                    task: row.task.name().to_string(),
                    strategy: out.strategy.clone(),
                    dropout_prob: dropout,
                    straggler_prob: straggler,
                    corrupt_prob: corrupt,
                    frame_corrupt_prob: frame_corrupt,
                    accuracy_before: out.accuracy_before,
                    accuracy_after: acc_after,
                    poisoned,
                    comm_mib: out.comm.total_mib(),
                    retry_mib: out.comm.retry_bytes as f64 / (1024.0 * 1024.0),
                    sampled: f.sampled,
                    participated: f.participated,
                    dropped: f.dropped,
                    deadline_dropped: f.deadline_dropped,
                    link_dropped: f.link_dropped,
                    rejected: f.rejected,
                    retried: f.retried,
                    stale: f.stale,
                    corrupt_frames: f.corrupt_frames,
                },
            );
        }
    }
}
