//! Serving-plane sweep (DESIGN.md §15): the same toy Nebula run driven
//! through every transport — the historical in-process path, the
//! [`nebula_core::Loopback`] transport, and real coordinator/worker
//! deployments over Unix-domain sockets and TCP (two workers each) —
//! comparing wall-clock round latency and comm bytes, written to
//! `results/serve_sweep.jsonl` (one record per transport) and
//! `BENCH_SERVE.json` (summary + gate verdict) at the repo root.
//!
//! The transports are required to be *bit-identical*: under the `Raw`
//! codec a remote worker executes exactly the computation the
//! in-process rayon pool would, so the only thing allowed to differ is
//! wall-clock time. The sweep digests each trajectory (an FNV fold of
//! the final cloud parameter bits) and the per-round comm accounting;
//! `--check` exits nonzero if any transport disagrees with in-process
//! on either, or if socket overhead blows past 25x the loopback round
//! time (a sanity bound, not a perf target — the toy model spends
//! microseconds training, so framing dominates).
//!
//! Usage: `serve_sweep [--quick] [--check]`.
//! `--quick` drops to 2 rounds for CI.

use std::path::PathBuf;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use nebula_core::{Loopback, ModularRunner, Transport};
use nebula_data::{PartitionSpec, Partitioner, SynthSpec, Synthesizer};
use nebula_modular::ModularConfig;
use nebula_nn::Layer;
use nebula_serve::worker::{run_worker, WorkerConfig};
use nebula_serve::{Coordinator, Endpoint, ServeConfig, WorkerRunConfig};
use nebula_sim::strategy::StrategyConfig;
use nebula_sim::{AdaptStrategy, NebulaStrategy, ResourceSampler, SimWorld};
use nebula_tensor::NebulaRng;
use serde::Serialize;

/// One transport's trajectory and timings.
#[derive(Clone, Debug, Serialize)]
struct CaseRecord {
    transport: String,
    rounds: usize,
    workers: usize,
    /// Mean wall-clock per round, ms.
    wall_round_ms: f64,
    /// Whole-run comm totals (identical across transports by design).
    up_bytes: u64,
    down_bytes: u64,
    participated: u64,
    /// FNV-1a fold of the final cloud parameter bit patterns.
    param_digest: u64,
}

#[derive(Serialize)]
struct Summary {
    suite: String,
    mode: String,
    cases: Vec<CaseRecord>,
    /// wall_round_ms(transport) / wall_round_ms(loopback).
    overhead_vs_loopback: Vec<Overhead>,
    check: Option<CheckVerdict>,
}

/// Round-time ratio of one transport against loopback.
#[derive(Clone, Debug, Serialize)]
struct Overhead {
    transport: String,
    x_loopback: f64,
}

#[derive(Serialize)]
struct CheckVerdict {
    passed: bool,
    failures: Vec<String>,
}

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// The serving-plane toy pin: the same world/config the nebula-serve
/// integration tests hold bit-identical across transports.
fn toy_cfg() -> StrategyConfig {
    let mut modular = ModularConfig::toy(16, 4);
    modular.gate_noise_std = 0.3;
    let mut cfg = StrategyConfig::new(modular);
    cfg.devices_per_round = 4;
    cfg.rounds_per_step = 1;
    cfg.pretrain_epochs = 1;
    cfg.proxy_samples = 100;
    cfg.local_epochs = 1;
    cfg
}

fn toy_world() -> SimWorld {
    let synth = Synthesizer::new(SynthSpec::toy(), 1);
    let spec = PartitionSpec::new(8, Partitioner::LabelSkew { m: 2 });
    SimWorld::new(synth, spec, 9, None, &ResourceSampler::default(), 5)
}

fn fnv_digest(params: &[f32]) -> u64 {
    params
        .iter()
        .fold(0xcbf2_9ce4_8422_2325u64, |h, p| (h ^ p.to_bits() as u64).wrapping_mul(0x1000_0000_01b3))
}

/// Runs `rounds` toy Nebula rounds through `transport` and digests the
/// trajectory.
fn run_case(name: &str, transport: Option<Box<dyn Transport>>, rounds: usize, workers: usize) -> CaseRecord {
    let mut world = toy_world();
    let mut s = NebulaStrategy::new(toy_cfg(), 1);
    if let Some(t) = transport {
        s.set_transport(t);
    }
    let mut rng = NebulaRng::seed(3);
    let (mut up, mut down, mut participated) = (0u64, 0u64, 0u64);
    let start = Instant::now();
    for _ in 0..rounds {
        let out = s.single_round(&mut world, &mut rng);
        up += out.stats.comm.up_bytes;
        down += out.stats.comm.down_bytes;
        participated += out.stats.faults.participated;
    }
    let wall_round_ms = start.elapsed().as_secs_f64() * 1e3 / rounds as f64;
    CaseRecord {
        transport: name.into(),
        rounds,
        workers,
        wall_round_ms,
        up_bytes: up,
        down_bytes: down,
        participated,
        param_digest: fnv_digest(&s.cloud().model().param_vector()),
    }
}

/// A live two-worker deployment over `endpoint` family `tcp`/UDS.
struct Deployment {
    coordinator: Coordinator,
    workers: Vec<thread::JoinHandle<()>>,
}

fn deploy(tcp: bool, tag: &str, n: usize) -> Deployment {
    let worker_cfg = WorkerRunConfig { modular: Some(toy_cfg().modular), ..WorkerRunConfig::default() };
    let mut cfg = ServeConfig::new(worker_cfg);
    let path = std::env::temp_dir().join(format!("serve-sweep-{tag}-{}.sock", std::process::id()));
    if tcp {
        cfg.tcp = Some("127.0.0.1:0".into());
    } else {
        cfg.uds = Some(path.clone());
    }
    let coordinator = Coordinator::bind(cfg).expect("bind coordinator");
    let endpoint = if tcp {
        Endpoint::Tcp(coordinator.tcp_addr().expect("tcp bound").to_string())
    } else {
        Endpoint::Uds(path)
    };
    let workers = (0..n)
        .map(|i| {
            let ep = endpoint.clone();
            thread::spawn(move || {
                let mut wc = WorkerConfig::new(ep);
                wc.name = format!("sweep-w{i}");
                run_worker(wc).expect("sweep worker");
            })
        })
        .collect();
    assert!(coordinator.wait_for_workers(n, Duration::from_secs(30)), "sweep workers must register");
    Deployment { coordinator, workers }
}

impl Deployment {
    fn teardown(self) {
        self.coordinator.shutdown();
        for w in self.workers {
            w.join().expect("sweep worker thread");
        }
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let check = std::env::args().any(|a| a == "--check");
    let mode = if quick { "quick" } else { "full" };
    let rounds = if quick { 2 } else { 5 };
    let workers = 2;

    let mut cases = Vec::new();
    cases.push(run_case("inproc", None, rounds, 0));

    let cfg = toy_cfg();
    let loopback: Box<dyn Transport> =
        Box::new(Loopback::new(Arc::new(ModularRunner::new(cfg.modular, cfg.wire))));
    cases.push(run_case("loopback", Some(loopback), rounds, 0));

    let uds = deploy(false, "uds", workers);
    cases.push(run_case("uds", Some(Box::new(uds.coordinator.transport())), rounds, workers));
    uds.teardown();

    let tcp = deploy(true, "tcp", workers);
    cases.push(run_case("tcp", Some(Box::new(tcp.coordinator.transport())), rounds, workers));
    tcp.teardown();

    for c in &cases {
        println!(
            "{:>8}  {:>8.2} ms/round  up {:>7} B  down {:>7} B  digest {:016x}",
            c.transport, c.wall_round_ms, c.up_bytes, c.down_bytes, c.param_digest
        );
    }

    let loop_ms = cases[1].wall_round_ms.max(1e-9);
    let overhead: Vec<Overhead> = cases
        .iter()
        .map(|c| Overhead { transport: c.transport.clone(), x_loopback: c.wall_round_ms / loop_ms })
        .collect();

    let verdict = if check {
        let mut failures = Vec::new();
        let base = &cases[0];
        for c in &cases[1..] {
            if c.param_digest != base.param_digest {
                failures.push(format!(
                    "{} trajectory diverged from in-process: digest {:016x} != {:016x}",
                    c.transport, c.param_digest, base.param_digest
                ));
            }
            if (c.up_bytes, c.down_bytes, c.participated)
                != (base.up_bytes, base.down_bytes, base.participated)
            {
                failures.push(format!(
                    "{} comm accounting diverged from in-process: up/down/participated {}/{}/{} != {}/{}/{}",
                    c.transport,
                    c.up_bytes,
                    c.down_bytes,
                    c.participated,
                    base.up_bytes,
                    base.down_bytes,
                    base.participated
                ));
            }
        }
        for o in &overhead {
            if o.x_loopback > 25.0 {
                failures.push(format!(
                    "{} round time is {:.1}x loopback (> 25x: socket plane is pathologically slow)",
                    o.transport, o.x_loopback
                ));
            }
        }
        Some(CheckVerdict { passed: failures.is_empty(), failures })
    } else {
        None
    };

    let root = repo_root();
    let jsonl: String = cases
        .iter()
        .map(|c| serde_json::to_string(c).expect("case serializes"))
        .collect::<Vec<_>>()
        .join("\n")
        + "\n";
    let jsonl_path = root.join("results/serve_sweep.jsonl");
    std::fs::write(&jsonl_path, jsonl).expect("write results/serve_sweep.jsonl");
    println!("wrote {}", jsonl_path.display());

    let summary = Summary {
        suite: "serve_sweep".into(),
        mode: mode.into(),
        cases,
        overhead_vs_loopback: overhead,
        check: verdict,
    };
    let json_path = root.join("BENCH_SERVE.json");
    std::fs::write(&json_path, serde_json::to_string(&summary).expect("summary serializes"))
        .expect("write BENCH_SERVE.json");
    println!("wrote {}", json_path.display());

    if let Some(v) = &summary.check {
        if v.passed {
            println!("check passed: every transport reproduces the in-process trajectory bit-for-bit");
        } else {
            for f in &v.failures {
                eprintln!("check FAILED: {f}");
            }
            std::process::exit(1);
        }
    }
}
