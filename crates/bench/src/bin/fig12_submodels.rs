//! **Figure 12** — sub-model performance study on the CIFAR-100 / VGG16
//! configuration.
//!
//! Three panels, as in the paper:
//! * sub-models on non-IID data, m = 10;
//! * sub-models on non-IID data, m = 20;
//! * sub-models on IID data.
//!
//! Each panel plots randomly-composed sub-models (size vs accuracy) from
//! a cloud trained **with** and **without** module ability-enhancing
//! training, plus the knapsack-**selected** sub-models at a sweep of
//! resource budgets (the Pareto front).
//!
//! Run: `cargo run --release -p nebula-bench --bin fig12_submodels [--quick]`

use nebula_bench::{emit_record, Scale, TaskRow};
use nebula_core::{derive_submodel, modular_config_for, NebulaCloud, NebulaParams, ResourceProfile};
use nebula_data::{evaluate_accuracy, Dataset, TaskPreset};
use nebula_modular::cost::CostModel;
use nebula_modular::SubModelSpec;

use nebula_tensor::NebulaRng;
use serde::Serialize;

#[derive(Serialize)]
struct PointRecord {
    experiment: &'static str,
    panel: String,
    series: String,
    params_k: f64,
    accuracy: f32,
}

fn random_spec(cfg: &nebula_modular::ModularConfig, rng: &mut NebulaRng) -> SubModelSpec {
    SubModelSpec::new(
        (0..cfg.num_layers)
            .map(|_| {
                let count = 1 + rng.below(cfg.modules_per_layer);
                rng.sample_indices(cfg.modules_per_layer, count)
            })
            .collect(),
    )
}

fn eval_spec(cloud: &mut NebulaCloud, spec: &SubModelSpec, data: &Dataset) -> f32 {
    cloud.model_mut().set_submodel(Some(spec));
    let acc = evaluate_accuracy(cloud.model_mut(), data, 64);
    cloud.model_mut().set_submodel(None);
    acc
}

fn main() {
    let scale = Scale::from_args();
    let quick = std::env::args().any(|a| a == "--quick");
    let n_random = if quick { 8 } else { 30 };
    let seed = 42u64;
    let task = TaskPreset::Cifar100;
    let mcfg = modular_config_for(task);
    let cost = CostModel::new(mcfg.clone());

    // Shared proxy/sub-task data from the m=10 world's group structure.
    let row = TaskRow { task, skew_m: Some(10) };
    let mut world = row.world(scale, None, seed);
    let mut rng = NebulaRng::seed(seed);
    let proxy = world.proxy(scale.proxy_samples);
    let subtasks = world.subtask_datasets(200);

    let mut params = NebulaParams::default();
    params.pretrain.epochs = scale.pretrain_epochs;

    println!("training cloud WITHOUT ability-enhancing…");
    let mut plain = NebulaCloud::new(mcfg.clone(), params, seed);
    plain.pretrain(&proxy, &mut rng);
    println!("training cloud WITH ability-enhancing…");
    let mut enhanced = NebulaCloud::new(mcfg.clone(), params, seed);
    enhanced.pretrain(&proxy, &mut rng);
    enhanced.enhance(&subtasks, &mut rng);

    // Panel datasets: a device-local task per panel.
    let m10 = world.devices[0].test.clone();
    let m10_local = world.devices[0].partition.data.clone();
    let row20 = TaskRow { task, skew_m: Some(20) };
    let world20 = row20.world(scale, None, seed);
    let m20 = world20.devices[0].test.clone();
    let m20_local = world20.devices[0].partition.data.clone();
    let iid = world.proxy(300);
    let iid_local = world.proxy(150);

    let panels: Vec<(&str, Dataset, Dataset)> =
        vec![("non-IID m=10", m10, m10_local), ("non-IID m=20", m20, m20_local), ("IID", iid, iid_local)];

    for (panel, test, local) in panels {
        println!("\n== panel: {panel} ==");
        // Random sub-models from both clouds.
        for (series, cloud) in [("w/o enhancing", &mut plain), ("w/ enhancing", &mut enhanced)] {
            let mut srng = NebulaRng::seed(seed ^ 0xF16);
            let mut line = Vec::new();
            for _ in 0..n_random {
                let spec = random_spec(&mcfg, &mut srng);
                let acc = eval_spec(cloud, &spec, &test);
                let params_k = cost.submodel(&spec).params as f64 / 1000.0;
                line.push(format!("({params_k:.0}K,{acc:.2})"));
                emit_record(
                    "fig12",
                    &PointRecord {
                        experiment: "fig12",
                        panel: panel.to_string(),
                        series: series.to_string(),
                        params_k,
                        accuracy: acc,
                    },
                );
            }
            println!("  {series:<15}: {}", line.join(" "));
        }

        // Knapsack-selected sub-models from the enhanced cloud at a budget
        // sweep — the Pareto front the derivation walks.
        let full = cost.full_model();
        let importance = enhanced.model_mut().importance(local.features());
        let mut line = Vec::new();
        for ratio in [0.1f64, 0.2, 0.3, 0.45, 0.65, 1.0] {
            let profile = ResourceProfile {
                mem_bytes: (full.training_mem_bytes as f64 * ratio) as u64,
                flops: (full.flops as f64 * ratio) as u64,
                comm_bytes: (full.comm_bytes as f64 * ratio) as u64,
            };
            let outcome = derive_submodel(&cost, &importance, &profile, None);
            let acc = eval_spec(&mut enhanced, &outcome.spec, &test);
            let params_k = cost.submodel(&outcome.spec).params as f64 / 1000.0;
            line.push(format!("({params_k:.0}K,{acc:.2})"));
            emit_record(
                "fig12",
                &PointRecord {
                    experiment: "fig12",
                    panel: panel.to_string(),
                    series: "selected sub-model".to_string(),
                    params_k,
                    accuracy: acc,
                },
            );
        }
        println!("  {:<15}: {}", "selected", line.join(" "));
    }
    println!("\n(points appended to results/fig12.jsonl)");
}
