//! **Figure 13** — sensitivity analysis.
//!
//! * (a) accuracy vs maximum sub-model size ratio (0.2–0.5) on the
//!   CIFAR-10 (m=2, m=5) and CIFAR-100 (m=10, m=20) rows;
//! * (b) accuracy vs module granularity (8/16/32/64 modules per layer at
//!   constant total capacity) on CIFAR-100, for the ResNet18-shaped and
//!   VGG16-shaped configurations;
//! * (c) adaptation time to a target accuracy vs number of participating
//!   devices per round (20–80), FedAvg vs Nebula.
//!
//! Run: `cargo run --release -p nebula-bench --bin fig13_sensitivity [--quick]`

use nebula_bench::{emit_record, Scale, TaskRow};
use nebula_core::{modular_config_for, EdgeClient, NebulaCloud, NebulaParams, ResourceProfile};
use nebula_data::TaskPreset;
use nebula_modular::cost::CostModel;
use nebula_nn::Layer;
use nebula_sim::experiment::pick_eval_ids;
use nebula_sim::latency::adaptation_latency_ms;
use nebula_sim::network::transfer_time_ms;
use nebula_sim::strategy::StrategyConfig;
use nebula_sim::{FedAvgStrategy, NebulaStrategy, SimWorld};
use nebula_tensor::NebulaRng;
use serde::Serialize;

#[derive(Serialize)]
struct SensRecord {
    experiment: &'static str,
    panel: &'static str,
    series: String,
    x: f64,
    y: f64,
}

/// Mean tracked-device accuracy when every device derives at budget
/// `ratio` of the full model and fine-tunes locally.
fn accuracy_at_ratio(
    cloud: &NebulaCloud,
    world: &mut SimWorld,
    eval_ids: &[usize],
    ratio: f64,
    cfg: &StrategyConfig,
    rng: &mut NebulaRng,
) -> f32 {
    let cost = CostModel::new(cfg.modular.clone());
    let full = cost.full_model();
    let profile = ResourceProfile {
        mem_bytes: (full.training_mem_bytes as f64 * ratio) as u64,
        flops: (full.flops as f64 * ratio) as u64,
        comm_bytes: (full.comm_bytes as f64 * ratio) as u64,
    };
    let mut sum = 0.0;
    for &id in eval_ids {
        let (local, test);
        {
            let d = &world.devices[id];
            local = d.partition.data.clone();
            test = d.test.clone();
        }
        // Deriving needs &mut for the selector forward; clone the model.
        let mut model = cloud.model().deep_clone();
        let importance = model.importance(local.features());
        let outcome = cloud.derive_for_importance(&importance, &profile, None);
        let payload = cloud.dispatch(&outcome.spec);
        let mut client = EdgeClient::from_payload(cfg.modular.clone(), &payload);
        client.adapt(&local, cfg.local_epochs, cfg.batch_size, cfg.local_lr, rng);
        sum += client.accuracy(&test);
    }
    sum / eval_ids.len().max(1) as f32
}

fn panel_a(scale: Scale) {
    println!("Fig 13(a): accuracy vs maximum sub-model size ratio\n");
    let rows = [
        TaskRow { task: TaskPreset::Cifar10, skew_m: Some(2) },
        TaskRow { task: TaskPreset::Cifar10, skew_m: Some(5) },
        TaskRow { task: TaskPreset::Cifar100, skew_m: Some(10) },
        TaskRow { task: TaskPreset::Cifar100, skew_m: Some(20) },
    ];
    for row in rows {
        let cfg = row.strategy_config(scale);
        let mut world = row.world(scale, None, 42);
        let mut rng = NebulaRng::seed(42);

        // Offline once, then evaluate at each ratio from the same cloud.
        let mut params = NebulaParams::default();
        params.pretrain.epochs = scale.pretrain_epochs;
        let mut cloud = NebulaCloud::new(cfg.modular.clone(), params, 42);
        let proxy = world.proxy(scale.proxy_samples);
        cloud.pretrain(&proxy, &mut rng);
        let subtasks = world.subtask_datasets(200);
        cloud.enhance(&subtasks, &mut rng);

        let eval_ids = pick_eval_ids(&world, scale.eval_devices.min(8));
        let series = format!("{}, {}", row.task.name(), row.partition_label());
        let mut line = Vec::new();
        for ratio in [0.2f64, 0.3, 0.4, 0.5] {
            let acc = accuracy_at_ratio(&cloud, &mut world, &eval_ids, ratio, &cfg, &mut rng);
            line.push(format!("{ratio:.1}:{acc:.3}"));
            emit_record(
                "fig13",
                &SensRecord {
                    experiment: "fig13",
                    panel: "a_size_ratio",
                    series: series.clone(),
                    x: ratio,
                    y: acc as f64,
                },
            );
        }
        println!("  {series:<18}: {}", line.join("  "));
    }
}

fn panel_b(scale: Scale) {
    println!("\nFig 13(b): accuracy vs modules per module layer (constant capacity)\n");
    for (shape, layers) in [("ResNet18-shaped", 4usize), ("VGG16-shaped", 3usize)] {
        let base = modular_config_for(TaskPreset::Cifar100);
        let capacity = 32 * base.module_hidden; // total hidden units per layer
        let mut line = Vec::new();
        for n_modules in [8usize, 16, 32, 64] {
            let mut mcfg = base.clone();
            mcfg.num_layers = layers;
            mcfg.modules_per_layer = n_modules;
            mcfg.module_hidden = (capacity / n_modules).max(4);
            mcfg.top_k = (n_modules / 5).max(2);

            let row = TaskRow { task: TaskPreset::Cifar100, skew_m: Some(10) };
            let mut world = row.world(scale, None, 42);
            let mut rng = NebulaRng::seed(42);
            let mut params = NebulaParams::default();
            params.pretrain.epochs = scale.pretrain_epochs;
            let mut cloud = NebulaCloud::new(mcfg.clone(), params, 42);
            let proxy = world.proxy(scale.proxy_samples);
            cloud.pretrain(&proxy, &mut rng);
            let subtasks = world.subtask_datasets(200);
            cloud.enhance(&subtasks, &mut rng);

            let mut cfg = row.strategy_config(scale);
            cfg.modular = mcfg;
            let eval_ids = pick_eval_ids(&world, scale.eval_devices.min(6));
            let acc = accuracy_at_ratio(&cloud, &mut world, &eval_ids, 0.4, &cfg, &mut rng);
            line.push(format!("{n_modules}:{acc:.3}"));
            emit_record(
                "fig13",
                &SensRecord {
                    experiment: "fig13",
                    panel: "b_granularity",
                    series: shape.to_string(),
                    x: n_modules as f64,
                    y: acc as f64,
                },
            );
        }
        println!("  {shape:<16}: {}", line.join("  "));
    }
}

fn panel_c(scale: Scale) {
    println!("\nFig 13(c): adaptation time vs participating devices per round\n");
    // Each system adapts to a 70% environment shift round by round; we
    // report the simulated wall-clock until it reaches 98% of its *own*
    // converged accuracy (self-relative, as in Fig. 7 — FA's global-eval
    // and Nebula's personalized-eval plateaus are not comparable).
    use nebula_sim::experiment::mean_accuracy;
    use nebula_sim::strategy::AdaptStrategy;

    let row = TaskRow { task: TaskPreset::Cifar10, skew_m: Some(5) };
    let max_rounds = scale.rounds_per_step + scale.rounds_per_step / 2;

    for participants in [20usize, 40, 60, 80] {
        for is_nebula in [false, true] {
            let mut cfg = row.strategy_config(scale);
            cfg.rounds_per_step = 1;
            cfg.devices_per_round = participants;
            let mut world = row.world(scale, Some(0.7), 42);
            let mut rng = NebulaRng::seed(42 ^ 0xC13);
            let mut s: Box<dyn AdaptStrategy> = if is_nebula {
                Box::new(NebulaStrategy::new(cfg.clone(), 42))
            } else {
                Box::new(FedAvgStrategy::new(cfg.clone(), 42))
            };
            let eval_ids = pick_eval_ids(&world, scale.eval_devices);
            s.track(&eval_ids);
            s.offline(&mut world, &mut rng);
            world.advance_slot();

            let mut trajectory = Vec::with_capacity(max_rounds);
            for _ in 0..max_rounds {
                s.adaptation_step(&mut world, &mut rng);
                trajectory.push(mean_accuracy(s.as_mut(), &mut world, &eval_ids));
            }
            let converged = trajectory.iter().copied().fold(0.0f32, f32::max);
            let target = converged * 0.98;
            let rounds = trajectory.iter().position(|&a| a >= target).map_or(max_rounds, |i| i + 1);

            // Simulated wall-clock per round: participants run in
            // parallel, so a round costs one device's local training plus
            // its transfers.
            let dev = &world.devices[0];
            let flops = if is_nebula {
                CostModel::new(cfg.modular.clone()).full_model().flops / 3 // typical sub-model
            } else {
                cfg.dense_model(1).param_count() as u64
            };
            let bytes = 2 * flops * 4; // down + up ≈ 2 × params ≈ 2 × flops
            let round_ms =
                adaptation_latency_ms(&dev.resources, flops, dev.volume(), cfg.local_epochs, cfg.batch_size)
                    + transfer_time_ms(bytes, dev.resources.bandwidth_bps);
            let total_s = rounds as f64 * round_ms / 1e3;
            let name = if is_nebula { "Nebula" } else { "FedAvg" };
            println!(
                "  {name:<7} devices/round {participants:>2}: rounds-to-adapt {rounds:>2}, simulated time {total_s:>8.1} s"
            );
            emit_record(
                "fig13",
                &SensRecord {
                    experiment: "fig13",
                    panel: "c_participants",
                    series: name.to_string(),
                    x: participants as f64,
                    y: total_s,
                },
            );
        }
    }
}

fn main() {
    let scale = Scale::from_args();
    panel_a(scale);
    panel_b(scale);
    panel_c(scale);
}
