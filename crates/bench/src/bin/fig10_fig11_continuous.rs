//! **Figures 10 & 11** — continuous adaptation over many time slots.
//!
//! Each adaptation step replaces 50% of every device's local data with
//! data from a new environment (class-group or context shift). Five
//! systems are compared on each task: No Adaptation, Local Adaptation,
//! Nebula w/o local training, Nebula w/o cloud, and full Nebula.
//! Fig. 10 is the per-slot accuracy series; Fig. 11 summarises the mean
//! adaptation accuracy and the mean per-step adaptation time.
//!
//! Run: `cargo run --release -p nebula-bench --bin fig10_fig11_continuous [--quick]`

use nebula_bench::{emit_record, Scale, TaskRow};
use nebula_data::TaskPreset;
use nebula_sim::experiment::ExperimentConfig;
use nebula_sim::{AdaptStrategy, LocalAdaptStrategy, NebulaStrategy, NebulaVariant, NoAdaptStrategy, Runner};
use serde::Serialize;

#[derive(Serialize)]
struct ContinuousRecord {
    experiment: &'static str,
    task: String,
    strategy: String,
    mean_accuracy: f32,
    mean_adapt_time_ms: f64,
    accuracy_per_slot: Vec<f32>,
}

fn main() {
    let scale = Scale::from_args();
    let quick = std::env::args().any(|a| a == "--quick");
    let slots = if quick { 6 } else { 12 };

    let rows = [
        TaskRow { task: TaskPreset::Har, skew_m: None },
        TaskRow { task: TaskPreset::Cifar10, skew_m: Some(2) },
        TaskRow { task: TaskPreset::Cifar100, skew_m: Some(10) },
        TaskRow { task: TaskPreset::SpeechCommands, skew_m: Some(5) },
    ];

    println!("Figs 10 & 11: continuous adaptation over {slots} steps (50% data replaced/step)\n");
    for row in rows {
        println!("== {} ({}) ==", row.task.name(), row.task.model_name());
        let mut cfg = row.strategy_config(scale);
        // Continuous mode: light collaboration per slot, smaller rounds.
        cfg.rounds_per_step = 2;
        cfg.devices_per_round = 10;

        let strategies: Vec<Box<dyn AdaptStrategy>> = vec![
            Box::new(NoAdaptStrategy::new(cfg.clone(), 42)),
            Box::new(LocalAdaptStrategy::new(cfg.clone(), 42)),
            Box::new(NebulaStrategy::with_variant(cfg.clone(), 42, NebulaVariant::NoLocalTraining)),
            Box::new(NebulaStrategy::with_variant(cfg.clone(), 42, NebulaVariant::NoCloud)),
            Box::new(NebulaStrategy::with_variant(cfg.clone(), 42, NebulaVariant::Full)),
        ];

        for mut s in strategies {
            let mut world = row.world(scale, Some(0.5), 42);
            let out = Runner::new(&mut world, s.as_mut())
                .config(ExperimentConfig { eval_devices: 2, seed: 42 })
                .continuous(slots)
                .run()
                .expect("continuous run config is valid");
            let mean = out.accuracy_per_slot.iter().sum::<f32>() / out.accuracy_per_slot.len().max(1) as f32;
            let head: Vec<String> =
                out.accuracy_per_slot.iter().take(10).map(|a| format!("{:.2}", a)).collect();
            println!(
                "  {:<22} mean {:.3}  adapt-time {:>9.1} ms  slots[..10]: {}",
                out.strategy,
                mean,
                out.mean_adapt_time_ms,
                head.join(" ")
            );
            emit_record(
                "fig10_fig11",
                &ContinuousRecord {
                    experiment: "fig10_fig11",
                    task: row.task.name().to_string(),
                    strategy: out.strategy.clone(),
                    mean_accuracy: mean,
                    mean_adapt_time_ms: out.mean_adapt_time_ms,
                    accuracy_per_slot: out.accuracy_per_slot,
                },
            );
        }
        println!();
    }
}
