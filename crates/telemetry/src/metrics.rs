//! Counters, gauges, value histograms and load histograms.
//!
//! The registry is the *aggregated* half of telemetry: events stream to a
//! sink as they happen, while metrics accumulate in memory and are flushed
//! once (as `kind = "metric"` events) when the run closes. All maps are
//! `BTreeMap` so the flush order — and therefore the trace bytes — is
//! deterministic.

use crate::event::Event;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Summary statistics of one value histogram.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct HistSummary {
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
}

impl HistSummary {
    fn observe(&mut self, v: f64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
    }

    /// Mean of the observed values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// A point-in-time copy of every registered metric.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Monotone event counts (frames sent, CRC rejects, pool hits…).
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins values (current round index, pool size…).
    pub gauges: BTreeMap<String, f64>,
    /// Value distributions (latencies, frame sizes).
    pub histograms: BTreeMap<String, HistSummary>,
    /// Explicit-bucket count histograms (per-module gate loads): bucket
    /// `i` counts events assigned to index `i`, so the bucket sum equals
    /// the total number of assignments.
    pub loads: BTreeMap<String, Vec<u64>>,
}

/// Thread-safe metric accumulation behind the [`crate::Telemetry`] handle.
///
/// Interior mutability is a plain mutex: the instrumented seams run a few
/// thousand times per round, far from contention territory, and the
/// registry must be `Sync` because rounds fan client work out through
/// rayon.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<MetricsSnapshot>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MetricsSnapshot> {
        // A poisoned registry only means a panicking thread mid-update;
        // telemetry keeps going with whatever was recorded.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Adds `v` to counter `name` (creating it at 0).
    pub fn counter_add(&self, name: &str, v: u64) {
        let mut m = self.lock();
        let c = m.counters.entry(name.to_string()).or_insert(0);
        *c = c.saturating_add(v);
    }

    /// Sets gauge `name` to `v` (last write wins).
    pub fn gauge_set(&self, name: &str, v: f64) {
        self.lock().gauges.insert(name.to_string(), v);
    }

    /// Records `v` into value histogram `name`.
    pub fn observe(&self, name: &str, v: f64) {
        self.lock().histograms.entry(name.to_string()).or_default().observe(v);
    }

    /// Adds `count` to bucket `bucket` of load histogram `name`, growing
    /// the bucket vector as needed.
    pub fn load_add(&self, name: &str, bucket: usize, count: u64) {
        let mut m = self.lock();
        let buckets = m.loads.entry(name.to_string()).or_default();
        if buckets.len() <= bucket {
            buckets.resize(bucket + 1, 0);
        }
        buckets[bucket] = buckets[bucket].saturating_add(count);
    }

    /// Copies out every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.lock().clone()
    }

    /// Renders the current metrics as a deterministic stream of
    /// `kind = "metric"` events (one per metric; load-histogram buckets
    /// become zero-padded `b000…` integer fields).
    pub fn flush_events(&self) -> Vec<Event> {
        let snap = self.snapshot();
        let mut out = Vec::new();
        for (name, v) in &snap.counters {
            out.push(
                Event::new("metric").text("name", name.clone()).text("type", "counter").int("value", *v),
            );
        }
        for (name, v) in &snap.gauges {
            out.push(Event::new("metric").text("name", name.clone()).text("type", "gauge").num("value", *v));
        }
        for (name, h) in &snap.histograms {
            out.push(
                Event::new("metric")
                    .text("name", name.clone())
                    .text("type", "histogram")
                    .int("count", h.count)
                    .num("sum", h.sum)
                    .num("min", h.min)
                    .num("max", h.max),
            );
        }
        for (name, buckets) in &snap.loads {
            let mut e = Event::new("metric").text("name", name.clone()).text("type", "load");
            for (i, &c) in buckets.iter().enumerate() {
                e.ints.insert(format!("b{i:03}"), c);
            }
            out.push(e);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let m = MetricsRegistry::new();
        m.counter_add("frames", 3);
        m.counter_add("frames", 2);
        m.gauge_set("round", 1.0);
        m.gauge_set("round", 4.0);
        let s = m.snapshot();
        assert_eq!(s.counters["frames"], 5);
        assert_eq!(s.gauges["round"], 4.0);
    }

    #[test]
    fn histogram_summary_tracks_extremes() {
        let m = MetricsRegistry::new();
        for v in [3.0, -1.0, 7.0] {
            m.observe("lat_ms", v);
        }
        let h = m.snapshot().histograms["lat_ms"];
        assert_eq!(h.count, 3);
        assert_eq!(h.min, -1.0);
        assert_eq!(h.max, 7.0);
        assert!((h.mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn load_buckets_grow_and_sum() {
        let m = MetricsRegistry::new();
        m.load_add("gate_load.layer0", 2, 4);
        m.load_add("gate_load.layer0", 0, 1);
        let buckets = m.snapshot().loads["gate_load.layer0"].clone();
        assert_eq!(buckets, vec![1, 0, 4]);
        assert_eq!(buckets.iter().sum::<u64>(), 5);
    }

    #[test]
    fn flush_events_are_deterministic_and_typed() {
        let m = MetricsRegistry::new();
        m.counter_add("b", 1);
        m.counter_add("a", 1);
        m.load_add("load", 1, 2);
        let events = m.flush_events();
        let names: Vec<&str> = events.iter().map(|e| e.text["name"].as_str()).collect();
        assert_eq!(names, vec!["a", "b", "load"]);
        assert_eq!(events[2].ints["b001"], 2);
    }
}
