//! The [`Telemetry`] handle instrumented code holds.
//!
//! A handle is a cheap, cloneable wrapper around an optional shared
//! collector. With an inactive sink (the [`crate::NullSink`] default) the
//! option is `None` and every instrumentation call is a single branch —
//! no timestamps, no allocation, no locks — which is what lets the
//! instrumented round loop stay within noise of the uninstrumented one.

use crate::event::Event;
use crate::metrics::{MetricsRegistry, MetricsSnapshot};
use crate::sink::Collector;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

struct Inner {
    sink: Arc<dyn Collector>,
    start: Instant,
    /// Next span id; 0 is reserved for "no span".
    next_span: AtomicU64,
    /// Ids of currently-open spans, innermost last.
    stack: Mutex<Vec<u64>>,
    metrics: MetricsRegistry,
}

/// Handle to a run's telemetry (or to nothing — see [`Telemetry::off`]).
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl Telemetry {
    /// Telemetry wired to `sink`. An inactive sink (e.g. [`crate::NullSink`])
    /// yields a disarmed handle identical to [`Telemetry::off`].
    pub fn new(sink: Arc<dyn Collector>) -> Self {
        if !sink.active() {
            return Self::off();
        }
        Telemetry {
            inner: Some(Arc::new(Inner {
                sink,
                start: Instant::now(),
                next_span: AtomicU64::new(1),
                stack: Mutex::new(Vec::new()),
                metrics: MetricsRegistry::new(),
            })),
        }
    }

    /// The disarmed handle: every call is a no-op.
    pub fn off() -> Self {
        Telemetry { inner: None }
    }

    /// Whether events are actually being collected.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Monotonic nanoseconds since the handle was created (0 when off).
    pub fn elapsed_ns(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.start.elapsed().as_nanos() as u64)
    }

    /// Emits one event. `fill` runs only when telemetry is enabled, so
    /// callers can build fields without guarding on [`Telemetry::enabled`].
    pub fn emit(&self, kind: &str, fill: impl FnOnce(&mut Event)) {
        let Some(inner) = &self.inner else { return };
        let mut e = Event::new(kind);
        fill(&mut e);
        e.t_ns = inner.start.elapsed().as_nanos() as u64;
        e.span = inner.current_span();
        inner.sink.record(&e);
    }

    /// Opens a hierarchical span; the returned guard emits a
    /// `kind = "span"` event (name, duration, parent) when dropped.
    pub fn span(&self, name: &'static str) -> Span {
        let Some(inner) = &self.inner else { return Span { active: None } };
        let id = inner.next_span.fetch_add(1, Ordering::Relaxed);
        let parent = {
            let mut stack = inner.lock_stack();
            let parent = stack.last().copied().unwrap_or(0);
            stack.push(id);
            parent
        };
        Span {
            active: Some(SpanActive {
                inner: Arc::clone(inner),
                id,
                parent,
                start_ns: inner.start.elapsed().as_nanos() as u64,
                extra: Event::new("span").text("name", name),
            }),
        }
    }

    /// Adds `v` to counter `name`.
    pub fn counter_add(&self, name: &str, v: u64) {
        if let Some(inner) = &self.inner {
            inner.metrics.counter_add(name, v);
        }
    }

    /// Sets gauge `name` to `v`.
    pub fn gauge_set(&self, name: &str, v: f64) {
        if let Some(inner) = &self.inner {
            inner.metrics.gauge_set(name, v);
        }
    }

    /// Records `v` into value histogram `name`.
    pub fn observe(&self, name: &str, v: f64) {
        if let Some(inner) = &self.inner {
            inner.metrics.observe(name, v);
        }
    }

    /// Adds `count` to bucket `bucket` of load histogram `name`.
    pub fn load_add(&self, name: &str, bucket: usize, count: u64) {
        if let Some(inner) = &self.inner {
            inner.metrics.load_add(name, bucket, count);
        }
    }

    /// Copies out the metric registry (None when off).
    pub fn metrics(&self) -> Option<MetricsSnapshot> {
        self.inner.as_ref().map(|i| i.metrics.snapshot())
    }

    /// Closes out a run: flushes every metric as a `kind = "metric"`
    /// event, then flushes the sink. Safe to call more than once (metrics
    /// are re-emitted with their latest values).
    pub fn finish(&self) {
        let Some(inner) = &self.inner else { return };
        let t_ns = inner.start.elapsed().as_nanos() as u64;
        for mut e in inner.metrics.flush_events() {
            e.t_ns = t_ns;
            inner.sink.record(&e);
        }
        inner.sink.flush();
    }
}

impl<C: Collector + 'static> From<Arc<C>> for Telemetry {
    fn from(sink: Arc<C>) -> Self {
        Telemetry::new(sink)
    }
}

impl From<Arc<dyn Collector>> for Telemetry {
    fn from(sink: Arc<dyn Collector>) -> Self {
        Telemetry::new(sink)
    }
}

impl Inner {
    fn lock_stack(&self) -> std::sync::MutexGuard<'_, Vec<u64>> {
        self.stack.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn current_span(&self) -> u64 {
        self.lock_stack().last().copied().unwrap_or(0)
    }
}

struct SpanActive {
    inner: Arc<Inner>,
    id: u64,
    parent: u64,
    start_ns: u64,
    extra: Event,
}

/// RAII guard for one open span (see [`Telemetry::span`]).
#[must_use = "a span measures the scope it lives in; bind it to a variable"]
pub struct Span {
    active: Option<SpanActive>,
}

impl Span {
    /// Attaches an integer field to the span's closing event.
    pub fn int(&mut self, key: &str, v: u64) {
        if let Some(a) = &mut self.active {
            a.extra.ints.insert(key.to_string(), v);
        }
    }

    /// Attaches a float field to the span's closing event.
    pub fn num(&mut self, key: &str, v: f64) {
        if let Some(a) = &mut self.active {
            a.extra.num.insert(key.to_string(), v);
        }
    }

    /// This span's id (0 when telemetry is off).
    pub fn id(&self) -> u64 {
        self.active.as_ref().map_or(0, |a| a.id)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(a) = self.active.take() else { return };
        {
            let mut stack = a.inner.lock_stack();
            if let Some(pos) = stack.iter().rposition(|&s| s == a.id) {
                stack.remove(pos);
            }
        }
        let now = a.inner.start.elapsed().as_nanos() as u64;
        let mut e = a.extra;
        e.t_ns = now;
        e.span = a.id;
        e.ints.insert("parent".to_string(), a.parent);
        e.ints.insert("dur_ns".to_string(), now.saturating_sub(a.start_ns));
        a.inner.sink.record(&e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{MemorySink, NullSink};

    #[test]
    fn off_handle_is_free_and_silent() {
        let t = Telemetry::off();
        assert!(!t.enabled());
        let mut ran = false;
        t.emit("x", |_| ran = true);
        assert!(!ran, "fill closure must not run when off");
        let _s = t.span("run");
        t.counter_add("c", 1);
        assert!(t.metrics().is_none());
        t.finish();
    }

    #[test]
    fn null_sink_disarms_the_handle() {
        assert!(!Telemetry::new(Arc::new(NullSink)).enabled());
    }

    #[test]
    fn spans_nest_and_report_parents() {
        let mem = Arc::new(MemorySink::new());
        let t = Telemetry::new(mem.clone());
        {
            let outer = t.span("run");
            let outer_id = outer.id();
            {
                let mut inner = t.span("round");
                inner.int("index", 1);
                t.emit("ping", |_| {});
                assert_ne!(inner.id(), outer_id);
            }
            let events = mem.events();
            // "ping" fired inside "round"; "round" closed with parent "run".
            let ping = events.iter().find(|e| e.kind == "ping").unwrap();
            let round = events.iter().find(|e| e.kind == "span").unwrap();
            assert_eq!(round.text["name"], "round");
            assert_eq!(ping.span, round.span);
            assert_eq!(round.ints["parent"], outer_id);
            assert_eq!(round.ints["index"], 1);
        }
        let run = mem.events().into_iter().rfind(|e| e.kind == "span").unwrap();
        assert_eq!(run.text["name"], "run");
        assert_eq!(run.ints["parent"], 0);
    }

    #[test]
    fn finish_flushes_metrics_as_events() {
        let mem = Arc::new(MemorySink::new());
        let t = Telemetry::new(mem.clone());
        t.counter_add("wire.frames", 3);
        t.observe("round.ms", 12.0);
        t.load_add("gate_load.layer0", 1, 5);
        t.finish();
        let events = mem.events();
        let metric_names: Vec<&str> =
            events.iter().filter(|e| e.kind == "metric").map(|e| e.text["name"].as_str()).collect();
        assert_eq!(metric_names, vec!["wire.frames", "round.ms", "gate_load.layer0"]);
    }

    #[test]
    fn span_timestamps_are_monotonic() {
        let mem = Arc::new(MemorySink::new());
        let t = Telemetry::new(mem.clone());
        {
            let _s = t.span("run");
            std::hint::black_box(0);
        }
        let e = &mem.events()[0];
        assert!(e.t_ns >= e.t_ns.saturating_sub(e.ints["dur_ns"]));
    }
}
