//! Pluggable event sinks: null (default), JSONL file, in-memory.

use crate::event::Event;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Where telemetry events go.
///
/// Implementations must be cheap and infallible from the caller's point
/// of view: instrumented seams never branch on sink errors, and a sink
/// must never feed anything back into the simulation (determinism
/// contract — see DESIGN.md §12).
pub trait Collector: Send + Sync {
    /// Whether this sink wants events at all. Returning `false` (the
    /// [`NullSink`] contract) disarms the whole telemetry handle up
    /// front, so instrumented code pays one `Option` check and nothing
    /// else — no event construction, no timestamps, no locks.
    fn active(&self) -> bool {
        true
    }

    /// Consumes one event.
    fn record(&self, event: &Event);

    /// Flushes buffered output (called when a run closes).
    fn flush(&self) {}
}

/// The zero-overhead default: reports inactive, receives nothing.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl Collector for NullSink {
    fn active(&self) -> bool {
        false
    }

    fn record(&self, _event: &Event) {}
}

/// Append-only JSON-lines trace, one [`Event`] per line — written next to
/// the durability journal so a run directory carries both its recovery
/// state and its observability record.
pub struct JsonlSink {
    path: PathBuf,
    file: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Creates (truncating) the trace file at `path`.
    pub fn create(path: impl Into<PathBuf>) -> std::io::Result<Self> {
        let path = path.into();
        let file = File::create(&path)?;
        Ok(JsonlSink { path, file: Mutex::new(BufWriter::new(file)) })
    }

    /// Where the trace is being written.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Collector for JsonlSink {
    fn record(&self, event: &Event) {
        // Event serialization cannot fail (plain maps of plain values);
        // I/O errors drop the line rather than poisoning the run.
        if let Ok(line) = serde_json::to_string(event) {
            let mut w = self.file.lock().unwrap_or_else(|e| e.into_inner());
            let _ = writeln!(w, "{line}");
        }
    }

    fn flush(&self) {
        let mut w = self.file.lock().unwrap_or_else(|e| e.into_inner());
        let _ = w.flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Buffers every event in memory — the test sink. Keep an `Arc` to the
/// sink, hand a clone of that `Arc` to [`crate::Telemetry::new`], and read
/// [`MemorySink::events`] after the run.
#[derive(Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies out everything recorded so far.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Collector for MemorySink {
    fn record(&self, event: &Event) {
        self.events.lock().unwrap_or_else(|e| e.into_inner()).push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_is_inactive() {
        assert!(!NullSink.active());
    }

    #[test]
    fn memory_sink_buffers_in_order() {
        let sink = MemorySink::new();
        sink.record(&Event::new("a"));
        sink.record(&Event::new("b"));
        let kinds: Vec<String> = sink.events().into_iter().map(|e| e.kind).collect();
        assert_eq!(kinds, vec!["a", "b"]);
        assert_eq!(sink.len(), 2);
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let dir = std::env::temp_dir().join("nebula-telemetry-sink-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        let sink = JsonlSink::create(&path).unwrap();
        sink.record(&Event::new("round").int("index", 1));
        sink.record(&Event::new("round").int("index", 2));
        sink.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        let events: Vec<Event> =
            text.lines().map(|l| serde_json::from_str(l).expect("line parses")).collect();
        assert_eq!(events.len(), 2);
        assert_eq!(events[1].ints["index"], 2);
        std::fs::remove_dir_all(&dir).ok();
    }
}
