//! # nebula-telemetry
//!
//! Deterministic instrumentation for the simulator: what a run *did*,
//! observable as it unfolds rather than only as terminal numbers.
//!
//! * [`Event`] — the single flat record every sink consumes; a JSONL
//!   trace is a homogeneous stream of these.
//! * [`Telemetry`] — the cheap, cloneable handle instrumented seams hold:
//!   hierarchical [`Telemetry::span`]s with monotonic timings,
//!   fire-and-forget [`Telemetry::emit`] events, and a metrics registry
//!   (counters / gauges / histograms / per-bucket load histograms).
//! * [`Collector`] sinks — [`NullSink`] (zero-overhead default, disarms
//!   the handle entirely), [`JsonlSink`] (append-only trace next to the
//!   durability journal), [`MemorySink`] (tests).
//!
//! ## Determinism contract
//!
//! Telemetry observes; it never participates. No instrumented seam may
//! consume simulation RNG, reorder work, or feed a measurement back into
//! a decision. Wall-clock shows up *only* in event timestamps and span
//! durations; every simulated quantity (latencies, bytes, accuracies) is
//! recorded from values the simulation already computed. A run with
//! telemetry attached is bit-identical to one without.

pub mod event;
pub mod handle;
pub mod metrics;
pub mod sink;

pub use event::Event;
pub use handle::{Span, Telemetry};
pub use metrics::{HistSummary, MetricsRegistry, MetricsSnapshot};
pub use sink::{Collector, JsonlSink, MemorySink, NullSink};
