//! The one record type every sink consumes.
//!
//! Keeping a single, flat, serde-friendly shape means a JSONL trace is a
//! homogeneous stream: every line parses back into an [`Event`], whatever
//! seam emitted it. Field maps are `BTreeMap` so serialization order (and
//! therefore the trace bytes) is deterministic.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One telemetry record: a span closing, a per-round summary, a wire
/// transfer, a gate-load histogram, a metric flush…
///
/// `kind` names the record ("span", "round", "client", "wire", "gate_load",
/// "metric", …); the three maps carry the kind-specific fields. Timestamps
/// are monotonic nanoseconds since the collector was created — wall-clock
/// only, never fed back into the simulation.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Monotonic nanoseconds since collector start.
    pub t_ns: u64,
    /// Record kind (the event schema table in DESIGN.md §12).
    pub kind: String,
    /// Id of the innermost open span when the event fired (0 = none).
    pub span: u64,
    /// Float-valued fields.
    pub num: BTreeMap<String, f64>,
    /// Integer-valued fields.
    pub ints: BTreeMap<String, u64>,
    /// String-valued fields.
    pub text: BTreeMap<String, String>,
}

impl Event {
    /// A blank event of `kind` (timestamp and span filled by the handle).
    pub fn new(kind: impl Into<String>) -> Self {
        Event { kind: kind.into(), ..Default::default() }
    }

    /// Sets a float field (builder style).
    pub fn num(mut self, key: &str, v: f64) -> Self {
        self.num.insert(key.to_string(), v);
        self
    }

    /// Sets an integer field (builder style).
    pub fn int(mut self, key: &str, v: u64) -> Self {
        self.ints.insert(key.to_string(), v);
        self
    }

    /// Sets a string field (builder style).
    pub fn text(mut self, key: &str, v: impl Into<String>) -> Self {
        self.text.insert(key.to_string(), v.into());
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_fills_maps() {
        let e = Event::new("wire").int("bytes", 128).num("ms", 1.5).text("dir", "up");
        assert_eq!(e.kind, "wire");
        assert_eq!(e.ints["bytes"], 128);
        assert_eq!(e.num["ms"], 1.5);
        assert_eq!(e.text["dir"], "up");
    }

    #[test]
    fn serde_round_trip_is_exact() {
        let e = Event::new("round").int("index", 3).num("acc", 0.75).text("strategy", "Nebula");
        let json = serde_json::to_string(&e).unwrap();
        let back: Event = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn empty_maps_round_trip() {
        let e = Event::new("span");
        let back: Event = serde_json::from_str(&serde_json::to_string(&e).unwrap()).unwrap();
        assert!(back.num.is_empty() && back.ints.is_empty() && back.text.is_empty());
    }
}
