//! Property tests for the trace wire format: randomly-built [`Event`]s
//! must survive `serde_json` exactly, and a [`JsonlSink`] file must
//! re-parse line-by-line into the events that fed it.
//!
//! The vendored proptest shim has no string strategies, so keys and text
//! values are derived from integer strategies via `prop_map`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use nebula_telemetry::{Collector, Event, JsonlSink};
use proptest::collection::vec;
use proptest::prelude::*;

const KINDS: [&str; 8] = ["span", "run", "eval_cohort", "round", "client", "wire", "gate_load", "metric"];

/// Builds a fully-populated event from plain integers/floats. Floats are
/// finite by construction (NaN would break the equality check, and the
/// instrumentation never records non-finite values).
fn build_event(kind: u64, t_ns: u64, span: u64, ints: Vec<u64>, nums: Vec<f64>, texts: Vec<u64>) -> Event {
    let mut e = Event::new(KINDS[(kind % KINDS.len() as u64) as usize]);
    e.t_ns = t_ns;
    e.span = span;
    for (i, v) in ints.into_iter().enumerate() {
        e.ints.insert(format!("i{i:02}"), v);
    }
    for (i, v) in nums.into_iter().enumerate() {
        e.num.insert(format!("n{i:02}"), v);
    }
    for (i, v) in texts.into_iter().enumerate() {
        // Exercise escaping: quotes, backslashes and control chars.
        e.text.insert(format!("t{i:02}"), format!("v-{v}-\"\\\n\t\u{1}"));
    }
    e
}

fn fresh_jsonl_path() -> std::path::PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("nebula-telemetry-rt-{}-{n}.jsonl", std::process::id()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// One event → JSON string → event is the identity, field for field.
    #[test]
    fn event_round_trips_through_serde_json(
        kind in 0u64..8,
        t_ns in 0u64..u64::MAX,
        span in 0u64..u64::MAX,
        ints in vec(0u64..u64::MAX, 0..6),
        nums in vec(-1e12f64..1e12, 0..6),
        texts in vec(0u64..u64::MAX, 0..6),
    ) {
        let e = build_event(kind, t_ns, span, ints, nums, texts);
        let line = serde_json::to_string(&e).expect("serialize");
        let back: Event = serde_json::from_str(&line).expect("parse");
        prop_assert_eq!(back, e);
    }

    /// A batch of events through a JsonlSink file comes back verbatim:
    /// one line per event, in record order, parse-equal to the input.
    #[test]
    fn jsonl_sink_lines_round_trip(
        seeds in vec(0u64..u64::MAX, 1..12),
    ) {
        let events: Vec<Event> = seeds
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                build_event(
                    s,
                    s.rotate_left(7),
                    s.rotate_left(13),
                    vec![s, s ^ 0xA5A5, i as u64],
                    vec![(s % 1_000_003) as f64 * 0.125 - 62_500.0],
                    vec![s.rotate_left(29)],
                )
            })
            .collect();

        let path = fresh_jsonl_path();
        {
            let sink = Arc::new(JsonlSink::create(&path).expect("create sink"));
            for e in &events {
                sink.record(e);
            }
            sink.flush();
        }

        let contents = std::fs::read_to_string(&path).expect("read trace");
        let _ = std::fs::remove_file(&path);
        let parsed: Vec<Event> = contents
            .lines()
            .map(|l| serde_json::from_str(l).expect("every line parses"))
            .collect();
        prop_assert_eq!(parsed, events);
    }
}
