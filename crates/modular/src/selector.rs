//! The unified module selector (§4.2).
//!
//! One embedding network extracts features `h = embed(x)` from the raw
//! input, and one gate head per module layer maps `h` to logits over that
//! layer's modules — so the activated modules for *all* layers are decided
//! in one shot, decoupled from module execution. This is what lets an edge
//! device score module importance locally from its own data without
//! running the full model (§5.1).
//!
//! Noisy top-k (§4.3): during training, Gaussian noise is added to the
//! gate logits before selection so that near-tied modules both receive
//! training signal. We use fixed-std noise rather than the learned noise
//! head of Shazeer et al.; the paper cites the technique without
//! specifying the variant, and fixed noise reproduces the load-spreading
//! effect (ablated in the bench suite).

use nebula_nn::{Activation, Layer, Linear, Mode};
use nebula_tensor::{NebulaRng, Tensor};

/// Unified selector: shared embedding + per-layer gate heads.
pub struct UnifiedSelector {
    embed: Linear,
    act: Activation,
    gates: Vec<Linear>,
    noise_std: f32,
    rng: NebulaRng,
    cached_h: Option<Tensor>,
}

impl UnifiedSelector {
    /// Builds a selector for `layers` module layers of `modules` modules
    /// each, over raw inputs of width `input_dim`.
    pub fn new(
        input_dim: usize,
        embed_dim: usize,
        layers: usize,
        modules: usize,
        noise_std: f32,
        rng: &mut NebulaRng,
    ) -> Self {
        let embed = Linear::new(input_dim, embed_dim, rng);
        let gates = (0..layers).map(|_| Linear::new(embed_dim, modules, rng)).collect();
        Self { embed, act: Activation::relu(), gates, noise_std, rng: rng.fork(0x5E1E_C70F), cached_h: None }
    }

    /// Number of module layers this selector routes for.
    pub fn num_layers(&self) -> usize {
        self.gates.len()
    }

    /// Gate logits for every module layer. In `Train` mode with
    /// `noise_std > 0`, Gaussian noise is added (noisy top-k).
    pub fn forward(&mut self, x: &Tensor, mode: Mode) -> Vec<Tensor> {
        let e = self.embed.forward(x, mode);
        let h = self.act.forward(&e, mode);
        self.cached_h = Some(h.clone());
        self.gates
            .iter_mut()
            .map(|gate| {
                let mut logits = gate.forward(&h, mode);
                if mode == Mode::Train && self.noise_std > 0.0 {
                    let std = self.noise_std;
                    for v in logits.data_mut() {
                        *v += self.rng.normal_f32(0.0, std);
                    }
                }
                logits
            })
            .collect()
    }

    /// Deterministic (noise-free) logits regardless of mode — used for
    /// importance scoring and the sub-task load matrix.
    pub fn forward_deterministic(&mut self, x: &Tensor) -> Vec<Tensor> {
        self.forward(x, Mode::Eval)
    }

    /// Backward pass: one gradient tensor per layer's logits, in layer
    /// order. Accumulates parameter gradients; returns ∂loss/∂x.
    pub fn backward(&mut self, dlogits: &[Tensor]) -> Tensor {
        assert_eq!(dlogits.len(), self.gates.len(), "dlogits per layer mismatch");
        let h = self.cached_h.as_ref().expect("selector backward before forward");
        let mut dh = Tensor::zeros(h.shape());
        for (gate, dl) in self.gates.iter_mut().zip(dlogits) {
            dh.add_assign(&gate.backward(dl));
        }
        let de = self.act.backward(&dh);
        self.embed.backward(&de)
    }

    /// Visits `(param, grad)` pairs (embedding first, then gates in order).
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        self.embed.visit_params(f);
        for gate in &mut self.gates {
            gate.visit_params(f);
        }
    }

    /// Visits parameters immutably.
    pub fn visit_params_ref(&self, f: &mut dyn FnMut(&Tensor)) {
        self.embed.visit_params_ref(f);
        for gate in &self.gates {
            gate.visit_params_ref(f);
        }
    }

    /// Number of trainable scalars.
    pub fn param_count(&self) -> usize {
        let mut n = 0;
        self.visit_params_ref(&mut |p| n += p.len());
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn selector(noise: f32) -> UnifiedSelector {
        let mut rng = NebulaRng::seed(1);
        UnifiedSelector::new(8, 16, 3, 4, noise, &mut rng)
    }

    #[test]
    fn forward_emits_one_logit_tensor_per_layer() {
        let mut s = selector(0.0);
        let x = Tensor::zeros(&[5, 8]);
        let logits = s.forward(&x, Mode::Eval);
        assert_eq!(logits.len(), 3);
        for l in &logits {
            assert_eq!(l.shape(), &[5, 4]);
        }
    }

    #[test]
    fn eval_mode_is_noise_free_and_deterministic() {
        let mut s = selector(1.0);
        let x = Tensor::ones(&[2, 8]);
        let a = s.forward(&x, Mode::Eval);
        let b = s.forward(&x, Mode::Eval);
        for (la, lb) in a.iter().zip(&b) {
            assert_eq!(la.data(), lb.data());
        }
    }

    #[test]
    fn train_mode_noise_perturbs_logits() {
        let mut s = selector(1.0);
        let x = Tensor::ones(&[2, 8]);
        let a = s.forward(&x, Mode::Train);
        let b = s.forward(&x, Mode::Train);
        assert_ne!(a[0].data(), b[0].data(), "noisy gating should differ across calls");
    }

    #[test]
    fn zero_noise_train_equals_eval() {
        let mut s = selector(0.0);
        let x = Tensor::ones(&[2, 8]);
        let a = s.forward(&x, Mode::Train);
        let b = s.forward(&x, Mode::Eval);
        for (la, lb) in a.iter().zip(&b) {
            assert_eq!(la.data(), lb.data());
        }
    }

    #[test]
    fn backward_accumulates_gate_and_embed_grads() {
        let mut s = selector(0.0);
        let x = Tensor::ones(&[2, 8]);
        let logits = s.forward(&x, Mode::Train);
        let dlogits: Vec<Tensor> = logits.iter().map(|l| Tensor::ones(l.shape())).collect();
        let dx = s.backward(&dlogits);
        assert_eq!(dx.shape(), &[2, 8]);
        let mut gsum = 0.0;
        s.visit_params(&mut |_, g| gsum += g.norm_sq());
        assert!(gsum > 0.0);
    }

    #[test]
    fn param_count_matches_structure() {
        let s = selector(0.0);
        // embed 8→16 + 3 gates 16→4
        assert_eq!(s.param_count(), (8 * 16 + 16) + 3 * (16 * 4 + 4));
    }
}
