//! Block identification (§4.1): find the "smallest repeated layer
//! patterns" in a large model's layer sequence.
//!
//! The paper's modularization starts from an architecture description:
//! a VGG model contains repeated `[Conv, BN, ReLU, Pool, Dropout]` runs,
//! a ResNet contains repeated residual units. This module takes a flat
//! layer sequence, finds the smallest pattern that repeats contiguously
//! and covers the maximal stretch of the network, and cuts the model into
//! blocks — the units the modularizer then replaces with module layers.
//!
//! The scan is exact (O(n²·k) over sequence length n and pattern length
//! k) — architectures are dozens of layers, so there is nothing to
//! optimise.

use serde::{Deserialize, Serialize};

/// A layer kind in an architecture description. `Custom` carries a label
/// so exotic layers can still participate in pattern matching.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerDesc {
    Conv,
    BatchNorm,
    ReLU,
    Pool,
    Dropout,
    Linear,
    Residual,
    Custom(String),
}

/// One identified block: a contiguous run of layers.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Block {
    /// Index of the block's first layer in the original sequence.
    pub start: usize,
    /// The layers the block covers.
    pub layers: Vec<LayerDesc>,
    /// True when this block is one instance of the repeated pattern (vs a
    /// non-repeating prefix/suffix such as a stem or classifier head).
    pub repeated: bool,
}

/// Result of block identification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockPlan {
    /// The repeating pattern itself (empty if none was found).
    pub pattern: Vec<LayerDesc>,
    /// All blocks in network order: optional stem, the repeated blocks,
    /// optional head.
    pub blocks: Vec<Block>,
}

impl BlockPlan {
    /// The repeated blocks only — the units handed to the modularizer.
    pub fn repeated_blocks(&self) -> Vec<&Block> {
        self.blocks.iter().filter(|b| b.repeated).collect()
    }
}

/// Finds the smallest repeated layer pattern covering the longest stretch
/// of `arch`, and cuts the architecture into stem / repeated blocks /
/// head.
///
/// Selection rule: among all (pattern length k ≥ 1, start offset s)
/// whose pattern repeats ≥ 2 times contiguously, pick the candidate
/// covering the most layers; ties break toward the *smallest* k (the
/// paper's "smallest repeated pattern"), then the earliest start.
pub fn identify_blocks(arch: &[LayerDesc]) -> BlockPlan {
    let n = arch.len();
    let mut best: Option<(usize, usize, usize)> = None; // (k, start, reps)

    for k in 1..=n / 2 {
        for start in 0..n.saturating_sub(2 * k - 1) {
            let pattern = &arch[start..start + k];
            let mut reps = 1;
            while start + (reps + 1) * k <= n && &arch[start + reps * k..start + (reps + 1) * k] == pattern {
                reps += 1;
            }
            if reps >= 2 {
                let covered = reps * k;
                let better = match best {
                    None => true,
                    Some((bk, bs, breps)) => {
                        let bcov = breps * bk;
                        covered > bcov
                            || (covered == bcov && k < bk)
                            || (covered == bcov && k == bk && start < bs)
                    }
                };
                if better {
                    best = Some((k, start, reps));
                }
            }
        }
    }

    let Some((k, start, reps)) = best else {
        // No repetition: the whole network is a single non-repeated block.
        return BlockPlan {
            pattern: Vec::new(),
            blocks: if n == 0 {
                Vec::new()
            } else {
                vec![Block { start: 0, layers: arch.to_vec(), repeated: false }]
            },
        };
    };

    let mut blocks = Vec::new();
    if start > 0 {
        blocks.push(Block { start: 0, layers: arch[..start].to_vec(), repeated: false });
    }
    for r in 0..reps {
        let s = start + r * k;
        blocks.push(Block { start: s, layers: arch[s..s + k].to_vec(), repeated: true });
    }
    let end = start + reps * k;
    if end < n {
        blocks.push(Block { start: end, layers: arch[end..].to_vec(), repeated: false });
    }

    BlockPlan { pattern: arch[start..start + k].to_vec(), blocks }
}

/// The VGG16 architecture as a layer sequence (conv blocks + classifier),
/// simplified to the per-block pattern the paper quotes.
pub fn vgg16_arch() -> Vec<LayerDesc> {
    use LayerDesc::*;
    let mut arch = Vec::new();
    for _ in 0..5 {
        arch.extend([Conv, BatchNorm, ReLU, Pool, Dropout]);
    }
    arch.extend([Linear, ReLU, Linear]);
    arch
}

/// A ResNet-18-style architecture: a conv stem then repeated residual
/// units, then the classifier.
pub fn resnet18_arch() -> Vec<LayerDesc> {
    use LayerDesc::*;
    let mut arch = vec![Conv, BatchNorm, ReLU, Pool];
    for _ in 0..8 {
        arch.extend([Conv, BatchNorm, ReLU, Conv, BatchNorm, Residual]);
    }
    arch.extend([Pool, Linear]);
    arch
}

#[cfg(test)]
mod tests {
    use super::*;
    use LayerDesc::*;

    #[test]
    fn finds_the_vgg_block_pattern() {
        let plan = identify_blocks(&vgg16_arch());
        assert_eq!(plan.pattern, vec![Conv, BatchNorm, ReLU, Pool, Dropout]);
        assert_eq!(plan.repeated_blocks().len(), 5);
        // Head (classifier) is a non-repeated trailing block.
        let last = plan.blocks.last().unwrap();
        assert!(!last.repeated);
        assert_eq!(last.layers, vec![Linear, ReLU, Linear]);
    }

    #[test]
    fn finds_the_resnet_residual_unit() {
        let plan = identify_blocks(&resnet18_arch());
        assert_eq!(plan.pattern, vec![Conv, BatchNorm, ReLU, Conv, BatchNorm, Residual]);
        assert_eq!(plan.repeated_blocks().len(), 8);
        // Stem precedes, head follows.
        assert!(!plan.blocks.first().unwrap().repeated);
        assert!(!plan.blocks.last().unwrap().repeated);
    }

    #[test]
    fn blocks_tile_the_whole_network() {
        for arch in [vgg16_arch(), resnet18_arch()] {
            let plan = identify_blocks(&arch);
            let mut cursor = 0;
            for b in &plan.blocks {
                assert_eq!(b.start, cursor, "gap or overlap at layer {cursor}");
                cursor += b.layers.len();
            }
            assert_eq!(cursor, arch.len(), "blocks do not cover the network");
        }
    }

    #[test]
    fn no_repetition_yields_single_block() {
        let arch = vec![Conv, Linear, Pool];
        let plan = identify_blocks(&arch);
        assert!(plan.pattern.is_empty());
        assert_eq!(plan.blocks.len(), 1);
        assert!(!plan.blocks[0].repeated);
    }

    #[test]
    fn smallest_pattern_wins_ties() {
        // [A A A A] can be read as 4×[A] or 2×[A A]; both cover 4 layers,
        // so the smaller pattern must win.
        let arch = vec![Conv, Conv, Conv, Conv];
        let plan = identify_blocks(&arch);
        assert_eq!(plan.pattern, vec![Conv]);
        assert_eq!(plan.repeated_blocks().len(), 4);
    }

    #[test]
    fn coverage_beats_pattern_size() {
        // 2×[Conv ReLU] (covers 4) vs 3×[Pool] (covers 3): coverage wins.
        let arch = vec![Conv, ReLU, Conv, ReLU, Pool, Pool, Pool];
        let plan = identify_blocks(&arch);
        assert_eq!(plan.pattern, vec![Conv, ReLU]);
    }

    #[test]
    fn custom_layers_participate_in_matching() {
        let attn = || Custom("attention".to_string());
        let arch = vec![Linear, attn(), Linear, attn(), Linear, attn()];
        let plan = identify_blocks(&arch);
        assert_eq!(plan.pattern.len(), 2);
        assert_eq!(plan.repeated_blocks().len(), 3);
    }

    #[test]
    fn empty_architecture_is_handled() {
        let plan = identify_blocks(&[]);
        assert!(plan.blocks.is_empty());
        assert!(plan.pattern.is_empty());
    }
}
