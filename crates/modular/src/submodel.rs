//! Sub-model specifications: which modules a derived edge model contains.

use serde::{Deserialize, Serialize};

/// A sub-model of a modularized model: for each module layer, the sorted
/// set of module indices the sub-model retains. Deriving a sub-model is
/// pure bookkeeping — no retraining, pruning or distillation (§5.1).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SubModelSpec {
    active: Vec<Vec<usize>>,
}

impl SubModelSpec {
    /// Builds a spec from per-layer module index lists. Indices are sorted
    /// and deduplicated; every layer must keep at least one module.
    pub fn new(mut active: Vec<Vec<usize>>) -> Self {
        for layer in &mut active {
            layer.sort_unstable();
            layer.dedup();
            assert!(!layer.is_empty(), "sub-model layer with no modules");
        }
        Self { active }
    }

    /// The full model: every module of every layer.
    pub fn full(num_layers: usize, modules_per_layer: usize) -> Self {
        Self { active: vec![(0..modules_per_layer).collect(); num_layers] }
    }

    /// Number of module layers.
    pub fn num_layers(&self) -> usize {
        self.active.len()
    }

    /// Active module indices of layer `l`.
    pub fn layer(&self, l: usize) -> &[usize] {
        &self.active[l]
    }

    /// All per-layer index lists.
    pub fn layers(&self) -> &[Vec<usize>] {
        &self.active
    }

    /// Total module count across layers.
    pub fn total_modules(&self) -> usize {
        self.active.iter().map(Vec::len).sum()
    }

    /// True if `(layer, module)` is in the sub-model.
    pub fn contains(&self, layer: usize, module: usize) -> bool {
        self.active[layer].binary_search(&module).is_ok()
    }

    /// Converts to per-layer boolean masks of width `modules_per_layer`.
    pub fn to_masks(&self, modules_per_layer: usize) -> Vec<Vec<bool>> {
        self.active
            .iter()
            .map(|layer| {
                let mut mask = vec![false; modules_per_layer];
                for &i in layer {
                    assert!(i < modules_per_layer, "module index {i} out of range");
                    mask[i] = true;
                }
                mask
            })
            .collect()
    }

    /// Validates against a model shape; panics on mismatch.
    pub fn validate(&self, num_layers: usize, modules_per_layer: usize) {
        assert_eq!(self.active.len(), num_layers, "sub-model layer count mismatch");
        for layer in &self.active {
            for &i in layer {
                assert!(i < modules_per_layer, "module index {i} out of range");
            }
        }
    }

    /// Layer-wise union: the modules either sub-model uses. Useful for
    /// sizing a payload that must serve both of a device's recent
    /// environments.
    pub fn union(&self, other: &SubModelSpec) -> SubModelSpec {
        assert_eq!(self.num_layers(), other.num_layers(), "layer count mismatch");
        SubModelSpec::new(
            self.active
                .iter()
                .zip(&other.active)
                .map(|(a, b)| {
                    let mut m = a.clone();
                    m.extend_from_slice(b);
                    m
                })
                .collect(),
        )
    }

    /// Layer-wise intersection. Panics (via [`SubModelSpec::new`]) if some
    /// layer ends up empty — disjoint sub-models have no common sub-model.
    pub fn intersection(&self, other: &SubModelSpec) -> SubModelSpec {
        assert_eq!(self.num_layers(), other.num_layers(), "layer count mismatch");
        SubModelSpec::new(
            self.active
                .iter()
                .enumerate()
                .map(|(l, a)| a.iter().copied().filter(|&i| other.contains(l, i)).collect())
                .collect(),
        )
    }

    /// Jaccard similarity of the module sets (1.0 = identical sub-models).
    /// Measures how much of a device's sub-model survives an environment
    /// shift — the quantity that makes Nebula's cloud round-trips cheap
    /// when environments recur.
    pub fn jaccard(&self, other: &SubModelSpec) -> f64 {
        assert_eq!(self.num_layers(), other.num_layers(), "layer count mismatch");
        let mut inter = 0usize;
        let mut union = 0usize;
        for (l, a) in self.active.iter().enumerate() {
            let common = a.iter().filter(|&&i| other.contains(l, i)).count();
            inter += common;
            union += a.len() + other.layer(l).len() - common;
        }
        if union == 0 {
            1.0
        } else {
            inter as f64 / union as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_sorts_and_dedups() {
        let s = SubModelSpec::new(vec![vec![3, 1, 3, 0]]);
        assert_eq!(s.layer(0), &[0, 1, 3]);
        assert_eq!(s.total_modules(), 3);
    }

    #[test]
    #[should_panic(expected = "no modules")]
    fn rejects_empty_layer() {
        SubModelSpec::new(vec![vec![0], vec![]]);
    }

    #[test]
    fn full_covers_everything() {
        let s = SubModelSpec::full(2, 3);
        assert_eq!(s.total_modules(), 6);
        assert!(s.contains(1, 2));
    }

    #[test]
    fn masks_match_indices() {
        let s = SubModelSpec::new(vec![vec![0, 2]]);
        assert_eq!(s.to_masks(4), vec![vec![true, false, true, false]]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn masks_reject_out_of_range() {
        SubModelSpec::new(vec![vec![7]]).to_masks(4);
    }

    #[test]
    fn contains_uses_binary_search() {
        let s = SubModelSpec::new(vec![vec![5, 1, 9]]);
        assert!(s.contains(0, 5));
        assert!(!s.contains(0, 2));
    }

    #[test]
    fn union_and_intersection() {
        let a = SubModelSpec::new(vec![vec![0, 1], vec![2]]);
        let b = SubModelSpec::new(vec![vec![1, 3], vec![2, 0]]);
        let u = a.union(&b);
        assert_eq!(u.layer(0), &[0, 1, 3]);
        assert_eq!(u.layer(1), &[0, 2]);
        let i = a.intersection(&b);
        assert_eq!(i.layer(0), &[1]);
        assert_eq!(i.layer(1), &[2]);
    }

    #[test]
    #[should_panic(expected = "no modules")]
    fn disjoint_intersection_panics() {
        let a = SubModelSpec::new(vec![vec![0]]);
        let b = SubModelSpec::new(vec![vec![1]]);
        a.intersection(&b);
    }

    #[test]
    fn jaccard_bounds_and_identity() {
        let a = SubModelSpec::new(vec![vec![0, 1], vec![2, 3]]);
        assert_eq!(a.jaccard(&a), 1.0);
        let b = SubModelSpec::new(vec![vec![2, 3], vec![0, 1]]);
        assert_eq!(a.jaccard(&b), 0.0);
        let c = SubModelSpec::new(vec![vec![0, 2], vec![2, 0]]);
        // inter = 1 (layer0: {0}) + 1 (layer1: {2}) = 2; union = 3 + 3 = 6.
        nebula_tensor::assert_close(a.jaccard(&c) as f32, 2.0 / 6.0, 1e-9);
    }

    #[test]
    fn union_contains_both_operands() {
        let a = SubModelSpec::new(vec![vec![0], vec![1, 2]]);
        let b = SubModelSpec::new(vec![vec![3], vec![1]]);
        let u = a.union(&b);
        for (l, layer) in a.layers().iter().enumerate() {
            for &i in layer {
                assert!(u.contains(l, i));
            }
        }
        for (l, layer) in b.layers().iter().enumerate() {
            for &i in layer {
                assert!(u.contains(l, i));
            }
        }
    }
}
