//! Resource cost model for modules and sub-models.
//!
//! The paper derives sub-models under memory / computation / communication
//! constraints (Eq. 2). Module structures are fixed at modularization time,
//! so their costs are computed once on the cloud ("we are able to calculate
//! their resource costs in advance") and summed per candidate sub-model.
//!
//! Conventions:
//! * `params` — trainable scalar count;
//! * `flops` — multiply-accumulates for a single-sample forward pass;
//! * training cost ≈ 3× inference flops (forward + 2 backward products),
//!   and training peak memory ≈ params + activations + gradients +
//!   optimiser state, which is why the paper's Fig. 2(c) shows ≥10×
//!   training-vs-inference memory for convolutional models; for our MLP
//!   substrate the ratio is smaller but the monotonicity is preserved.

use crate::config::ModularConfig;
use crate::submodel::SubModelSpec;
use serde::{Deserialize, Serialize};

/// Bytes per f32 parameter.
pub const BYTES_PER_PARAM: u64 = 4;

/// Cost of a single component (module or shared part).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModuleCost {
    /// Trainable parameters.
    pub params: u64,
    /// Forward multiply-accumulates per sample.
    pub flops: u64,
}

impl ModuleCost {
    /// Cost of a shrunk module `d → h → d`.
    pub fn shrunk(d: usize, h: usize) -> Self {
        let params = (d * h + h) + (h * d + d);
        let flops = d * h + h * d;
        Self { params: params as u64, flops: flops as u64 }
    }

    /// Cost of the parameter-free residual module.
    pub fn residual() -> Self {
        Self { params: 0, flops: 0 }
    }

    /// Cost of a dense layer `in → out`.
    pub fn linear(input: usize, output: usize) -> Self {
        Self { params: (input * output + output) as u64, flops: (input * output) as u64 }
    }

    /// Parameter bytes (f32).
    pub fn param_bytes(self) -> u64 {
        self.params * BYTES_PER_PARAM
    }
}

impl std::ops::Add for ModuleCost {
    type Output = ModuleCost;

    /// Component sum.
    fn add(self, other: ModuleCost) -> ModuleCost {
        ModuleCost { params: self.params + other.params, flops: self.flops + other.flops }
    }
}

impl std::ops::AddAssign for ModuleCost {
    fn add_assign(&mut self, other: ModuleCost) {
        *self = *self + other;
    }
}

/// Aggregate resource profile of a sub-model.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SubModelCost {
    /// Total trainable parameters (modules + shared parts).
    pub params: u64,
    /// Forward multiply-accumulates per sample.
    pub flops: u64,
    /// Bytes transmitted when shipping the sub-model (params × 4).
    pub comm_bytes: u64,
    /// Estimated peak *inference* memory in bytes
    /// (parameters + one activation set).
    pub inference_mem_bytes: u64,
    /// Estimated peak *training* memory in bytes
    /// (params + grads + optimiser state + cached activations).
    pub training_mem_bytes: u64,
}

/// Cost calculator for a given modular configuration.
#[derive(Clone, Debug)]
pub struct CostModel {
    cfg: ModularConfig,
}

impl CostModel {
    pub fn new(cfg: ModularConfig) -> Self {
        Self { cfg }
    }

    /// Cost of module `(layer, index)` under the configuration.
    pub fn module(&self, _layer: usize, index: usize) -> ModuleCost {
        let is_residual = self.cfg.residual_module && index == self.cfg.modules_per_layer - 1;
        if is_residual {
            ModuleCost::residual()
        } else {
            ModuleCost::shrunk(self.cfg.width, self.cfg.module_hidden)
        }
    }

    /// Cost of the shared parts: stem + head + selector.
    pub fn shared(&self) -> ModuleCost {
        let stem = match &self.cfg.conv_stem {
            None => ModuleCost::linear(self.cfg.input_dim, self.cfg.width),
            Some(cs) => {
                // Conv1d (same padding, stride 1) + projection Linear.
                let conv = ModuleCost {
                    params: (cs.out_channels * cs.in_channels * cs.kernel + cs.out_channels) as u64,
                    flops: (cs.out_channels * cs.in_channels * cs.kernel * cs.in_len) as u64,
                };
                conv + ModuleCost::linear(cs.pooled_features(), self.cfg.width)
            }
        };
        let head = ModuleCost::linear(self.cfg.width, self.cfg.classes);
        let embed = ModuleCost::linear(self.cfg.input_dim, self.cfg.selector_embed);
        let gates = ModuleCost {
            params: (self.cfg.num_layers
                * (self.cfg.selector_embed * self.cfg.modules_per_layer + self.cfg.modules_per_layer))
                as u64,
            flops: (self.cfg.num_layers * self.cfg.selector_embed * self.cfg.modules_per_layer) as u64,
        };
        stem + head + embed + gates
    }

    /// Training-memory increment of adding module `(layer, index)` to a
    /// sub-model: parameter state (params + grads + momentum) plus the
    /// module's share of the batch activation cache. Summing this over a
    /// spec's modules plus [`CostModel::base_training_mem_bytes`]
    /// reproduces [`SubModelCost::training_mem_bytes`] exactly — the
    /// identity Eq. 2's memory dimension relies on.
    pub fn module_training_mem_bytes(&self, layer: usize, index: usize) -> u64 {
        let m = self.module(layer, index);
        3 * m.param_bytes() + Self::BATCH * self.cfg.module_hidden as u64 * BYTES_PER_PARAM
    }

    /// Training-memory cost of the mandatory shared parts (stem, head,
    /// selector) plus the trunk activation cache, before any module.
    pub fn base_training_mem_bytes(&self, num_layers: usize) -> u64 {
        3 * self.shared().param_bytes()
            + Self::BATCH * (self.cfg.width * (num_layers + 2)) as u64 * BYTES_PER_PARAM
    }

    /// The batch size the training-memory model assumes (paper §6.1).
    pub const BATCH: u64 = 16;

    /// Full cost profile of a sub-model.
    pub fn submodel(&self, spec: &SubModelSpec) -> SubModelCost {
        spec.validate(self.cfg.num_layers, self.cfg.modules_per_layer);
        let mut total = self.shared();
        for (l, layer) in spec.layers().iter().enumerate() {
            for &i in layer {
                total += self.module(l, i);
            }
        }
        self.finish(total, spec)
    }

    /// Cost profile of the full model.
    pub fn full_model(&self) -> SubModelCost {
        let spec = SubModelSpec::full(self.cfg.num_layers, self.cfg.modules_per_layer);
        self.submodel(&spec)
    }

    fn finish(&self, total: ModuleCost, spec: &SubModelSpec) -> SubModelCost {
        let param_bytes = total.param_bytes();
        // Activations: trunk width per module layer plus module bottlenecks,
        // per sample; training caches them all, inference keeps ~2 buffers.
        let act_per_sample = (self.cfg.width * (spec.num_layers() + 2)
            + self.cfg.module_hidden * spec.total_modules()) as u64
            * BYTES_PER_PARAM;
        let batch = Self::BATCH; // paper's batch size
        SubModelCost {
            params: total.params,
            flops: total.flops,
            comm_bytes: param_bytes,
            inference_mem_bytes: param_bytes + 2 * (self.cfg.width as u64) * BYTES_PER_PARAM,
            // params + grads + SGD momentum + activation cache for a batch.
            training_mem_bytes: 3 * param_bytes + batch * act_per_sample,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost_model() -> CostModel {
        CostModel::new(ModularConfig::toy(16, 4))
    }

    #[test]
    fn shrunk_module_cost_formula() {
        let c = ModuleCost::shrunk(8, 3);
        assert_eq!(c.params, (8 * 3 + 3 + 3 * 8 + 8) as u64);
        assert_eq!(c.flops, (8 * 3 + 3 * 8) as u64);
    }

    #[test]
    fn residual_module_is_free() {
        let cm = cost_model();
        // toy config: residual_module = true, so the last index is free.
        let c = cm.module(0, 3);
        assert_eq!(c, ModuleCost::residual());
        assert!(cm.module(0, 0).params > 0);
    }

    #[test]
    fn module_cost_matches_actual_model() {
        use crate::model::ModularModel;
        let cfg = ModularConfig::toy(16, 4);
        let cm = CostModel::new(cfg.clone());
        let m = ModularModel::new(cfg, 1);
        assert_eq!(cm.module(0, 0).params as usize, m.module_param_count(0, 0));
        assert_eq!(cm.module(1, 3).params as usize, m.module_param_count(1, 3));
    }

    #[test]
    fn submodel_cost_grows_with_module_count() {
        let cm = cost_model();
        let small = cm.submodel(&SubModelSpec::new(vec![vec![0], vec![0]]));
        let big = cm.full_model();
        assert!(big.params > small.params);
        assert!(big.comm_bytes > small.comm_bytes);
        assert!(big.training_mem_bytes > small.training_mem_bytes);
    }

    #[test]
    fn training_memory_exceeds_inference_memory() {
        let cm = cost_model();
        let c = cm.full_model();
        assert!(
            c.training_mem_bytes > 3 * c.inference_mem_bytes,
            "training {} vs inference {}",
            c.training_mem_bytes,
            c.inference_mem_bytes
        );
    }

    #[test]
    fn comm_bytes_is_four_per_param() {
        let cm = cost_model();
        let c = cm.full_model();
        assert_eq!(c.comm_bytes, c.params * 4);
    }
}
