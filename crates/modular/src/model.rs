//! The modularized cloud model (§4.1): stem → L module layers → head,
//! routed by the unified selector, with sub-model masking.

use crate::config::ModularConfig;
use crate::moe_layer::MoeLayer;
use crate::selector::UnifiedSelector;
use crate::submodel::SubModelSpec;
use nebula_nn::{Activation, Conv1d, Layer, Linear, MaxPool1d, Mode, Sequential};
use nebula_tensor::{NebulaRng, Tensor};

/// A modularized model.
///
/// Implements [`Layer`], so the generic training/eval helpers work on it
/// directly. Internals the framework relies on:
/// * [`ModularModel::set_submodel`] — restrict routing to a sub-model's
///   modules (deriving an edge model is *just this call*);
/// * [`ModularModel::gate_probs`] — deterministic per-layer gate
///   distributions, the basis of module importance (§5.1) and the
///   sub-task load matrix `H` (§4.3);
/// * per-module parameter access for module-wise aggregation (§5.2);
/// * the load-balancing loss is folded into `backward` with weight
///   `cfg.load_balance_weight`, so a plain cross-entropy training loop
///   trains exactly the paper's §4.3 objective.
pub struct ModularModel {
    cfg: ModularConfig,
    /// Dense (`Linear → ReLU`) or convolutional
    /// (`Conv1d → ReLU → MaxPool1d → Linear → ReLU`) stem, per
    /// `cfg.conv_stem`.
    stem: Sequential,
    layers: Vec<MoeLayer>,
    head: Linear,
    selector: UnifiedSelector,
    /// Current per-layer module availability (sub-model restriction).
    masks: Vec<Vec<bool>>,
    /// Current per-sample activation count.
    top_k: usize,
    /// Mean per-layer load-balancing loss of the last forward.
    last_lb_loss: f32,
    /// KL-target distributions for gate fine-tuning (§4.3 step 3);
    /// when set, `backward` adds λ·KL(g_label ‖ gate) gradients.
    gate_kl_target: Option<(Vec<Tensor>, f32)>,
    /// Cached gate logits of the last forward (per layer).
    cached_logits: Vec<Tensor>,
}

impl ModularModel {
    /// Builds a freshly-initialised modularized model.
    pub fn new(cfg: ModularConfig, seed: u64) -> Self {
        cfg.validate();
        let mut rng = NebulaRng::seed(seed);
        let stem = match &cfg.conv_stem {
            None => Sequential::new()
                .with(Linear::new(cfg.input_dim, cfg.width, &mut rng))
                .with(Activation::relu()),
            Some(cs) => Sequential::new()
                .with(Conv1d::new(
                    cs.in_channels,
                    cs.out_channels,
                    cs.kernel,
                    1,
                    cs.kernel / 2,
                    cs.in_len,
                    &mut rng,
                ))
                .with(Activation::relu())
                .with(MaxPool1d::new(cs.out_channels, cs.in_len, cs.pool))
                .with(Linear::new(cs.pooled_features(), cfg.width, &mut rng))
                .with(Activation::relu()),
        };
        let layers: Vec<MoeLayer> = (0..cfg.num_layers)
            .map(|_| {
                MoeLayer::new(
                    cfg.width,
                    cfg.module_hidden,
                    cfg.modules_per_layer,
                    cfg.residual_module,
                    &mut rng,
                )
            })
            .collect();
        let head = Linear::new(cfg.width, cfg.classes, &mut rng);
        let selector = UnifiedSelector::new(
            cfg.input_dim,
            cfg.selector_embed,
            cfg.num_layers,
            cfg.modules_per_layer,
            cfg.gate_noise_std,
            &mut rng,
        );
        let masks = vec![vec![true; cfg.modules_per_layer]; cfg.num_layers];
        let top_k = cfg.top_k;
        Self {
            cfg,
            stem,
            layers,
            head,
            selector,
            masks,
            top_k,
            last_lb_loss: 0.0,
            gate_kl_target: None,
            cached_logits: Vec::new(),
        }
    }

    /// The model's configuration.
    pub fn config(&self) -> &ModularConfig {
        &self.cfg
    }

    /// Restricts routing to `spec`'s modules; `None` restores the full model.
    pub fn set_submodel(&mut self, spec: Option<&SubModelSpec>) {
        match spec {
            Some(s) => {
                s.validate(self.cfg.num_layers, self.cfg.modules_per_layer);
                self.masks = s.to_masks(self.cfg.modules_per_layer);
            }
            None => {
                self.masks = vec![vec![true; self.cfg.modules_per_layer]; self.cfg.num_layers];
            }
        }
    }

    /// The currently-active sub-model.
    pub fn current_submodel(&self) -> SubModelSpec {
        SubModelSpec::new(
            self.masks
                .iter()
                .map(|mask| mask.iter().enumerate().filter_map(|(i, &a)| a.then_some(i)).collect())
                .collect(),
        )
    }

    /// Adjusts the per-sample activation count (accuracy–latency knob).
    pub fn set_top_k(&mut self, k: usize) {
        assert!(k >= 1 && k <= self.cfg.modules_per_layer, "top_k {k} out of range");
        self.top_k = k;
    }

    /// Mean per-layer load-balancing loss of the last forward pass.
    pub fn last_load_balance_loss(&self) -> f32 {
        self.last_lb_loss
    }

    /// Sets per-layer gate KL targets (`g_label`, §4.3 step 3) applied on
    /// the next backward pass with weight `lambda`; `None` clears them.
    pub fn set_gate_kl_target(&mut self, targets: Option<(Vec<Tensor>, f32)>) {
        if let Some((t, _)) = &targets {
            assert_eq!(t.len(), self.cfg.num_layers, "KL target layer count mismatch");
        }
        self.gate_kl_target = targets;
    }

    /// Deterministic (noise-free, unmasked) gate probability distributions
    /// per layer for inputs `x`: the `g(x; θ)` of §4.2, used for module
    /// importance scoring and the sub-task load matrix.
    pub fn gate_probs(&mut self, x: &Tensor) -> Vec<Tensor> {
        self.selector.forward_deterministic(x).into_iter().map(|logits| logits.softmax_rows()).collect()
    }

    /// Per-layer, per-module mean gate probability over a batch — the
    /// paper's module importance `Importance(ω_i | D_k)` (§5.1).
    pub fn importance(&mut self, x: &Tensor) -> Vec<Vec<f32>> {
        self.gate_probs(x).into_iter().map(|p| p.mean_rows().into_vec()).collect()
    }

    /// Flat parameters of module `(layer, index)` (empty for the residual
    /// module).
    pub fn module_param_vector(&self, layer: usize, module: usize) -> Vec<f32> {
        self.layers[layer].module(module).param_vector()
    }

    /// Overwrites the parameters of module `(layer, index)`.
    pub fn load_module_param_vector(&mut self, layer: usize, module: usize, flat: &[f32]) {
        self.layers[layer].module_mut(module).load_param_vector(flat);
    }

    /// Parameter count of one module.
    pub fn module_param_count(&self, layer: usize, module: usize) -> usize {
        self.layers[layer].module(module).param_count()
    }

    /// Flat parameters of the shared parts (stem + head + selector).
    pub fn shared_param_vector(&self) -> Vec<f32> {
        let mut out = Vec::new();
        self.stem.visit_params_ref(&mut |p| out.extend_from_slice(p.data()));
        self.head.visit_params_ref(&mut |p| out.extend_from_slice(p.data()));
        self.selector.visit_params_ref(&mut |p| out.extend_from_slice(p.data()));
        out
    }

    /// Overwrites the shared parts from a flat vector.
    pub fn load_shared_param_vector(&mut self, flat: &[f32]) {
        let mut offset = 0;
        let mut load = |p: &mut Tensor| {
            let n = p.len();
            p.data_mut().copy_from_slice(&flat[offset..offset + n]);
            offset += n;
        };
        self.stem.visit_params(&mut |p, _| load(p));
        self.head.visit_params(&mut |p, _| load(p));
        self.selector.visit_params(&mut |p, _| load(p));
        assert_eq!(offset, flat.len(), "shared parameter vector length mismatch");
    }

    /// Deep copy: same architecture, identical parameters, fresh caches.
    pub fn deep_clone(&self) -> ModularModel {
        let mut clone = ModularModel::new(self.cfg.clone(), 0);
        clone.load_param_vector(&self.param_vector());
        clone.masks = self.masks.clone();
        clone.top_k = self.top_k;
        clone
    }

    /// Number of module layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Direct access to a module layer (tests, cost model).
    pub fn layer(&self, l: usize) -> &MoeLayer {
        &self.layers[l]
    }
}

impl Layer for ModularModel {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        assert_eq!(x.cols(), self.cfg.input_dim, "input width mismatch");
        let logits = self.selector.forward(x, mode);
        self.cached_logits = logits.clone();

        let mut u = self.stem.forward(x, mode);
        let mut lb = 0.0f32;
        for (l, layer) in self.layers.iter_mut().enumerate() {
            u = layer.forward(&u, &logits[l], &self.masks[l], self.top_k, mode);
            lb += layer.load_balance_loss();
        }
        self.last_lb_loss = lb / self.layers.len() as f32;
        self.head.forward(&u, mode)
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let mut du = self.head.backward(grad);
        let mut dlogits: Vec<Option<Tensor>> = vec![None; self.layers.len()];
        for (l, layer) in self.layers.iter_mut().enumerate().rev() {
            let (dx, dl) = layer.backward(&du);
            dlogits[l] = Some(dl);
            du = dx;
        }
        let dx_stem = self.stem.backward(&du);

        // Assemble selector gradients: task path + load-balancing path
        // (+ optional KL-to-recommended-gate path during fine-tuning).
        let lambda = self.cfg.load_balance_weight;
        let mut dlogit_vec: Vec<Tensor> = Vec::with_capacity(self.layers.len());
        for (l, layer) in self.layers.iter().enumerate() {
            let mut dl = dlogits[l].take().expect("missing layer grad");
            if lambda > 0.0 {
                dl.add_assign(&layer.load_balance_logit_grad(lambda));
            }
            if let Some((targets, kl_w)) = &self.gate_kl_target {
                // ∂KL(t ‖ softmax(logits))/∂logits = softmax(logits) − t,
                // averaged over the batch.
                let probs = self.cached_logits[l].softmax_rows();
                let mut kl_grad = probs.sub(&targets[l]);
                kl_grad.scale_assign(kl_w / grad.rows().max(1) as f32);
                dl.add_assign(&kl_grad);
            }
            dlogit_vec.push(dl);
        }
        let dx_selector = self.selector.backward(&dlogit_vec);
        dx_stem.add(&dx_selector)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        self.stem.visit_params(f);
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
        self.head.visit_params(f);
        self.selector.visit_params(f);
    }

    fn visit_params_ref(&self, f: &mut dyn FnMut(&Tensor)) {
        self.stem.visit_params_ref(f);
        for layer in &self.layers {
            layer.visit_params_ref(f);
        }
        self.head.visit_params_ref(f);
        self.selector.visit_params_ref(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModularConfig;

    fn model() -> ModularModel {
        let mut cfg = ModularConfig::toy(12, 5);
        cfg.gate_noise_std = 0.0; // deterministic for most tests
        ModularModel::new(cfg, 7)
    }

    #[test]
    fn forward_shapes() {
        let mut m = model();
        let x = Tensor::ones(&[6, 12]);
        let y = m.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), &[6, 5]);
        assert!(y.all_finite());
    }

    #[test]
    fn full_model_gradcheck() {
        let mut cfg = ModularConfig::toy(6, 3);
        cfg.gate_noise_std = 0.0;
        cfg.load_balance_weight = 0.0; // LB loads are non-differentiable
        cfg.width = 8;
        cfg.module_hidden = 4;
        cfg.modules_per_layer = 3;
        cfg.top_k = 3; // k = N avoids top-k set flips under perturbation
        cfg.selector_embed = 6;
        let m = ModularModel::new(cfg, 3);
        // Small eps keeps the probe on one side of the ReLU kinks.
        nebula_nn::gradcheck::check_layer_gradients_with(Box::new(m), 6, 2, 21, 2e-3, 5e-2);
    }

    #[test]
    fn submodel_masking_changes_output() {
        let mut m = model();
        let x = Tensor::ones(&[4, 12]);
        let full = m.forward(&x, Mode::Eval);
        let spec = SubModelSpec::new(vec![vec![0], vec![0]]);
        m.set_submodel(Some(&spec));
        let masked = m.forward(&x, Mode::Eval);
        assert_ne!(full.data(), masked.data());
        m.set_submodel(None);
        let restored = m.forward(&x, Mode::Eval);
        nebula_tensor::assert_tensor_close(&restored, &full, 1e-6);
    }

    #[test]
    fn current_submodel_roundtrip() {
        let mut m = model();
        let spec = SubModelSpec::new(vec![vec![1, 3], vec![0, 2]]);
        m.set_submodel(Some(&spec));
        assert_eq!(m.current_submodel(), spec);
    }

    #[test]
    fn gate_probs_rows_sum_to_one() {
        let mut m = model();
        let x = Tensor::ones(&[3, 12]);
        for p in m.gate_probs(&x) {
            for b in 0..3 {
                nebula_tensor::assert_close(p.row(b).iter().sum::<f32>(), 1.0, 1e-5);
            }
        }
    }

    #[test]
    fn importance_is_a_distribution_per_layer() {
        let mut m = model();
        let x = Tensor::ones(&[8, 12]);
        let imp = m.importance(&x);
        assert_eq!(imp.len(), 2);
        for layer_imp in &imp {
            assert_eq!(layer_imp.len(), 4);
            nebula_tensor::assert_close(layer_imp.iter().sum::<f32>(), 1.0, 1e-4);
        }
    }

    #[test]
    fn module_param_roundtrip() {
        let mut m = model();
        let v = m.module_param_vector(0, 1);
        assert!(!v.is_empty());
        let doubled: Vec<f32> = v.iter().map(|x| x * 2.0).collect();
        m.load_module_param_vector(0, 1, &doubled);
        assert_eq!(m.module_param_vector(0, 1), doubled);
        // Residual module (last index with residual_module=true) is empty.
        assert!(m.module_param_vector(0, 3).is_empty());
    }

    #[test]
    fn shared_param_roundtrip() {
        let mut m = model();
        let v = m.shared_param_vector();
        let zeros = vec![0.0; v.len()];
        m.load_shared_param_vector(&zeros);
        assert!(m.shared_param_vector().iter().all(|&p| p == 0.0));
    }

    #[test]
    fn deep_clone_matches_outputs() {
        let mut m = model();
        let mut c = m.deep_clone();
        let x = Tensor::ones(&[2, 12]);
        let a = m.forward(&x, Mode::Eval);
        let b = c.forward(&x, Mode::Eval);
        nebula_tensor::assert_tensor_close(&a, &b, 1e-6);
    }

    #[test]
    fn training_reduces_loss_on_toy_task() {
        use nebula_data::{train_epochs, SynthSpec, Synthesizer, TrainConfig};
        use nebula_nn::{Optimizer, Sgd};

        let synth = Synthesizer::new(SynthSpec::toy(), 1);
        let mut rng = NebulaRng::seed(2);
        let train = synth.sample(300, 0, &mut rng);
        let test = synth.sample(150, 0, &mut rng);

        let mut cfg = ModularConfig::toy(16, 4);
        cfg.gate_noise_std = 0.3;
        let mut m = ModularModel::new(cfg, 5);
        let before = nebula_data::evaluate_accuracy(&mut m, &test, 64);
        let mut opt: Box<dyn Optimizer> = Box::new(Sgd::with_momentum(0.05, 0.9));
        let cfg_t = TrainConfig { epochs: 12, batch_size: 16, clip_norm: Some(5.0) };
        train_epochs(&mut m, opt.as_mut(), &train, cfg_t, &mut rng);
        let after = nebula_data::evaluate_accuracy(&mut m, &test, 64);
        assert!(after > before + 0.2, "modular model failed to learn: {before} -> {after}");
        assert!(after > 0.6, "accuracy only {after}");
    }

    #[test]
    fn kl_target_moves_gate_toward_recommendation() {
        use nebula_nn::{cross_entropy, Optimizer, Sgd};

        let mut cfg = ModularConfig::toy(12, 5);
        cfg.gate_noise_std = 0.0;
        let mut m = ModularModel::new(cfg, 9);
        let mut rng = NebulaRng::seed(3);
        let x = Tensor::from_vec((0..16 * 12).map(|_| rng.normal_f32(0.0, 1.0)).collect(), &[16, 12]);
        let labels: Vec<usize> = (0..16).map(|i| i % 5).collect();

        // Recommend module 2 for everything in layer 0, module 0 in layer 1.
        let mut t0 = Tensor::zeros(&[16, 4]);
        let mut t1 = Tensor::zeros(&[16, 4]);
        for b in 0..16 {
            t0.row_mut(b)[2] = 1.0;
            t1.row_mut(b)[0] = 1.0;
        }
        let before = m.gate_probs(&x)[0].mean_rows().data()[2];
        let mut opt = Sgd::new(0.1);
        for _ in 0..60 {
            m.zero_grad();
            m.set_gate_kl_target(Some((vec![t0.clone(), t1.clone()], 2.0)));
            let logits = m.forward(&x, Mode::Train);
            let (_, grad) = cross_entropy(&logits, &labels);
            m.backward(&grad);
            m.clip_grad_norm(5.0);
            opt.step(&mut m);
        }
        m.set_gate_kl_target(None);
        let after = m.gate_probs(&x)[0].mean_rows().data()[2];
        assert!(after > before + 0.1, "gate did not follow KL target: {before} -> {after}");
    }

    #[test]
    fn conv_stem_model_works_end_to_end() {
        use crate::config::ConvStemConfig;
        let mut cfg = ModularConfig::toy(16, 4); // 16 = 2 channels × 8 samples
        cfg.gate_noise_std = 0.0;
        cfg.conv_stem =
            Some(ConvStemConfig { in_channels: 2, in_len: 8, out_channels: 4, kernel: 3, pool: 2 });
        let mut m = ModularModel::new(cfg.clone(), 5);
        let x = Tensor::ones(&[3, 16]);
        let y = m.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), &[3, 4]);
        assert!(y.all_finite());

        // Trainable end to end.
        m.zero_grad();
        let y = m.forward(&x, Mode::Train);
        let dx = m.backward(&Tensor::ones(y.shape()));
        assert!(dx.all_finite());

        // deep_clone reconstructs the conv stem from the config.
        let mut c = m.deep_clone();
        nebula_tensor::assert_tensor_close(&m.forward(&x, Mode::Eval), &c.forward(&x, Mode::Eval), 1e-6);

        // Cost model's shared() matches the actual shared parameter count.
        let cm = crate::cost::CostModel::new(cfg);
        let shared_expected = cm.shared().params as usize;
        assert_eq!(m.shared_param_vector().len(), shared_expected);
    }

    #[test]
    fn conv_stem_gradcheck() {
        use crate::config::ConvStemConfig;
        let mut cfg = ModularConfig::toy(12, 3);
        cfg.gate_noise_std = 0.0;
        cfg.load_balance_weight = 0.0;
        cfg.width = 8;
        cfg.module_hidden = 4;
        cfg.modules_per_layer = 3;
        cfg.top_k = 3;
        cfg.selector_embed = 6;
        cfg.conv_stem =
            Some(ConvStemConfig { in_channels: 2, in_len: 6, out_channels: 3, kernel: 3, pool: 2 });
        let m = ModularModel::new(cfg, 3);
        nebula_nn::gradcheck::check_layer_gradients_with(Box::new(m), 12, 2, 32, 1e-3, 6e-2);
    }

    #[test]
    fn lb_loss_reported_after_forward() {
        let mut m = model();
        let x = Tensor::ones(&[8, 12]);
        m.forward(&x, Mode::Eval);
        assert!(m.last_load_balance_loss() > 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_top_k_validates() {
        let mut m = model();
        m.set_top_k(100);
    }
}
