//! # nebula-modular
//!
//! The paper's primary contribution: **block-level model modularization**
//! (§4.1) and the **unified module selector** (§4.2).
//!
//! A large cloud model is decomposed into a stem, `L` *module layers* and a
//! classifier head. Each module layer holds `N(l)` substitutable modules —
//! shrunk bottleneck blocks plus an optional parameter-free residual
//! (bypass) module. A single selector network (an embedding MLP with one
//! gate head per module layer) looks at the raw input once and emits, for
//! every layer, a probability distribution over that layer's modules; the
//! top-k modules per sample are activated and their outputs combined by
//! softmax-renormalised weighted sum (sparsely-gated MoE).
//!
//! Two properties the rest of the framework builds on:
//! * a **sub-model** is just a per-layer subset of module indices
//!   ([`SubModelSpec`]) — deriving one is masking, not retraining;
//! * module parameters are addressable individually
//!   ([`ModularModel::module_param_vector`]), which is what makes the
//!   module-wise aggregation of §5.2 possible.
//!
//! Module layout and deviations from the paper are documented in
//! DESIGN.md; the notable one is that active-set weights are renormalised
//! over the selected modules (softmax over top-k logits, as in
//! Shazeer et al.'s sparely-gated MoE) so sub-models of different sizes
//! keep a stable output scale.

pub mod blockify;
pub mod config;
pub mod cost;
pub mod model;
pub mod module;
pub mod moe_layer;
pub mod selector;
pub mod stats;
pub mod submodel;

pub use blockify::{identify_blocks, Block, BlockPlan, LayerDesc};
pub use config::ModularConfig;
pub use cost::{ModuleCost, SubModelCost};
pub use model::ModularModel;
pub use module::Module;
pub use moe_layer::MoeLayer;
pub use selector::UnifiedSelector;
pub use stats::{normalized_entropy, routing_stats, LayerRoutingStats};
pub use submodel::SubModelSpec;
