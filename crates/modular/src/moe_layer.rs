//! A module layer: N substitutable modules combined per sample by the
//! selector's gate scores (§4.1–§4.2).
//!
//! Per sample, the top-k allowed modules are activated and their outputs
//! combined by a weighted sum, with weights softmax-renormalised over the
//! active set so sub-models of any size keep a stable output scale:
//!
//! ```text
//! f(x; ω) = Σ_{i∈A} softmax(logits_A)_i · f_i(x; ω_i),  A = Top-k(logits)
//! ```
//!
//! Routing is *per sample*: each module runs once on the sub-batch of rows
//! that selected it (sparse MoE execution), which is also what makes the
//! layer's compute proportional to `k`, not `N`.

use crate::module::Module;
use nebula_nn::{Mode, Workspace};
use nebula_tensor::reduce::{softmax_in_place, top_k_indices_into};
use nebula_tensor::{NebulaRng, Tensor};

/// One module layer of a modularized model.
pub struct MoeLayer {
    modules: Vec<Module>,
    width: usize,
    cache: Option<LayerCache>,
    ws: Workspace,
    /// Per-row gate scratch (masked logits, then their softmax), reused
    /// across forwards so routing never touches the allocator.
    gate_row: Vec<f32>,
    /// Top-k selection scratch.
    topk: Vec<usize>,
}

struct LayerCache {
    /// Number of modules the sub-model mask allowed.
    n_allowed: usize,
    /// Post-top-k, renormalised combination weights (B×N; 0 = inactive).
    weights: Tensor,
    /// Row indices routed to each module.
    rows_per_module: Vec<Vec<usize>>,
    /// Each module's output on its routed rows.
    outputs: Vec<Option<Tensor>>,
    /// Full softmax over allowed modules (B×N), pre-top-k. Only the
    /// load-balancing *gradient* needs the full matrix, so it is kept in
    /// Train mode only; eval forwards skip the B×N materialisation.
    probs: Option<Tensor>,
    /// Column means of the full softmax (length N) — everything the
    /// load-balancing *loss* needs, computed on the fly in both modes.
    mean_probs: Vec<f32>,
    /// Fraction of the batch routed to each module.
    loads: Vec<f32>,
}

impl MoeLayer {
    /// Builds a layer of `n_modules` modules over trunk width `width`.
    /// When `residual_module` is set, the last module is the bypass.
    pub fn new(
        width: usize,
        hidden: usize,
        n_modules: usize,
        residual_module: bool,
        rng: &mut NebulaRng,
    ) -> Self {
        assert!(n_modules >= 1);
        let mut modules = Vec::with_capacity(n_modules);
        let shrunk_count = if residual_module { n_modules - 1 } else { n_modules };
        for _ in 0..shrunk_count {
            modules.push(Module::shrunk(width, hidden, rng));
        }
        if residual_module {
            modules.push(Module::residual());
        }
        Self { modules, width, cache: None, ws: Workspace::new(), gate_row: Vec::new(), topk: Vec::new() }
    }

    /// Number of modules in this layer.
    pub fn num_modules(&self) -> usize {
        self.modules.len()
    }

    /// Trunk width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Access a module (for cost models and tests).
    pub fn module(&self, i: usize) -> &Module {
        &self.modules[i]
    }

    /// Mutable module access (for aggregation).
    pub fn module_mut(&mut self, i: usize) -> &mut Module {
        &mut self.modules[i]
    }

    /// Forward pass.
    ///
    /// * `x` — layer input (B×width);
    /// * `logits` — this layer's gate logits (B×N) from the unified selector;
    /// * `allowed` — module availability mask (sub-model restriction);
    /// * `k` — modules to activate per sample (clamped to the allowed count).
    pub fn forward(&mut self, x: &Tensor, logits: &Tensor, allowed: &[bool], k: usize, mode: Mode) -> Tensor {
        let n = self.modules.len();
        assert_eq!(logits.cols(), n, "gate width != module count");
        assert_eq!(logits.rows(), x.rows(), "gate batch != input batch");
        assert_eq!(allowed.len(), n, "allowed mask length mismatch");
        assert_eq!(x.cols(), self.width, "layer input width mismatch");
        let n_allowed = allowed.iter().filter(|&&a| a).count();
        assert!(n_allowed >= 1, "sub-model leaves no module in a layer");
        let k = k.max(1).min(n_allowed);
        let batch = x.rows();
        // Only the backward pass (load-balance logit gradient) needs the
        // full B×N softmax matrix; eval forwards keep just its column
        // means.
        let keep_probs = mode == Mode::Train;

        // Recycle the previous forward's cache buffers so steady-state
        // routing performs no heap allocation.
        let (mut weights, mut rows_per_module, mut probs, mut mean_probs, mut loads) = match self.cache.take()
        {
            Some(old) => {
                for o in old.outputs.into_iter().flatten() {
                    self.ws.recycle(o);
                }
                let weights = if old.weights.shape() == [batch, n] {
                    let mut w = old.weights;
                    w.zero_();
                    w
                } else {
                    self.ws.recycle(old.weights);
                    self.ws.zeroed(&[batch, n])
                };
                let mut rpm = old.rows_per_module;
                for v in &mut rpm {
                    v.clear();
                }
                let probs = match old.probs {
                    Some(p) if keep_probs && p.shape() == [batch, n] => Some(p),
                    Some(p) => {
                        self.ws.recycle(p);
                        if keep_probs {
                            Some(self.ws.zeroed(&[batch, n]))
                        } else {
                            None
                        }
                    }
                    None => {
                        if keep_probs {
                            Some(self.ws.zeroed(&[batch, n]))
                        } else {
                            None
                        }
                    }
                };
                (weights, rpm, probs, old.mean_probs, old.loads)
            }
            None => (
                Tensor::zeros(&[batch, n]),
                vec![Vec::new(); n],
                if keep_probs { Some(Tensor::zeros(&[batch, n])) } else { None },
                Vec::new(),
                Vec::new(),
            ),
        };
        mean_probs.clear();
        mean_probs.resize(n, 0.0);

        // Per-sample masking, top-k routing, renormalised weights and the
        // full-softmax statistics — one reused scratch row, no clones.
        self.gate_row.clear();
        self.gate_row.resize(n, 0.0);
        for b in 0..batch {
            self.gate_row.copy_from_slice(logits.row(b));
            for (v, &a) in self.gate_row.iter_mut().zip(allowed) {
                if !a {
                    *v = f32::NEG_INFINITY;
                }
            }
            // Top-k over the *masked logits* (pre-softmax), exactly as the
            // previous full-materialisation path selected.
            top_k_indices_into(&self.gate_row, k, &mut self.topk);
            // Softmax over the active logits only.
            let maxv = self.topk.iter().map(|&i| self.gate_row[i]).fold(f32::NEG_INFINITY, f32::max);
            let mut denom = 0.0f32;
            for &i in &self.topk {
                denom += (self.gate_row[i] - maxv).exp();
            }
            for &i in &self.topk {
                weights.row_mut(b)[i] = (self.gate_row[i] - maxv).exp() / denom;
                rows_per_module[i].push(b);
            }
            // Full softmax over allowed modules, accumulated into column
            // sums (row order matches `Tensor::mean_rows` bit-for-bit).
            softmax_in_place(&mut self.gate_row);
            for (s, &p) in mean_probs.iter_mut().zip(self.gate_row.iter()) {
                *s += p;
            }
            if let Some(p) = probs.as_mut() {
                p.row_mut(b).copy_from_slice(&self.gate_row);
            }
        }
        let r = batch as f32;
        if r > 0.0 {
            for s in &mut mean_probs {
                *s *= 1.0 / r;
            }
        }

        // Run each module on its routed rows and scatter the weighted sum.
        let mut y = Tensor::zeros(&[batch, self.width]);
        let mut outputs: Vec<Option<Tensor>> = Vec::with_capacity(n);
        for (i, module) in self.modules.iter_mut().enumerate() {
            let rows = &rows_per_module[i];
            if rows.is_empty() {
                outputs.push(None);
                continue;
            }
            let mut xi = self.ws.zeroed(&[rows.len(), self.width]);
            x.gather_rows_into(rows, &mut xi);
            let oi = module.forward(&xi, mode);
            self.ws.recycle(xi);
            for (j, &b) in rows.iter().enumerate() {
                let w = weights.at(b, i);
                let orow = oi.row(j);
                for (yv, &ov) in y.row_mut(b).iter_mut().zip(orow) {
                    *yv += w * ov;
                }
            }
            outputs.push(Some(oi));
        }

        loads.clear();
        loads.extend((0..n).map(|i| rows_per_module[i].len() as f32 / batch.max(1) as f32));
        self.cache =
            Some(LayerCache { n_allowed, weights, rows_per_module, outputs, probs, mean_probs, loads });
        y
    }

    /// Backward pass: returns `(∂loss/∂x, ∂loss/∂logits)`; accumulates
    /// module parameter gradients.
    ///
    /// The gate gradient covers the differentiable path through the active
    /// set's renormalised softmax; the discrete top-k selection itself is
    /// treated as constant (straight-through, as in sparsely-gated MoE).
    pub fn backward(&mut self, dy: &Tensor) -> (Tensor, Tensor) {
        let cache = self.cache.as_ref().expect("MoeLayer::backward before forward");
        let batch = dy.rows();
        let n = self.modules.len();
        assert_eq!(dy.cols(), self.width, "dy width mismatch");

        // dw[b,i] = ⟨f_i(x_b), dy_b⟩ for active modules.
        let mut dw = Tensor::zeros(&[batch, n]);
        for i in 0..n {
            if let Some(oi) = &cache.outputs[i] {
                for (j, &b) in cache.rows_per_module[i].iter().enumerate() {
                    let mut acc = 0.0f32;
                    for (&ov, &gv) in oi.row(j).iter().zip(dy.row(b)) {
                        acc += ov * gv;
                    }
                    *dw.at_mut(b, i) = acc;
                }
            }
        }

        // Module gradients and dx.
        let mut dx = Tensor::zeros(&[batch, self.width]);
        for (i, module) in self.modules.iter_mut().enumerate() {
            let rows = &cache.rows_per_module[i];
            if rows.is_empty() {
                continue;
            }
            // Per-row gradient into the module: w[b,i] · dy[b].
            let mut gi = self.ws.zeroed(&[rows.len(), self.width]);
            for (j, &b) in rows.iter().enumerate() {
                let w = cache.weights.at(b, i);
                for (gv, &dv) in gi.row_mut(j).iter_mut().zip(dy.row(b)) {
                    *gv = w * dv;
                }
            }
            let dxi = module.backward(&gi);
            self.ws.recycle(gi);
            for (j, &b) in rows.iter().enumerate() {
                for (xv, &dv) in dx.row_mut(b).iter_mut().zip(dxi.row(j)) {
                    *xv += dv;
                }
            }
            self.ws.recycle(dxi);
        }

        // Gate gradient through the active-set softmax:
        // dlogit[b,j] = w_bj (dw_bj − Σ_i w_bi dw_bi).
        let mut dlogits = Tensor::zeros(&[batch, n]);
        for b in 0..batch {
            let wrow = cache.weights.row(b);
            let dwrow = dw.row(b);
            let s: f32 = wrow.iter().zip(dwrow).map(|(&w, &d)| w * d).sum();
            for j in 0..n {
                let w = wrow[j];
                if w > 0.0 {
                    dlogits.row_mut(b)[j] = w * (dwrow[j] - s);
                }
            }
        }

        (dx, dlogits)
    }

    /// Load-balancing statistics from the last forward:
    /// `(full probs B×N over allowed — Train forwards only, per-module
    /// batch loads)`.
    pub fn lb_stats(&self) -> (Option<&Tensor>, &[f32]) {
        let cache = self.cache.as_ref().expect("lb_stats before forward");
        (cache.probs.as_ref(), &cache.loads)
    }

    /// Column means of the full softmax from the last forward (length N).
    pub fn mean_probs(&self) -> &[f32] {
        &self.cache.as_ref().expect("mean_probs before forward").mean_probs
    }

    /// The switch-style load-balancing loss of the last forward:
    /// `N_allowed · Σ_i load_i · mean_prob_i`, where `N_allowed` counts the
    /// modules the current sub-model mask permits (disallowed modules carry
    /// zero probability and zero load, so they contribute nothing to the
    /// sum — but they must not inflate the scale factor either).
    pub fn load_balance_loss(&self) -> f32 {
        let cache = self.cache.as_ref().expect("lb loss before forward");
        cache.n_allowed as f32 * cache.loads.iter().zip(&cache.mean_probs).map(|(&l, &p)| l * p).sum::<f32>()
    }

    /// Gradient of λ·load_balance_loss w.r.t. this layer's gate logits,
    /// computed from the cached full-softmax probabilities.
    pub fn load_balance_logit_grad(&self, lambda: f32) -> Tensor {
        let cache = self.cache.as_ref().expect("lb grad before forward");
        let probs = cache
            .probs
            .as_ref()
            .expect("load_balance_logit_grad requires a Train-mode forward (probs not kept in eval)");
        let batch = probs.rows();
        let n = probs.cols();
        // dL/dprob[b,i] = λ · N_allowed · load_i / B (loads constant).
        let coeff = lambda * cache.n_allowed as f32 / batch.max(1) as f32;
        let mut dlogits = Tensor::zeros(&[batch, n]);
        for b in 0..batch {
            let prow = probs.row(b);
            // Softmax jacobian: dlogit_j = p_j (g_j − Σ_i p_i g_i).
            let mut inner = 0.0f32;
            for (p, load) in prow.iter().zip(&cache.loads) {
                inner += p * (coeff * load);
            }
            for ((d, p), load) in dlogits.row_mut(b).iter_mut().zip(prow).zip(&cache.loads) {
                *d = p * (coeff * load - inner);
            }
        }
        dlogits
    }

    /// Visits `(param, grad)` pairs of every module, in module order.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        for m in &mut self.modules {
            m.visit_params(f);
        }
    }

    /// Visits parameters immutably.
    pub fn visit_params_ref(&self, f: &mut dyn FnMut(&Tensor)) {
        for m in &self.modules {
            m.visit_params_ref(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer(n: usize, residual: bool) -> MoeLayer {
        let mut rng = NebulaRng::seed(1);
        MoeLayer::new(6, 3, n, residual, &mut rng)
    }

    fn uniform_logits(batch: usize, n: usize) -> Tensor {
        Tensor::zeros(&[batch, n])
    }

    #[test]
    fn forward_shape_and_finiteness() {
        let mut l = layer(4, true);
        let x = Tensor::ones(&[3, 6]);
        let logits = uniform_logits(3, 4);
        let y = l.forward(&x, &logits, &[true; 4], 2, Mode::Eval);
        assert_eq!(y.shape(), &[3, 6]);
        assert!(y.all_finite());
    }

    #[test]
    fn single_module_full_weight() {
        // With k=1 and one module strongly preferred, output == module output.
        let mut l = layer(3, false);
        let x = Tensor::ones(&[2, 6]);
        let logits = Tensor::matrix(&[&[10.0, 0.0, 0.0], &[10.0, 0.0, 0.0]]);
        let y = l.forward(&x, &logits, &[true; 3], 1, Mode::Eval);
        let direct = l.module_mut(0).forward(&x, Mode::Eval);
        nebula_tensor::assert_tensor_close(&y, &direct, 1e-5);
    }

    #[test]
    fn disallowed_modules_are_never_routed() {
        let mut l = layer(4, false);
        let x = Tensor::ones(&[8, 6]);
        // Module 0 has huge logits but is disallowed.
        let mut logits = Tensor::zeros(&[8, 4]);
        for b in 0..8 {
            logits.row_mut(b)[0] = 100.0;
        }
        let allowed = [false, true, true, true];
        l.forward(&x, &logits, &allowed, 2, Mode::Eval);
        let (_, loads) = l.lb_stats();
        assert_eq!(loads[0], 0.0, "disallowed module got traffic");
    }

    #[test]
    fn weights_renormalise_over_active_set() {
        let mut l = layer(4, false);
        let x = Tensor::ones(&[1, 6]);
        let logits = Tensor::matrix(&[&[1.0, 0.5, -3.0, -3.0]]);
        l.forward(&x, &logits, &[true; 4], 2, Mode::Eval);
        let cache = l.cache.as_ref().unwrap();
        let wsum: f32 = cache.weights.row(0).iter().sum();
        nebula_tensor::assert_close(wsum, 1.0, 1e-5);
    }

    #[test]
    fn k_clamps_to_allowed_count() {
        let mut l = layer(4, false);
        let x = Tensor::ones(&[2, 6]);
        let logits = uniform_logits(2, 4);
        // Only one module allowed; k=3 must degrade gracefully.
        let allowed = [false, true, false, false];
        let y = l.forward(&x, &logits, &allowed, 3, Mode::Eval);
        assert!(y.all_finite());
        let (_, loads) = l.lb_stats();
        assert_eq!(loads[1], 1.0);
    }

    #[test]
    #[should_panic(expected = "no module")]
    fn rejects_empty_allowed_set() {
        let mut l = layer(2, false);
        let x = Tensor::ones(&[1, 6]);
        let logits = uniform_logits(1, 2);
        l.forward(&x, &logits, &[false, false], 1, Mode::Eval);
    }

    #[test]
    fn backward_shapes() {
        let mut l = layer(4, true);
        let x = Tensor::ones(&[3, 6]);
        let logits = uniform_logits(3, 4);
        l.forward(&x, &logits, &[true; 4], 2, Mode::Train);
        let (dx, dlogits) = l.backward(&Tensor::ones(&[3, 6]));
        assert_eq!(dx.shape(), &[3, 6]);
        assert_eq!(dlogits.shape(), &[3, 4]);
        assert!(dx.all_finite() && dlogits.all_finite());
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let mut rng = NebulaRng::seed(5);
        let mut l = MoeLayer::new(4, 3, 3, false, &mut rng);
        let x = Tensor::from_vec((0..2 * 4).map(|_| rng.normal_f32(0.0, 1.0)).collect(), &[2, 4]);
        // Fixed, well-separated logits so the top-k set is stable under
        // the probe perturbations.
        let logits = Tensor::matrix(&[&[2.0, 0.0, -2.0], &[0.0, 2.0, -2.0]]);
        let probe = Tensor::from_vec((0..2 * 4).map(|_| rng.normal_f32(0.0, 1.0)).collect(), &[2, 4]);

        let _y = l.forward(&x, &logits, &[true; 3], 2, Mode::Train);
        let (dx, _) = l.backward(&probe);

        let eps = 1e-2;
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let yp = l.forward(&xp, &logits, &[true; 3], 2, Mode::Train);
            let lp = yp.dot(&probe);
            let ym = l.forward(&xm, &logits, &[true; 3], 2, Mode::Train);
            let lm = ym.dot(&probe);
            let fd = (lp - lm) / (2.0 * eps);
            let an = dx.data()[i];
            assert!((fd - an).abs() / 1.0f32.max(fd.abs()) < 2e-2, "dx[{i}]: fd {fd} vs analytic {an}");
        }
    }

    #[test]
    fn gate_gradient_matches_finite_difference() {
        let mut rng = NebulaRng::seed(6);
        let mut l = MoeLayer::new(4, 3, 3, false, &mut rng);
        let x = Tensor::from_vec((0..2 * 4).map(|_| rng.normal_f32(0.0, 1.0)).collect(), &[2, 4]);
        let logits = Tensor::matrix(&[&[2.0, 0.5, -2.0], &[0.5, 2.0, -2.0]]);
        let probe = Tensor::from_vec((0..2 * 4).map(|_| rng.normal_f32(0.0, 1.0)).collect(), &[2, 4]);

        l.forward(&x, &logits, &[true; 3], 2, Mode::Train);
        let (_, dlogits) = l.backward(&probe);

        let eps = 1e-2;
        for b in 0..2 {
            // Only active modules (0 and 1 by construction) are differentiable.
            for j in 0..2 {
                let mut lp = logits.clone();
                *lp.at_mut(b, j) += eps;
                let mut lm = logits.clone();
                *lm.at_mut(b, j) -= eps;
                let yp = l.forward(&x, &lp, &[true; 3], 2, Mode::Train).dot(&probe);
                let ym = l.forward(&x, &lm, &[true; 3], 2, Mode::Train).dot(&probe);
                let fd = (yp - ym) / (2.0 * eps);
                let an = dlogits.at(b, j);
                assert!(
                    (fd - an).abs() / 1.0f32.max(fd.abs()) < 2e-2,
                    "dlogits[{b},{j}]: fd {fd} vs analytic {an}"
                );
            }
        }
    }

    #[test]
    fn load_balance_loss_is_one_at_perfect_balance() {
        // Uniform logits + k=N → every module carries every sample with
        // uniform probability: loss = N · Σ (1 · 1/N) = N · N·(1/N)... —
        // with loads all 1 and probs 1/N: N · N · (1·1/N) = N.
        // With k=1 and uniform routing the ideal is 1; verify monotonicity
        // instead of an absolute constant: balanced < concentrated.
        let mut l = layer(4, false);
        let x = Tensor::ones(&[8, 6]);
        // Balanced: each sample prefers a different module.
        let mut balanced = Tensor::zeros(&[8, 4]);
        for b in 0..8 {
            balanced.row_mut(b)[b % 4] = 5.0;
        }
        l.forward(&x, &balanced, &[true; 4], 1, Mode::Eval);
        let lb_balanced = l.load_balance_loss();

        // Concentrated: everyone routes to module 0.
        let mut conc = Tensor::zeros(&[8, 4]);
        for b in 0..8 {
            conc.row_mut(b)[0] = 5.0;
        }
        l.forward(&x, &conc, &[true; 4], 1, Mode::Eval);
        let lb_conc = l.load_balance_loss();

        assert!(
            lb_conc > lb_balanced * 1.5,
            "LB loss should punish concentration: balanced {lb_balanced} vs concentrated {lb_conc}"
        );
    }

    #[test]
    fn eval_forward_skips_probs_but_keeps_lb_loss() {
        let mut l = layer(4, false);
        let x = Tensor::ones(&[6, 6]);
        let mut logits = Tensor::zeros(&[6, 4]);
        for b in 0..6 {
            logits.row_mut(b)[b % 4] = 2.0;
        }
        l.forward(&x, &logits, &[true; 4], 2, Mode::Train);
        let train_loss = l.load_balance_loss();
        assert!(l.lb_stats().0.is_some(), "train forward must keep probs");
        l.forward(&x, &logits, &[true; 4], 2, Mode::Eval);
        assert!(l.lb_stats().0.is_none(), "eval forward materialised the full probs matrix");
        // The loss comes from the on-the-fly column means and must not
        // change between modes.
        assert_eq!(l.load_balance_loss(), train_loss);
    }

    #[test]
    fn lb_grad_pushes_probability_away_from_overloaded_modules() {
        let mut l = layer(4, false);
        let x = Tensor::ones(&[8, 6]);
        let mut conc = Tensor::zeros(&[8, 4]);
        for b in 0..8 {
            conc.row_mut(b)[0] = 3.0;
        }
        // Train mode: the logit gradient needs the full probs matrix,
        // which eval forwards no longer materialise.
        l.forward(&x, &conc, &[true; 4], 1, Mode::Train);
        let g = l.load_balance_logit_grad(1.0);
        // Gradient descent (−g) must reduce logit 0 (overloaded): g > 0 there.
        for b in 0..8 {
            assert!(g.at(b, 0) > 0.0, "overloaded module grad should be positive");
        }
    }
}
