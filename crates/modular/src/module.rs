//! A single substitutable module inside a module layer (§4.1).
//!
//! Two network structures, as in the paper:
//! * **shrunk module** — same layer pattern as the original (ResNet-style)
//!   block but with a reduced hidden width:
//!   `x ↦ x + W₂·relu(W₁·x + b₁) + b₂` with `W₁: h×d`, `W₂: d×h`, `h ≪ d`
//!   (a residual bottleneck block — keeping the block's skip connection is
//!   what lets deep stacks of narrow modules train; since the layer's
//!   combination weights renormalise to 1, the skips compose into a clean
//!   trunk residual `x + Σ wᵢ·gᵢ(x)`);
//! * **residual module** — a parameter-free bypass `x ↦ x`, letting inputs
//!   skip the layer ("not all inputs need layer-by-layer processing").

use nebula_nn::{Activation, Layer, Linear, Mode};
use nebula_tensor::{NebulaRng, Tensor};

/// One module of a module layer. Input and output width are both `d`
/// (the trunk width), so any subset of modules is combinable.
// Residual is intentionally zero-sized; boxing Shrunk would add a pointer chase
// to every forward call for no memory win (modules live in long-lived Vecs).
#[allow(clippy::large_enum_variant)]
pub enum Module {
    /// Bottleneck block with hidden width `h`.
    Shrunk { l1: Linear, act: Activation, l2: Linear },
    /// Parameter-free input bypass. Caches nothing.
    Residual,
}

impl Module {
    /// Builds a shrunk module `d → h → d`.
    pub fn shrunk(d: usize, h: usize, rng: &mut NebulaRng) -> Self {
        Module::Shrunk { l1: Linear::new(d, h, rng), act: Activation::relu(), l2: Linear::new(h, d, rng) }
    }

    /// Builds the bypass module.
    pub fn residual() -> Self {
        Module::Residual
    }

    /// True for the bypass module.
    pub fn is_residual(&self) -> bool {
        matches!(self, Module::Residual)
    }

    /// Forward pass over a (sub-)batch of rows.
    pub fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        match self {
            Module::Shrunk { l1, act, l2 } => {
                let h = l1.forward(x, mode);
                let a = act.forward(&h, mode);
                let mut y = l2.forward(&a, mode);
                y.add_assign(x); // block-level skip (ResNet pattern)
                y
            }
            Module::Residual => x.clone(),
        }
    }

    /// Backward pass; accumulates parameter gradients, returns ∂loss/∂x.
    pub fn backward(&mut self, grad: &Tensor) -> Tensor {
        match self {
            Module::Shrunk { l1, act, l2 } => {
                let da = l2.backward(grad);
                let dh = act.backward(&da);
                let mut dx = l1.backward(&dh);
                dx.add_assign(grad); // skip path
                dx
            }
            Module::Residual => grad.clone(),
        }
    }

    /// Visits `(param, grad)` pairs.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        if let Module::Shrunk { l1, l2, .. } = self {
            l1.visit_params(f);
            l2.visit_params(f);
        }
    }

    /// Visits parameters immutably.
    pub fn visit_params_ref(&self, f: &mut dyn FnMut(&Tensor)) {
        if let Module::Shrunk { l1, l2, .. } = self {
            l1.visit_params_ref(f);
            l2.visit_params_ref(f);
        }
    }

    /// Number of trainable scalars.
    pub fn param_count(&self) -> usize {
        let mut n = 0;
        self.visit_params_ref(&mut |p| n += p.len());
        n
    }

    /// Flat parameter vector (empty for the residual module).
    pub fn param_vector(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.param_count());
        self.visit_params_ref(&mut |p| out.extend_from_slice(p.data()));
        out
    }

    /// Loads a flat parameter vector produced by [`Module::param_vector`].
    pub fn load_param_vector(&mut self, flat: &[f32]) {
        let mut offset = 0;
        self.visit_params(&mut |p, _| {
            let n = p.len();
            p.data_mut().copy_from_slice(&flat[offset..offset + n]);
            offset += n;
        });
        assert_eq!(offset, flat.len(), "module parameter vector length mismatch");
    }

    /// Zeroes accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.visit_params(&mut |_, g| g.zero_());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrunk_module_shapes() {
        let mut rng = NebulaRng::seed(1);
        let mut m = Module::shrunk(8, 3, &mut rng);
        let x = Tensor::zeros(&[5, 8]);
        let y = m.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), &[5, 8]);
        assert_eq!(m.param_count(), 8 * 3 + 3 + 3 * 8 + 8);
    }

    #[test]
    fn residual_module_is_identity() {
        let mut m = Module::residual();
        let x = Tensor::matrix(&[&[1.0, -2.0]]);
        assert_eq!(m.forward(&x, Mode::Train).data(), x.data());
        assert_eq!(m.backward(&x).data(), x.data());
        assert_eq!(m.param_count(), 0);
        assert!(m.param_vector().is_empty());
    }

    #[test]
    fn param_vector_roundtrip() {
        let mut rng = NebulaRng::seed(2);
        let m1 = Module::shrunk(4, 2, &mut rng);
        let mut m2 = Module::shrunk(4, 2, &mut rng);
        let v = m1.param_vector();
        m2.load_param_vector(&v);
        assert_eq!(m2.param_vector(), v);
    }

    #[test]
    fn shrunk_gradients_flow() {
        let mut rng = NebulaRng::seed(3);
        let mut m = Module::shrunk(4, 2, &mut rng);
        let x = Tensor::ones(&[3, 4]);
        let y = m.forward(&x, Mode::Train);
        let dx = m.backward(&Tensor::ones(y.shape()));
        assert_eq!(dx.shape(), x.shape());
        let mut grad_norm = 0.0;
        m.visit_params(&mut |_, g| grad_norm += g.norm_sq());
        assert!(grad_norm > 0.0, "no gradient accumulated");
    }

    #[test]
    fn gradcheck_shrunk_module_via_wrapper() {
        // Wrap the module in the Layer trait to reuse the nn gradchecker.
        struct Wrap(Module);
        impl Layer for Wrap {
            fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
                self.0.forward(x, mode)
            }
            fn backward(&mut self, grad: &Tensor) -> Tensor {
                self.0.backward(grad)
            }
            fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
                self.0.visit_params(f)
            }
            fn visit_params_ref(&self, f: &mut dyn FnMut(&Tensor)) {
                self.0.visit_params_ref(f)
            }
        }
        let mut rng = NebulaRng::seed(4);
        let m = Module::shrunk(5, 3, &mut rng);
        nebula_nn::gradcheck::check_layer_gradients(Box::new(Wrap(m)), 5, 2, 11);
    }
}
