//! Routing telemetry: who routes where, and with whom.
//!
//! The offline stage's diagnostics (and the ablation studies) need to see
//! how the selector distributes work: per-module load histograms, the
//! utilisation entropy the load-balancing loss shapes, and the top-k
//! *co-activation* structure (which modules fire together — the emergent
//! sub-task clusters of §4.3).

use crate::model::ModularModel;
use nebula_tensor::reduce::top_k_indices;
use nebula_tensor::Tensor;

/// Routing statistics for one module layer over a dataset.
#[derive(Clone, Debug)]
pub struct LayerRoutingStats {
    /// Mean gate probability per module (the importance vector).
    pub mean_gate: Vec<f32>,
    /// Fraction of samples whose top-k set contains each module.
    pub load: Vec<f32>,
    /// `N × N` co-activation frequencies: `co[i][j]` = fraction of samples
    /// activating both `i` and `j` (diagonal = load).
    pub coactivation: Vec<Vec<f32>>,
}

impl LayerRoutingStats {
    /// Normalised entropy of the mean gate distribution
    /// (1.0 = perfectly uniform utilisation).
    pub fn gate_entropy(&self) -> f64 {
        normalized_entropy(&self.mean_gate)
    }

    /// Modules that receive effectively no traffic (load below `eps`) —
    /// dead experts the load-balancing loss is meant to prevent.
    pub fn dead_modules(&self, eps: f32) -> Vec<usize> {
        self.load.iter().enumerate().filter_map(|(i, &l)| (l < eps).then_some(i)).collect()
    }
}

/// Normalised Shannon entropy of a gate-probability vector
/// (1.0 = uniform over its modules, 0.0 = one-hot or degenerate).
/// Shared by the offline routing diagnostics and the online
/// gate-probability telemetry, which sees one such vector per layer in
/// every accepted edge update.
pub fn normalized_entropy(probs: &[f32]) -> f64 {
    let n = probs.len() as f64;
    if n <= 1.0 {
        return 0.0;
    }
    let h: f64 = probs
        .iter()
        .map(|&p| {
            let p = p as f64;
            if p > 0.0 {
                -p * p.ln()
            } else {
                0.0
            }
        })
        .sum();
    h / n.ln()
}

/// Collects per-layer routing statistics of `model` over inputs `x`,
/// using the deterministic (noise-free) selector and the model's current
/// top-k.
pub fn routing_stats(model: &mut ModularModel, x: &Tensor, top_k: usize) -> Vec<LayerRoutingStats> {
    let probs = model.gate_probs(x);
    let batch = x.rows();
    probs
        .into_iter()
        .map(|p| {
            let n = p.cols();
            let mean_gate = p.mean_rows().into_vec();
            let mut load = vec![0.0f32; n];
            let mut co = vec![vec![0.0f32; n]; n];
            for b in 0..batch {
                let active = top_k_indices(p.row(b), top_k);
                for (ai, &i) in active.iter().enumerate() {
                    load[i] += 1.0;
                    for &j in &active[ai..] {
                        co[i][j] += 1.0;
                        if i != j {
                            co[j][i] += 1.0;
                        }
                    }
                }
            }
            let denom = batch.max(1) as f32;
            load.iter_mut().for_each(|v| *v /= denom);
            for row in &mut co {
                row.iter_mut().for_each(|v| *v /= denom);
            }
            LayerRoutingStats { mean_gate, load, coactivation: co }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModularConfig;
    use nebula_tensor::NebulaRng;

    fn model() -> ModularModel {
        let mut cfg = ModularConfig::toy(12, 4);
        cfg.gate_noise_std = 0.0;
        ModularModel::new(cfg, 7)
    }

    fn input(batch: usize) -> Tensor {
        let mut rng = NebulaRng::seed(3);
        Tensor::from_vec((0..batch * 12).map(|_| rng.normal_f32(0.0, 1.0)).collect(), &[batch, 12])
    }

    #[test]
    fn stats_shapes_and_ranges() {
        let mut m = model();
        let stats = routing_stats(&mut m, &input(32), 2);
        assert_eq!(stats.len(), 2);
        for s in &stats {
            assert_eq!(s.mean_gate.len(), 4);
            assert_eq!(s.load.len(), 4);
            assert_eq!(s.coactivation.len(), 4);
            assert!(s.load.iter().all(|&l| (0.0..=1.0).contains(&l)));
            // Total load per sample = k.
            let total: f32 = s.load.iter().sum();
            nebula_tensor::assert_close(total, 2.0, 1e-4);
        }
    }

    #[test]
    fn diagonal_of_coactivation_is_load() {
        let mut m = model();
        let stats = routing_stats(&mut m, &input(16), 2);
        for s in &stats {
            for i in 0..4 {
                nebula_tensor::assert_close(s.coactivation[i][i], s.load[i], 1e-5);
            }
        }
    }

    #[test]
    fn coactivation_is_symmetric_and_bounded_by_load() {
        let mut m = model();
        let stats = routing_stats(&mut m, &input(24), 3);
        for s in &stats {
            for i in 0..4 {
                for j in 0..4 {
                    nebula_tensor::assert_close(s.coactivation[i][j], s.coactivation[j][i], 1e-5);
                    assert!(s.coactivation[i][j] <= s.load[i].min(s.load[j]) + 1e-5);
                }
            }
        }
    }

    #[test]
    fn entropy_is_one_for_uniform_and_lower_when_skewed() {
        let uniform = LayerRoutingStats {
            mean_gate: vec![0.25; 4],
            load: vec![0.5; 4],
            coactivation: vec![vec![0.0; 4]; 4],
        };
        assert!((uniform.gate_entropy() - 1.0).abs() < 1e-9);
        let skewed = LayerRoutingStats {
            mean_gate: vec![0.97, 0.01, 0.01, 0.01],
            load: vec![1.0, 0.0, 0.0, 0.0],
            coactivation: vec![vec![0.0; 4]; 4],
        };
        assert!(skewed.gate_entropy() < 0.3);
    }

    #[test]
    fn dead_module_detection() {
        let s = LayerRoutingStats {
            mean_gate: vec![0.5, 0.5, 0.0, 0.0],
            load: vec![1.0, 0.99, 0.001, 0.0],
            coactivation: vec![vec![0.0; 4]; 4],
        };
        assert_eq!(s.dead_modules(0.01), vec![2, 3]);
        assert!(s.dead_modules(0.0001).contains(&3));
    }
}
