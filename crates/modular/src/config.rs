//! Configuration of a modularized model.

use serde::{Deserialize, Serialize};

/// Optional convolutional stem for sequence tasks (speech/HAR): the raw
/// input is interpreted as `in_channels × in_len` (so
/// `in_channels · in_len` must equal [`ModularConfig::input_dim`]) and
/// passes through `Conv1d → ReLU → MaxPool1d → Linear → ReLU` before the
/// module layers. `None` uses the dense `Linear → ReLU` stem.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConvStemConfig {
    pub in_channels: usize,
    pub in_len: usize,
    pub out_channels: usize,
    /// Odd kernel; the stem uses same-padding with stride 1.
    pub kernel: usize,
    /// Non-overlapping pooling window over the sequence axis.
    pub pool: usize,
}

impl ConvStemConfig {
    /// Flattened width after conv + pooling (the stem Linear's input).
    pub fn pooled_features(&self) -> usize {
        self.out_channels * (self.in_len / self.pool)
    }
}

/// Hyper-parameters of a [`crate::ModularModel`].
///
/// The paper's configurations (§6.1 "Parameter settings"):
/// * MLP (HAR): 1 module layer × 16 modules;
/// * ResNet18 (CIFAR-10): 4 module layers × 16 modules;
/// * VGG16 / ResNet34: last 3 blocks modularized, 32 modules each.
///
/// All module layers share the same `width` so the parameter-free residual
/// module (input bypass) is well-typed at every layer.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ModularConfig {
    /// Input feature dimensionality.
    pub input_dim: usize,
    /// Number of output classes.
    pub classes: usize,
    /// Hidden width of the trunk (stem output and every module layer).
    pub width: usize,
    /// Number of module layers `L`.
    pub num_layers: usize,
    /// Modules per layer `N(l)` (uniform across layers).
    pub modules_per_layer: usize,
    /// Hidden (bottleneck) width inside each shrunk module.
    pub module_hidden: usize,
    /// Whether each layer's last module is a parameter-free residual
    /// (bypass) module instead of a shrunk block.
    pub residual_module: bool,
    /// Modules activated per sample per layer.
    pub top_k: usize,
    /// Width of the selector's embedding network.
    pub selector_embed: usize,
    /// Std-dev of the Gaussian logit noise used by noisy top-k in training
    /// (0 disables the noise).
    pub gate_noise_std: f32,
    /// Weight λ of the load-balancing loss added during end-to-end training.
    pub load_balance_weight: f32,
    /// Optional convolutional stem for sequence inputs (`None` = dense).
    pub conv_stem: Option<ConvStemConfig>,
}

impl ModularConfig {
    /// A small configuration used throughout the test suites.
    pub fn toy(input_dim: usize, classes: usize) -> Self {
        Self {
            input_dim,
            classes,
            width: 32,
            num_layers: 2,
            modules_per_layer: 4,
            module_hidden: 16,
            residual_module: true,
            top_k: 2,
            selector_embed: 16,
            gate_noise_std: 0.5,
            load_balance_weight: 0.01,
            conv_stem: None,
        }
    }

    /// Validates internal consistency; panics with a message on error.
    pub fn validate(&self) {
        assert!(self.input_dim > 0, "input_dim must be positive");
        assert!(self.classes > 1, "need at least two classes");
        assert!(self.width > 0, "width must be positive");
        assert!(self.num_layers > 0, "need at least one module layer");
        assert!(self.modules_per_layer >= 1, "need at least one module per layer");
        assert!(
            self.top_k >= 1 && self.top_k <= self.modules_per_layer,
            "top_k {} must be in [1, {}]",
            self.top_k,
            self.modules_per_layer
        );
        assert!(self.module_hidden > 0, "module_hidden must be positive");
        assert!(self.selector_embed > 0, "selector_embed must be positive");
        assert!(self.gate_noise_std >= 0.0, "gate_noise_std must be non-negative");
        assert!(self.load_balance_weight >= 0.0, "load_balance_weight must be non-negative");
        if let Some(cs) = &self.conv_stem {
            assert_eq!(
                cs.in_channels * cs.in_len,
                self.input_dim,
                "conv stem channels·length must equal input_dim"
            );
            assert!(cs.kernel % 2 == 1, "conv stem kernel must be odd (same padding)");
            assert!(cs.pool >= 1 && cs.in_len % cs.pool == 0, "pool must divide in_len");
            assert!(cs.out_channels >= 1);
        }
    }

    /// Total number of modules across all layers.
    pub fn total_modules(&self) -> usize {
        self.num_layers * self.modules_per_layer
    }

    /// log2 of the size of the sub-model design space (each module either
    /// in or out): the paper's "2^16 per layer" count.
    pub fn design_space_bits(&self) -> usize {
        self.total_modules()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toy_config_is_valid() {
        ModularConfig::toy(16, 4).validate();
    }

    #[test]
    #[should_panic(expected = "top_k")]
    fn rejects_top_k_larger_than_modules() {
        let mut cfg = ModularConfig::toy(16, 4);
        cfg.top_k = 100;
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "two classes")]
    fn rejects_single_class() {
        let mut cfg = ModularConfig::toy(16, 4);
        cfg.classes = 1;
        cfg.validate();
    }

    #[test]
    fn conv_stem_validation() {
        let mut cfg = ModularConfig::toy(16, 4);
        cfg.conv_stem =
            Some(ConvStemConfig { in_channels: 2, in_len: 8, out_channels: 4, kernel: 3, pool: 2 });
        cfg.validate();
        assert_eq!(cfg.conv_stem.unwrap().pooled_features(), 16);

        cfg.conv_stem =
            Some(ConvStemConfig { in_channels: 3, in_len: 8, out_channels: 4, kernel: 3, pool: 2 });
        let result = std::panic::catch_unwind(|| cfg.validate());
        assert!(result.is_err(), "mismatched channels·length must be rejected");
    }

    #[test]
    fn design_space_counts_modules() {
        let cfg = ModularConfig::toy(16, 4);
        assert_eq!(cfg.total_modules(), 8);
        assert_eq!(cfg.design_space_bits(), 8);
    }
}
