//! Property-based tests for the modularized model: any valid sub-model
//! must be a *working model*, and routing/importance invariants must hold
//! for arbitrary masks.

use nebula_modular::{ModularConfig, ModularModel, SubModelSpec};
use nebula_nn::{Layer, Mode};
use nebula_tensor::{NebulaRng, Tensor};
use proptest::prelude::*;

fn cfg() -> ModularConfig {
    let mut c = ModularConfig::toy(10, 4);
    c.gate_noise_std = 0.0;
    c
}

fn input(batch: usize, dim: usize, seed: u64) -> Tensor {
    let mut rng = NebulaRng::seed(seed);
    Tensor::from_vec((0..batch * dim).map(|_| rng.normal_f32(0.0, 1.0)).collect(), &[batch, dim])
}

/// Draws a random valid sub-model spec.
fn arb_spec(layers: usize, modules: usize) -> impl Strategy<Value = SubModelSpec> {
    proptest::collection::vec(proptest::collection::btree_set(0..modules, 1..=modules), layers..=layers)
        .prop_map(|layers| SubModelSpec::new(layers.into_iter().map(|s| s.into_iter().collect()).collect()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_submodel_produces_finite_outputs(spec in arb_spec(2, 4), seed in 0u64..200) {
        let mut m = ModularModel::new(cfg(), seed);
        m.set_submodel(Some(&spec));
        let x = input(3, 10, seed ^ 1);
        let y = m.forward(&x, Mode::Eval);
        prop_assert_eq!(y.shape(), &[3, 4]);
        prop_assert!(y.all_finite());
    }

    #[test]
    fn every_submodel_is_trainable(spec in arb_spec(2, 4), seed in 0u64..100) {
        let mut m = ModularModel::new(cfg(), seed);
        m.set_submodel(Some(&spec));
        let x = input(2, 10, seed ^ 2);
        m.zero_grad();
        let y = m.forward(&x, Mode::Train);
        let dx = m.backward(&Tensor::ones(y.shape()));
        prop_assert!(dx.all_finite());
        prop_assert!(m.grad_vector().iter().all(|g| g.is_finite()));
    }

    #[test]
    fn masked_out_modules_get_no_gradient(seed in 0u64..100) {
        let mut m = ModularModel::new(cfg(), seed);
        // Only module 0 of each layer is active; modules 1 and 2 are
        // shrunk modules that must receive zero gradient (module 3 is the
        // parameter-free residual).
        let spec = SubModelSpec::new(vec![vec![0], vec![0]]);
        m.set_submodel(Some(&spec));
        let x = input(4, 10, seed ^ 3);
        m.zero_grad();
        let y = m.forward(&x, Mode::Train);
        m.backward(&Tensor::ones(y.shape()));
        for layer in 0..2 {
            for module in [1usize, 2] {
                // Re-load trick: gradient isolation shows as unchanged
                // params under an SGD step; check grads directly instead
                // through the per-module accessor after aggregating.
                let before = m.module_param_vector(layer, module);
                prop_assert!(!before.is_empty());
            }
        }
        // Direct check via grad vector structure: total gradient norm of
        // inactive modules is zero. Visit order: stem, layer0 modules
        // 0..3, layer1 modules 0..3, head, selector.
        let mut norms = Vec::new();
        m.visit_params(&mut |_, g| norms.push(g.norm_sq()));
        // stem = 2 tensors; each shrunk module = 4 tensors.
        // layer0: module0 -> idx 2..6, module1 -> 6..10, module2 -> 10..14.
        let module1_l0: f32 = norms[6..10].iter().sum();
        let module2_l0: f32 = norms[10..14].iter().sum();
        prop_assert!(module1_l0 == 0.0 && module2_l0 == 0.0, "inactive modules got gradient");
    }

    #[test]
    fn importance_rows_are_distributions(seed in 0u64..200, batch in 1usize..8) {
        let mut m = ModularModel::new(cfg(), seed);
        let x = input(batch, 10, seed ^ 4);
        for layer_imp in m.importance(&x) {
            let sum: f32 = layer_imp.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-3, "sum {}", sum);
            prop_assert!(layer_imp.iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn eval_forward_is_deterministic(spec in arb_spec(2, 4), seed in 0u64..100) {
        let mut m = ModularModel::new(cfg(), seed);
        m.set_submodel(Some(&spec));
        let x = input(2, 10, seed ^ 5);
        let a = m.forward(&x, Mode::Eval);
        let b = m.forward(&x, Mode::Eval);
        prop_assert_eq!(a.data(), b.data());
    }

    #[test]
    fn param_vector_roundtrip_preserves_outputs(seed in 0u64..100) {
        let m = ModularModel::new(cfg(), seed);
        let theta = m.param_vector();
        let mut m2 = ModularModel::new(cfg(), seed ^ 0xDEAD);
        m2.load_param_vector(&theta);
        let x = input(2, 10, seed ^ 6);
        let mut m = m;
        let a = m.forward(&x, Mode::Eval);
        let b = m2.forward(&x, Mode::Eval);
        for (x1, x2) in a.data().iter().zip(b.data()) {
            prop_assert!((x1 - x2).abs() < 1e-5);
        }
    }

    #[test]
    fn top_k_bounds_active_compute(k in 1usize..5, seed in 0u64..100) {
        let mut c = cfg();
        c.top_k = k.min(c.modules_per_layer);
        let mut m = ModularModel::new(c.clone(), seed);
        let x = input(6, 10, seed ^ 7);
        m.forward(&x, Mode::Eval);
        // Per sample at most k modules loaded per layer ⇒ total load ≤ k.
        for l in 0..m.num_layers() {
            let (_, loads) = m.layer(l).lb_stats();
            let total: f32 = loads.iter().sum();
            prop_assert!(total <= c.top_k as f32 + 1e-4, "load {} > k {}", total, c.top_k);
        }
    }
}
