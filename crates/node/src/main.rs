//! `nebula-node` — the serving plane as real processes.
//!
//! Two roles, one binary:
//!
//! * `nebula-node coordinator` binds the listeners, waits for a worker
//!   quorum, then drives a toy Nebula run (the same synthetic world and
//!   modular config the serving-plane tests pin) through
//!   [`nebula_serve::SocketTransport`], printing one JSON line per
//!   round. An optional ops endpoint answers `/healthz`, `/metrics`
//!   and `/round` throughout — and through `--linger-ms` after the last
//!   round, so probes can scrape a finished run.
//! * `nebula-node worker` dials the coordinator and executes dispatched
//!   cohort jobs until told to shut down.
//!
//! Flags are `--key value` pairs, parsed by hand — the workspace takes
//! no CLI dependency. Run either role with `--help` for the list.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use nebula_data::{PartitionSpec, Partitioner, SynthSpec, Synthesizer};
use nebula_modular::ModularConfig;
use nebula_nn::Layer;
use nebula_serve::worker::{run_worker, WorkerConfig};
use nebula_serve::{Coordinator, Endpoint, OpsServer, ServeConfig, WorkerRunConfig};
use nebula_sim::strategy::StrategyConfig;
use nebula_sim::{
    AdaptStrategy, ChaosControl, DurabilityConfig, ExperimentConfig, KillSpot, NebulaStrategy,
    ResourceSampler, RunError, Runner, SimWorld,
};
use nebula_telemetry::{JsonlSink, Telemetry};
use nebula_tensor::NebulaRng;

const USAGE: &str = "\
nebula-node — Nebula serving-plane processes

USAGE:
  nebula-node coordinator [--tcp HOST:PORT] [--uds PATH] [--workers N]
                          [--rounds N] [--devices N] [--seed N]
                          [--deadline-ms MS] [--liveness-ms MS]
                          [--hedge-ms MS] [--auth HEX32]
                          [--ops HOST:PORT] [--telemetry PATH]
                          [--linger-ms MS]
                          [--durable DIR] [--resume 1] [--kill-at N]
                          [--eval-devices N]
  nebula-node worker      --connect ENDPOINT [--name NAME] [--threads N]
                          [--rejoin 0|1] [--auth HEX32]
                          [--telemetry PATH]

A coordinator needs at least one of --tcp/--uds. ENDPOINT is a TCP
host:port or a UDS path (anything containing '/'). --auth takes the
16-byte master key as 32 hex chars; both sides must hold the same key
(it also MACs the inner per-device payload frames).

--liveness-ms evicts workers silent past the timeout (0 = off);
--hedge-ms speculatively re-dispatches jobs still unresolved after the
soft timeout (0 = off).

--threads N bounds the worker's executor pool AND the threaded GEMM
macro-kernel (the kernel-thread budget); --threads 1 pins the kernels
to their sequential path. Results are bit-identical at any setting.

--durable DIR drives the run through the crash-safe journal under DIR
instead of the plain round loop; add --resume 1 to continue a journal
left by an interrupted run, and --kill-at N to simulate a coordinator
crash after round N commits (the process prints {\"killed\":...} and
exits with code 3, leaving workers to rejoin the next incarnation).
On success the durable run prints an FNV digest of the final cloud
parameters, so two incarnations of the same run can be compared
bit-for-bit.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("coordinator") => coordinator_cmd(&args[1..]),
        Some("worker") => worker_cmd(&args[1..]),
        Some("--help") | Some("-h") | None => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown role {other:?}; try --help")),
    };
    match result {
        Ok(code) => code,
        Err(why) => {
            eprintln!("nebula-node: {why}");
            ExitCode::from(1)
        }
    }
}

/// `--key value` pairs, every key consuming exactly one value.
struct Flags(Vec<(String, String)>);

impl Flags {
    fn parse(args: &[String]) -> Result<Flags, String> {
        if args.iter().any(|a| a == "--help" || a == "-h") {
            print!("{USAGE}");
            std::process::exit(0);
        }
        let mut out = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let key =
                args[i].strip_prefix("--").ok_or_else(|| format!("expected a --flag, got {:?}", args[i]))?;
            let value = args.get(i + 1).ok_or_else(|| format!("--{key} needs a value"))?.clone();
            out.push((key.to_string(), value));
            i += 2;
        }
        Ok(Flags(out))
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.0.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key}: bad number {v:?}")),
        }
    }
}

/// 32 hex chars → the 16-byte master key.
fn parse_key(hex: &str) -> Result<[u8; 16], String> {
    let nibble = |c: u8| -> Result<u8, String> {
        match c {
            b'0'..=b'9' => Ok(c - b'0'),
            b'a'..=b'f' => Ok(c - b'a' + 10),
            b'A'..=b'F' => Ok(c - b'A' + 10),
            _ => Err(format!("--auth: {:?} is not a hex digit", c as char)),
        }
    };
    let bytes = hex.as_bytes();
    if bytes.len() != 32 {
        return Err(format!("--auth wants 32 hex chars (16 bytes), got {}", bytes.len()));
    }
    let mut key = [0u8; 16];
    for (i, pair) in bytes.chunks_exact(2).enumerate() {
        key[i] = (nibble(pair[0])? << 4) | nibble(pair[1])?;
    }
    Ok(key)
}

fn telemetry_from(flags: &Flags) -> Result<Telemetry, String> {
    match flags.get("telemetry") {
        None => Ok(Telemetry::off()),
        Some(path) => {
            let sink = JsonlSink::create(path).map_err(|e| format!("--telemetry {path}: {e}"))?;
            Ok(Telemetry::new(Arc::new(sink)))
        }
    }
}

/// The same toy run the serving-plane tests pin: small synthetic world,
/// 16-wide modular blocks, 4 devices per round.
fn toy_strategy_cfg() -> StrategyConfig {
    let mut modular = ModularConfig::toy(16, 4);
    modular.gate_noise_std = 0.3;
    let mut cfg = StrategyConfig::new(modular);
    cfg.devices_per_round = 4;
    cfg.rounds_per_step = 1;
    cfg.pretrain_epochs = 1;
    cfg.proxy_samples = 100;
    cfg.local_epochs = 1;
    cfg
}

fn coordinator_cmd(args: &[String]) -> Result<ExitCode, String> {
    let flags = Flags::parse(args)?;
    let quorum: usize = flags.num("workers", 2)?;
    let rounds: usize = flags.num("rounds", 3)?;
    let devices: usize = flags.num("devices", 8)?;
    let seed: u64 = flags.num("seed", 5)?;
    let deadline_ms: u64 = flags.num("deadline-ms", 60_000)?;
    let liveness_ms: u64 = flags.num("liveness-ms", 0)?;
    let hedge_ms: u64 = flags.num("hedge-ms", 0)?;
    let linger_ms: u64 = flags.num("linger-ms", 0)?;
    let auth = flags.get("auth").map(parse_key).transpose()?;
    let telemetry = telemetry_from(&flags)?;

    let mut strategy_cfg = toy_strategy_cfg();
    if let Some(key) = auth {
        strategy_cfg.wire = strategy_cfg.wire.with_auth(key);
    }
    let worker_config = WorkerRunConfig {
        modular: Some(strategy_cfg.modular.clone()),
        delta_threshold: strategy_cfg.wire.delta_threshold,
        payload_auth: auth.is_some(),
    };
    let mut cfg = ServeConfig::new(worker_config);
    cfg.tcp = flags.get("tcp").map(String::from);
    cfg.uds = flags.get("uds").map(std::path::PathBuf::from);
    if cfg.tcp.is_none() && cfg.uds.is_none() {
        return Err("coordinator needs --tcp and/or --uds".into());
    }
    cfg.auth_key = auth;
    cfg.deadline_ms = deadline_ms;
    cfg.liveness_timeout_ms = liveness_ms;
    cfg.hedge_after_ms = hedge_ms;
    cfg.telemetry = telemetry.clone();

    let coordinator = Coordinator::bind(cfg).map_err(|e| e.to_string())?;
    if let Some(addr) = coordinator.tcp_addr() {
        eprintln!("coordinator: listening on tcp://{addr}");
    }
    if let Some(path) = flags.get("uds") {
        eprintln!("coordinator: listening on uds://{path}");
    }
    let ops = flags
        .get("ops")
        .map(|addr| OpsServer::spawn(addr, coordinator.clone()))
        .transpose()
        .map_err(|e| e.to_string())?;
    if let Some(ops) = &ops {
        eprintln!("coordinator: ops endpoint on http://{}", ops.addr());
    }

    eprintln!("coordinator: waiting for {quorum} worker(s)");
    if !coordinator.wait_for_workers(quorum, Duration::from_secs(120)) {
        return Err(format!(
            "only {} of {quorum} workers registered within 120s",
            coordinator.worker_count()
        ));
    }
    eprintln!("coordinator: quorum up ({:?}), running {rounds} round(s)", coordinator.worker_names());

    let synth = Synthesizer::new(SynthSpec::toy(), 1);
    let spec = PartitionSpec::new(devices, Partitioner::LabelSkew { m: 2 });
    let mut world = SimWorld::new(synth, spec, 9, None, &ResourceSampler::default(), seed);
    let mut strategy = NebulaStrategy::new(strategy_cfg, 1);
    strategy.set_telemetry(telemetry.clone());

    if let Some(dir) = flags.get("durable") {
        // Durable mode: the crash-safe journal drives the rounds, so a
        // coordinator killed mid-run (--kill-at, or a real crash) can be
        // restarted with --resume 1 and land on the uninterrupted bits.
        let eval_devices: usize = flags.num("eval-devices", 3)?;
        let kill_at: Option<u64> = match flags.get("kill-at") {
            None => None,
            Some(v) => Some(v.parse().map_err(|_| format!("--kill-at: bad number {v:?}"))?),
        };
        let resume: u8 = flags.num("resume", 0)?;
        let exp = ExperimentConfig { eval_devices, seed };
        let mut runner = Runner::new(&mut world, &mut strategy)
            .config(exp)
            // An unreachable target turns the run into "exactly N
            // rounds", which is what a digest comparison wants.
            .target(1.01, rounds, 1)
            .durable(DurabilityConfig::new(dir))
            .telemetry(telemetry.clone())
            .transport(Box::new(coordinator.transport()));
        if let Some(round) = kill_at {
            runner = runner.chaos(ChaosControl { kill: Some((round, KillSpot::AfterAppend)) });
        }
        if resume == 1 {
            runner = runner.resume();
        }
        match runner.run() {
            Ok(out) => {
                let digest = fnv_digest(&strategy.cloud().model().param_vector());
                println!(
                    "{{\"done\":true,\"durable\":true,\"rounds\":{},\"final_accuracy\":{},\"param_digest\":\"{digest:016x}\"}}",
                    out.rounds, out.final_accuracy,
                );
            }
            Err(RunError::Killed { round }) => {
                // The armed crash: leave exactly what a killed process
                // leaves (no shutdown notices, journal intact) so the
                // workers' rejoin loops and a --resume 1 incarnation
                // can pick the run back up.
                println!("{{\"killed\":true,\"round\":{round}}}");
                if let Some(ops) = ops {
                    ops.stop();
                }
                coordinator.abort();
                return Ok(ExitCode::from(3));
            }
            Err(e) => return Err(format!("durable run failed: {e:?}")),
        }
    } else {
        strategy.set_transport(Box::new(coordinator.transport()));
        let mut rng = NebulaRng::seed(3);
        for round in 0..rounds {
            let out = strategy.single_round(&mut world, &mut rng);
            println!(
                "{{\"round\":{round},\"participated\":{},\"link_dropped\":{},\"up_bytes\":{},\"down_bytes\":{}}}",
                out.stats.faults.participated,
                out.stats.faults.link_dropped,
                out.stats.comm.up_bytes,
                out.stats.comm.down_bytes,
            );
        }
        let params = strategy.cloud().model().param_vector();
        let l2 = params.iter().map(|p| (*p as f64) * (*p as f64)).sum::<f64>().sqrt();
        println!(
            "{{\"done\":true,\"rounds\":{},\"params\":{},\"param_l2\":{l2}}}",
            coordinator.rounds_completed(),
            params.len(),
        );
    }

    if linger_ms > 0 {
        eprintln!("coordinator: lingering {linger_ms}ms for probes");
        std::thread::sleep(Duration::from_millis(linger_ms));
    }
    if let Some(ops) = ops {
        ops.stop();
    }
    coordinator.shutdown();
    Ok(ExitCode::SUCCESS)
}

/// FNV-1a fold of parameter bit patterns — the digest `serve_sweep`
/// and `serve_chaos` use, so CLI runs compare against bench scorecards.
fn fnv_digest(params: &[f32]) -> u64 {
    params
        .iter()
        .fold(0xcbf2_9ce4_8422_2325u64, |h, p| (h ^ p.to_bits() as u64).wrapping_mul(0x1000_0000_01b3))
}

fn worker_cmd(args: &[String]) -> Result<ExitCode, String> {
    let flags = Flags::parse(args)?;
    let endpoint = Endpoint::parse(flags.get("connect").ok_or("worker needs --connect")?);
    let mut cfg = WorkerConfig::new(endpoint);
    if let Some(name) = flags.get("name") {
        cfg.name = name.to_string();
    }
    cfg.threads = flags.num("threads", 2)?;
    // --threads bounds the whole worker, not just the executor pool: the
    // same budget caps the threaded GEMM macro-kernel (1 pins the
    // kernels to their sequential path; the split keeps results
    // bit-identical either way).
    nebula_tensor::par::set_max_kernel_threads(cfg.threads);
    cfg.rejoin = flags.num("rejoin", 1u8)? == 1;
    cfg.auth_key = flags.get("auth").map(parse_key).transpose()?;
    cfg.telemetry = telemetry_from(&flags)?;
    eprintln!("worker {}: dialing {}", cfg.name, cfg.endpoint);
    let report = run_worker(cfg).map_err(|e| e.to_string())?;
    println!(
        "{{\"worker_id\":{},\"jobs_run\":{},\"sessions\":{}}}",
        report.worker_id, report.jobs_run, report.sessions
    );
    Ok(ExitCode::SUCCESS)
}
