//! End-to-end wire-transport tests at the simulation level: the codecs
//! configured through `StrategyConfig::wire` must change the *measured*
//! bytes of real adaptation traffic, not just the codec unit tests.

use nebula_core::WireConfig;
use nebula_data::{PartitionSpec, Partitioner, SynthSpec, Synthesizer};
use nebula_modular::ModularConfig;
use nebula_sim::strategy::StrategyConfig;
use nebula_sim::{AdaptStrategy, NebulaStrategy, NebulaVariant, ResourceSampler, SimWorld};
use nebula_tensor::NebulaRng;

fn toy_world(devices: usize, seed: u64) -> SimWorld {
    let synth = Synthesizer::new(SynthSpec::toy(), 1);
    let spec = PartitionSpec::new(devices, Partitioner::LabelSkew { m: 2 });
    SimWorld::new(synth, spec, 9, None, &ResourceSampler::default(), seed)
}

fn toy_cfg(wire: WireConfig) -> StrategyConfig {
    let mut modular = ModularConfig::toy(16, 4);
    modular.gate_noise_std = 0.3;
    let mut cfg = StrategyConfig::new(modular);
    cfg.devices_per_round = 4;
    cfg.rounds_per_step = 2;
    cfg.pretrain_epochs = 1;
    cfg.proxy_samples = 100;
    cfg.local_epochs = 1;
    cfg.wire = wire;
    cfg
}

fn round_bytes(wire: WireConfig) -> u64 {
    let mut world = toy_world(8, 5);
    let mut s = NebulaStrategy::new(toy_cfg(wire), 1);
    let mut rng = NebulaRng::seed(3);
    let mut total = 0u64;
    for _ in 0..2 {
        let out = s.single_round(&mut world, &mut rng);
        assert_eq!(out.stats.faults.lost(), 0);
        total += out.stats.comm.down_bytes + out.stats.comm.up_bytes;
    }
    total
}

/// Int8 quantization must at least halve the measured on-wire traffic of
/// identical Nebula rounds (the acceptance bar; the real ratio is ~4x
/// minus frame/header overhead).
#[test]
fn int8_rounds_halve_measured_bytes() {
    let raw = round_bytes(WireConfig::raw());
    let q8 = round_bytes(WireConfig::int8());
    assert!(raw > 0 && q8 > 0);
    assert!(q8 * 2 < raw, "int8 rounds not <=1/2 of raw: {q8} vs {raw}");
}

/// Delta encoding pays off when the cloud model barely moves between
/// refreshes: with no rounds and no local training the second refresh of
/// the same devices ships near-empty deltas.
#[test]
fn delta_refresh_shrinks_when_model_is_static() {
    let mut world = toy_world(8, 5);
    let mut cfg = toy_cfg(WireConfig::delta(0.0));
    cfg.rounds_per_step = 0;
    let mut s = NebulaStrategy::with_variant(cfg, 1, NebulaVariant::NoLocalTraining);
    let mut rng = NebulaRng::seed(3);
    s.track(&[0, 1]);
    let cold = s.adaptation_step(&mut world, &mut rng).comm.down_bytes;
    let warm = s.adaptation_step(&mut world, &mut rng).comm.down_bytes;
    assert!(cold > 0);
    assert!(warm * 4 < cold, "warm delta refresh not <1/4 of cold: {warm} vs {cold}");
}
