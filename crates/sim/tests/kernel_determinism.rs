//! Regression tests for the kernel-backend matrix: fault-free simulation
//! results must be reproducible bit-for-bit run-to-run under *every*
//! backend (the engines are deterministic for any thread count — threads
//! only split output row blocks, never the k-reduction), and switching
//! engines must only move results within ordinary f32 reassociation /
//! FMA-contraction noise (documented in DESIGN.md §"Kernel backends").
//!
//! Everything lives in ONE test function: the backend selection is a
//! process-global switch ([`KernelBackend::scoped`]) and test binaries
//! run their tests concurrently.

use nebula_data::{PartitionSpec, Partitioner, SynthSpec, Synthesizer};
use nebula_modular::ModularConfig;
use nebula_nn::Layer;
use nebula_sim::strategy::StrategyConfig;
use nebula_sim::{AdaptStrategy, FaultPlan, NebulaStrategy, ResourceSampler, SimWorld};
use nebula_tensor::{resolved_backend, KernelBackend, NebulaRng};

fn toy_world(devices: usize, seed: u64) -> SimWorld {
    let synth = Synthesizer::new(SynthSpec::toy(), 1);
    let spec = PartitionSpec::new(devices, Partitioner::LabelSkew { m: 2 });
    SimWorld::new(synth, spec, 9, None, &ResourceSampler::default(), seed)
}

fn toy_cfg(devices_per_round: usize) -> StrategyConfig {
    let mut modular = ModularConfig::toy(16, 4);
    modular.gate_noise_std = 0.3;
    let mut cfg = StrategyConfig::new(modular);
    cfg.devices_per_round = devices_per_round;
    cfg.rounds_per_step = 2;
    cfg.pretrain_epochs = 2;
    cfg.proxy_samples = 200;
    cfg
}

/// Runs three fault-free Nebula rounds and returns the cloud parameters
/// plus the mean accuracy over a few devices.
fn run_rounds() -> (Vec<f32>, f32) {
    let mut world = toy_world(8, 5);
    world.set_fault_plan(FaultPlan::none());
    let mut s = NebulaStrategy::new(toy_cfg(4), 1);
    let mut rng = NebulaRng::seed(3);
    for _ in 0..3 {
        let out = s.single_round(&mut world, &mut rng);
        assert_eq!(out.stats.faults.lost(), 0);
    }
    let acc = (0..4).map(|d| s.device_accuracy(&mut world, d)).sum::<f32>() / 4.0;
    (s.cloud().model().param_vector(), acc)
}

#[test]
fn every_backend_is_reproducible_and_cross_backend_tolerant() {
    // 1. Run-to-run bit-identity, once per selectable backend. An
    //    unsupported SIMD selection resolves downward to a supported
    //    engine (never upward), so the matrix is safe on any CPU; Auto
    //    covers whatever the host resolves to.
    let mut per_backend: Vec<(KernelBackend, Vec<f32>, f32)> = Vec::new();
    for backend in [
        KernelBackend::Blocked,
        KernelBackend::Avx2,
        KernelBackend::Avx512,
        KernelBackend::Auto,
        KernelBackend::Reference,
    ] {
        let _g = backend.scoped();
        let resolved = resolved_backend();
        let (params_a, acc_a) = run_rounds();
        let (params_b, acc_b) = run_rounds();
        assert_eq!(params_a.len(), params_b.len());
        for (i, (a, b)) in params_a.iter().zip(&params_b).enumerate() {
            assert!(
                a.to_bits() == b.to_bits(),
                "{backend} (resolved {resolved}): param {i} not reproducible: {a} vs {b}"
            );
        }
        assert_eq!(acc_a.to_bits(), acc_b.to_bits(), "{backend}: accuracy not reproducible");
        per_backend.push((backend, params_a, acc_a));
    }

    // 2. Cross-backend: same training outcome within the reassociation /
    //    FMA-contraction tolerance. Individual weights drift as f32
    //    rounding compounds over optimisation steps, so the contract is
    //    on aggregate behaviour: accuracy and parameter norm.
    let norm = |p: &[f32]| p.iter().map(|v| (*v as f64).powi(2)).sum::<f64>().sqrt();
    let (_, params_blocked, acc_blocked) = &per_backend[0];
    let nb = norm(params_blocked);
    for (backend, params, acc) in &per_backend[1..] {
        assert!(
            (acc - acc_blocked).abs() <= 0.1,
            "{backend} vs blocked moved accuracy: {acc} vs {acc_blocked}"
        );
        let n = norm(params);
        assert!(
            (n - nb).abs() / nb.max(1e-9) < 0.05,
            "{backend} vs blocked: parameter norms diverged beyond kernel noise: {n} vs {nb}"
        );
    }
}
