//! Regression tests for the blocked-GEMM rollout: fault-free simulation
//! results must be reproducible bit-for-bit run-to-run (the kernels are
//! deterministic for any thread count — threads only split output row
//! blocks, never the k-reduction), and switching to the retained
//! pre-blocking reference kernels must only move results within ordinary
//! f32 reassociation noise (documented in DESIGN.md §"Kernel & threading
//! architecture").
//!
//! Both halves live in ONE test function: `set_reference_kernels` is a
//! process-global switch, and test binaries run their tests concurrently.

use nebula_data::{PartitionSpec, Partitioner, SynthSpec, Synthesizer};
use nebula_modular::ModularConfig;
use nebula_nn::Layer;
use nebula_sim::strategy::StrategyConfig;
use nebula_sim::{AdaptStrategy, FaultPlan, NebulaStrategy, ResourceSampler, SimWorld};
use nebula_tensor::linalg::set_reference_kernels;
use nebula_tensor::NebulaRng;

fn toy_world(devices: usize, seed: u64) -> SimWorld {
    let synth = Synthesizer::new(SynthSpec::toy(), 1);
    let spec = PartitionSpec::new(devices, Partitioner::LabelSkew { m: 2 });
    SimWorld::new(synth, spec, 9, None, &ResourceSampler::default(), seed)
}

fn toy_cfg(devices_per_round: usize) -> StrategyConfig {
    let mut modular = ModularConfig::toy(16, 4);
    modular.gate_noise_std = 0.3;
    let mut cfg = StrategyConfig::new(modular);
    cfg.devices_per_round = devices_per_round;
    cfg.rounds_per_step = 2;
    cfg.pretrain_epochs = 2;
    cfg.proxy_samples = 200;
    cfg
}

/// Runs three fault-free Nebula rounds and returns the cloud parameters
/// plus the mean accuracy over a few devices.
fn run_rounds() -> (Vec<f32>, f32) {
    let mut world = toy_world(8, 5);
    world.set_fault_plan(FaultPlan::none());
    let mut s = NebulaStrategy::new(toy_cfg(4), 1);
    let mut rng = NebulaRng::seed(3);
    for _ in 0..3 {
        let out = s.single_round(&mut world, &mut rng);
        assert_eq!(out.stats.faults.lost(), 0);
    }
    let acc = (0..4).map(|d| s.device_accuracy(&mut world, d)).sum::<f32>() / 4.0;
    (s.cloud().model().param_vector(), acc)
}

#[test]
fn fault_free_rounds_are_reproducible_and_kernel_tolerant() {
    // 1. Same seeds, same kernels → bit-for-bit identical cloud model.
    let (params_a, acc_a) = run_rounds();
    let (params_b, acc_b) = run_rounds();
    assert_eq!(params_a.len(), params_b.len());
    for (i, (a, b)) in params_a.iter().zip(&params_b).enumerate() {
        assert!(a.to_bits() == b.to_bits(), "param {i} not reproducible: {a} vs {b}");
    }
    assert_eq!(acc_a.to_bits(), acc_b.to_bits());

    // 2. Pre-blocking reference kernels → same training outcome within the
    //    kernel-reassociation tolerance. Individual weights drift as f32
    //    rounding compounds over optimisation steps, so the contract is on
    //    aggregate behaviour: accuracy and parameter norm.
    set_reference_kernels(true);
    let (params_ref, acc_ref) = run_rounds();
    set_reference_kernels(false);
    assert!(
        (acc_a - acc_ref).abs() <= 0.1,
        "blocked vs reference kernels moved accuracy: {acc_a} vs {acc_ref}"
    );
    let norm = |p: &[f32]| p.iter().map(|v| (*v as f64).powi(2)).sum::<f64>().sqrt();
    let (na, nr) = (norm(&params_a), norm(&params_ref));
    assert!(
        (na - nr).abs() / nr.max(1e-9) < 0.05,
        "parameter norms diverged beyond reassociation noise: {na} vs {nr}"
    );
}
