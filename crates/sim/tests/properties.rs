//! Property-based tests for the simulation substrate: latency and
//! contention monotonicity, communication accounting arithmetic, and
//! resource-sampling invariants.

use nebula_sim::contention::contention_multiplier;
use nebula_sim::latency::{adaptation_latency_ms, inference_latency_ms, training_batch_latency_ms};
use nebula_sim::network::{transfer_time_ms, CommTracker};
use nebula_sim::{DeviceClass, DeviceResources, ResourceSampler};
use nebula_tensor::NebulaRng;
use proptest::prelude::*;

fn device(flops: f64, procs: usize) -> DeviceResources {
    DeviceResources {
        class: DeviceClass::MobileSoc,
        ram_bytes: 4_000_000_000,
        flops_per_sec: flops,
        bandwidth_bps: 2e7,
        budget_ratio: 0.5,
        background_procs: procs,
    }
}

proptest! {
    #[test]
    fn contention_is_monotone_and_anchored(procs in 0usize..16) {
        let m = contention_multiplier(procs);
        prop_assert!(m >= 1.0);
        prop_assert!(contention_multiplier(procs + 1) > m);
    }

    #[test]
    fn latency_scales_linearly_in_flops(
        flops in 1_000u64..100_000_000, factor in 2u64..10, procs in 0usize..4
    ) {
        let d = device(1e9, procs);
        let base = inference_latency_ms(&d, flops);
        let scaled = inference_latency_ms(&d, flops * factor);
        prop_assert!((scaled / base - factor as f64).abs() < 1e-6);
    }

    #[test]
    fn training_latency_exceeds_inference(flops in 1_000u64..10_000_000, batch in 1usize..64) {
        let d = device(1e9, 0);
        let inf = inference_latency_ms(&d, flops) * batch as f64;
        let train = training_batch_latency_ms(&d, flops, batch);
        prop_assert!(train > inf * 1.5, "training {} vs inference {}", train, inf);
    }

    #[test]
    fn adaptation_latency_monotone_in_all_knobs(
        flops in 1_000u64..1_000_000, samples in 1usize..500, epochs in 1usize..10
    ) {
        let d = device(1e9, 0);
        let base = adaptation_latency_ms(&d, flops, samples, epochs, 16);
        prop_assert!(adaptation_latency_ms(&d, flops * 2, samples, epochs, 16) > base);
        prop_assert!(adaptation_latency_ms(&d, flops, samples, epochs + 1, 16) > base);
        prop_assert!(adaptation_latency_ms(&d, flops, samples + 200, epochs, 16) >= base);
    }

    #[test]
    fn transfer_time_is_linear(bytes in 1u64..100_000_000, bw in 1e5f64..1e9) {
        let t1 = transfer_time_ms(bytes, bw);
        let t2 = transfer_time_ms(bytes * 2, bw);
        prop_assert!((t2 / t1 - 2.0).abs() < 1e-9);
        // Faster link, shorter transfer.
        prop_assert!(transfer_time_ms(bytes, bw * 2.0) < t1);
    }

    #[test]
    fn comm_tracker_total_is_sum_of_directions(
        downs in proptest::collection::vec(0u64..1_000_000, 0..20),
        ups in proptest::collection::vec(0u64..1_000_000, 0..20),
    ) {
        let mut t = CommTracker::new();
        for &d in &downs {
            t.record_download(d);
        }
        for &u in &ups {
            t.record_upload(u);
        }
        prop_assert_eq!(t.total_bytes(), downs.iter().sum::<u64>() + ups.iter().sum::<u64>());
        prop_assert_eq!(t.downloads as usize, downs.len());
        prop_assert_eq!(t.uploads as usize, ups.len());
    }

    #[test]
    fn comm_tracker_merge_is_additive(
        a_down in 0u64..1_000_000, a_up in 0u64..1_000_000,
        b_down in 0u64..1_000_000, b_up in 0u64..1_000_000,
    ) {
        let mut a = CommTracker::new();
        a.record_download(a_down);
        a.record_upload(a_up);
        let mut b = CommTracker::new();
        b.record_download(b_down);
        b.record_upload(b_up);
        let mut merged = a;
        merged.merge(&b);
        prop_assert_eq!(merged.total_bytes(), a_down + a_up + b_down + b_up);
    }

    #[test]
    fn sampled_devices_are_physically_plausible(seed in 0u64..2000) {
        let mut rng = NebulaRng::seed(seed);
        let d = ResourceSampler::default().sample(&mut rng);
        prop_assert!(d.ram_bytes >= 500_000_000, "RAM {}", d.ram_bytes);
        prop_assert!(d.flops_per_sec > 1e6, "speed {}", d.flops_per_sec);
        prop_assert!(d.bandwidth_bps > 1e4, "bandwidth {}", d.bandwidth_bps);
        prop_assert!(d.budget_ratio > 0.0 && d.budget_ratio <= 1.0);
        prop_assert_eq!(d.background_procs, 0, "fresh devices start idle");
    }
}
