//! End-to-end adversary tests: persona assignment determinism, the
//! authenticated-wire reject path through a full Nebula round, the
//! attacks-disabled bit-identity guarantee, and robust aggregation
//! holding up where the weighted mean collapses.

use std::sync::Arc;

use nebula_core::{RobustAggregator, SanitizePolicy};
use nebula_data::{PartitionSpec, Partitioner, SynthSpec, Synthesizer};
use nebula_modular::ModularConfig;
use nebula_nn::Layer;
use nebula_sim::strategy::StrategyConfig;
use nebula_sim::{
    AdaptStrategy, AdversaryPlan, AttackPersona, FaultPlan, NebulaStrategy, ResourceSampler, RoundPolicy,
    SimWorld,
};
use nebula_telemetry::{MemorySink, Telemetry};
use nebula_tensor::NebulaRng;

fn toy_world(devices: usize, seed: u64) -> SimWorld {
    let synth = Synthesizer::new(SynthSpec::toy(), 1);
    let spec = PartitionSpec::new(devices, Partitioner::LabelSkew { m: 2 });
    SimWorld::new(synth, spec, 9, None, &ResourceSampler::default(), seed)
}

fn toy_cfg(devices_per_round: usize) -> StrategyConfig {
    let mut modular = ModularConfig::toy(16, 4);
    modular.gate_noise_std = 0.3;
    let mut cfg = StrategyConfig::new(modular);
    cfg.devices_per_round = devices_per_round;
    cfg.rounds_per_step = 2;
    cfg.pretrain_epochs = 2;
    cfg.proxy_samples = 200;
    cfg
}

fn adversary(frac: f64, persona: AttackPersona) -> AdversaryPlan {
    AdversaryPlan { seed: 0xBAD_5EED, frac, persona, ..AdversaryPlan::none() }
}

// --- persona assignment ---------------------------------------------------

/// Roles are a pure function of (plan seed, device): stable across calls,
/// across plan clones, and across rounds — a device never flips sides.
#[test]
fn malicious_roles_are_deterministic_and_persistent() {
    let plan = adversary(0.3, AttackPersona::SignFlip);
    let roles: Vec<Option<AttackPersona>> = (0..200).map(|d| plan.malicious(d)).collect();
    let again: Vec<Option<AttackPersona>> = (0..200).map(|d| plan.malicious(d)).collect();
    assert_eq!(roles, again, "role assignment must be deterministic");
    let clone = adversary(0.3, AttackPersona::SignFlip);
    assert_eq!(roles, (0..200).map(|d| clone.malicious(d)).collect::<Vec<_>>());

    let n_bad = roles.iter().filter(|r| r.is_some()).count();
    assert!((30..=90).contains(&n_bad), "~30% of 200 devices should be malicious, got {n_bad}");
    assert!(roles.iter().flatten().all(|p| *p == AttackPersona::SignFlip));

    // A different adversary seed compromises a different cohort.
    let other = AdversaryPlan { seed: 0x5EED, ..adversary(0.3, AttackPersona::SignFlip) };
    let other_roles: Vec<Option<AttackPersona>> = (0..200).map(|d| other.malicious(d)).collect();
    assert_ne!(roles, other_roles, "seed must reshuffle who is compromised");
}

/// Attack seeds vary per round; colluding cohorts share one per round.
#[test]
fn attack_seeds_fresh_per_round_and_shared_under_collusion() {
    let solo = adversary(0.5, AttackPersona::GaussianNoise);
    assert_ne!(solo.attack_seed(1, 3), solo.attack_seed(2, 3), "rounds must reseed");
    assert_ne!(solo.attack_seed(1, 3), solo.attack_seed(1, 4), "independent attackers differ");

    let cartel = AdversaryPlan { collude: true, ..solo };
    assert_eq!(cartel.attack_seed(1, 3), cartel.attack_seed(1, 4), "colluders share the round's attack seed");
    assert_ne!(cartel.attack_seed(1, 3), cartel.attack_seed(2, 3));
}

/// `AdversaryPlan::none()` marks nobody.
#[test]
fn none_plan_has_no_malicious_devices() {
    let plan = AdversaryPlan::none();
    assert!(!plan.is_active());
    assert!((0..500).all(|d| plan.malicious(d).is_none()));
}

// --- authenticated wire through a full round ------------------------------

/// With frame auth on and transit forgery at 100% (CRC fixed up, MAC not),
/// every forged upload is rejected *before* decode: the rejects surface in
/// `wire.rejects_auth`, nothing is aggregated, and with no retry budget the
/// cloud model is bit-untouched.
#[test]
fn forged_frames_are_auth_rejected_and_never_aggregated() {
    let mut world = toy_world(12, 5);
    world.set_fault_plan(FaultPlan { seed: 19, frame_corrupt_prob: 1.0, ..FaultPlan::none() });
    world.set_round_policy(RoundPolicy { max_retries: 0, ..RoundPolicy::default() });
    let mut cfg = toy_cfg(6);
    cfg.wire = cfg.wire.with_auth([0xA5u8; 16]);
    let mut s = NebulaStrategy::new(cfg, 1);
    let mem = Arc::new(MemorySink::new());
    let t = Telemetry::new(mem);
    s.set_telemetry(t.clone());

    let mut rng = NebulaRng::seed(3);
    let before = s.cloud().model().param_vector();
    let out = s.single_round(&mut world, &mut rng);

    assert_eq!(out.stats.faults.participated, 0, "{:?}", out.stats.faults);
    assert!(out.stats.faults.corrupt_frames > 0);
    let m = t.metrics().expect("telemetry armed");
    assert!(
        m.counters.get("wire.rejects_auth").copied().unwrap_or(0) > 0,
        "forgeries must be MAC-rejected, counters: {:?}",
        m.counters
    );
    assert!(
        !m.counters.contains_key("wire.rejects_crc"),
        "forgery fixes the CRC; only the MAC may reject it"
    );
    let after = s.cloud().model().param_vector();
    assert_eq!(before.len(), after.len());
    for (a, b) in before.iter().zip(&after) {
        assert_eq!(a.to_bits(), b.to_bits(), "a forged frame reached aggregation");
    }
}

/// The same forgery without auth slips past the CRC-only check — the
/// contrast that motivates the MAC. (The sanitize gate is the only thing
/// left standing, and a CRC-fixed frame decodes cleanly.)
#[test]
fn authed_rounds_still_complete_without_forgery() {
    let mut world = toy_world(12, 5);
    let mut cfg = toy_cfg(6);
    cfg.wire = cfg.wire.with_auth([0xA5u8; 16]);
    let mut s = NebulaStrategy::new(cfg, 1);
    let mut rng = NebulaRng::seed(3);
    let out = s.single_round(&mut world, &mut rng);
    assert!(out.stats.faults.participated > 0, "auth must not break honest uploads");
    assert_eq!(out.stats.faults.corrupt_frames, 0);
    assert!(s.cloud().model().param_vector().iter().all(|p| p.is_finite()));
}

// --- attacks-disabled bit-identity ----------------------------------------

/// An installed-but-inactive adversary (frac 0) under the default
/// WeightedMean aggregator is bit-identical to a world that never touched
/// the adversary APIs at all.
#[test]
fn inactive_adversary_is_bit_identical_to_clean_run() {
    let run = |with_plan: bool| {
        let mut world = toy_world(8, 5);
        if with_plan {
            world.set_fault_plan(FaultPlan {
                adversary: adversary(0.0, AttackPersona::ScaledUpdate),
                ..FaultPlan::none()
            });
        }
        let mut s = NebulaStrategy::new(toy_cfg(4), 1);
        s.set_aggregator(RobustAggregator::WeightedMean);
        s.set_sanitize_policy(SanitizePolicy::default());
        let mut rng = NebulaRng::seed(3);
        for _ in 0..3 {
            let out = s.single_round(&mut world, &mut rng);
            assert_eq!(out.stats.faults.rejected, 0);
        }
        s.cloud().model().param_vector()
    };
    let a = run(false);
    let b = run(true);
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(&b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "param {i} differs: {x} vs {y}");
    }
}

// --- robust aggregation under live attack ---------------------------------

/// Distance of the strategy's cloud params from a clean (attack-free)
/// reference run with the same seeds and aggregator-independent setup.
fn attacked_drift(aggregator: RobustAggregator, persona: AttackPersona) -> f32 {
    let clean = {
        let mut world = toy_world(12, 5);
        let mut s = NebulaStrategy::new(toy_cfg(6), 1);
        let mut rng = NebulaRng::seed(3);
        for _ in 0..3 {
            s.single_round(&mut world, &mut rng);
        }
        s.cloud().model().param_vector()
    };
    let mut world = toy_world(12, 5);
    world.set_fault_plan(FaultPlan { adversary: adversary(0.25, persona), ..FaultPlan::none() });
    let mut s = NebulaStrategy::new(toy_cfg(6), 1);
    s.set_aggregator(aggregator);
    let mut rng = NebulaRng::seed(3);
    for _ in 0..3 {
        s.single_round(&mut world, &mut rng);
    }
    let attacked = s.cloud().model().param_vector();
    assert!(attacked.iter().all(|p| p.is_finite()), "{aggregator}: params went non-finite");
    clean
        .iter()
        .zip(&attacked)
        .map(|(c, a)| {
            let d = c - a;
            d * d
        })
        .sum::<f32>()
        .sqrt()
}

/// Under a 25% scaled-update cohort the coordinate median stays far closer
/// to the clean trajectory than the importance-weighted mean, which the
/// attackers drag (scale 8 slips under the sanitize gate's 10× cutoff).
#[test]
fn coordinate_median_resists_scaled_update_cohort() {
    let weighted = attacked_drift(RobustAggregator::WeightedMean, AttackPersona::ScaledUpdate);
    let median = attacked_drift(RobustAggregator::CoordinateMedian, AttackPersona::ScaledUpdate);
    assert!(
        median < weighted,
        "coordinate median (drift {median}) should beat weighted mean (drift {weighted})"
    );
    assert!(weighted > 1.0, "the scaled cohort should visibly drag the weighted mean: {weighted}");
}

/// Gate gaming inflates importance/volume to capture the weighted average;
/// the median ignores both weights, so the cohort gains nothing extra.
#[test]
fn median_ignores_gate_gaming_inflation() {
    let weighted = attacked_drift(RobustAggregator::WeightedMean, AttackPersona::GateGaming);
    let median = attacked_drift(RobustAggregator::CoordinateMedian, AttackPersona::GateGaming);
    assert!(
        median <= weighted,
        "median (drift {median}) must not amplify gate gaming vs weighted mean ({weighted})"
    );
}
