//! End-to-end fault-injection tests: the robust round loop under dropout,
//! corruption, stragglers and flaky links, plus the bit-identity guarantee
//! of `FaultPlan::none()`.

use nebula_data::{PartitionSpec, Partitioner, SynthSpec, Synthesizer};
use nebula_modular::ModularConfig;
use nebula_nn::Layer;
use nebula_sim::strategy::StrategyConfig;
use nebula_sim::{
    AdaptStrategy, CorruptionKind, FaultPlan, FedAvgStrategy, NebulaStrategy, ResourceSampler, RoundPolicy,
    RoundReport, SimWorld,
};
use nebula_tensor::NebulaRng;

fn toy_world(devices: usize, seed: u64) -> SimWorld {
    let synth = Synthesizer::new(SynthSpec::toy(), 1);
    let spec = PartitionSpec::new(devices, Partitioner::LabelSkew { m: 2 });
    SimWorld::new(synth, spec, 9, None, &ResourceSampler::default(), seed)
}

fn toy_cfg(devices_per_round: usize) -> StrategyConfig {
    let mut modular = ModularConfig::toy(16, 4);
    modular.gate_noise_std = 0.3;
    let mut cfg = StrategyConfig::new(modular);
    cfg.devices_per_round = devices_per_round;
    cfg.rounds_per_step = 2;
    cfg.pretrain_epochs = 2;
    cfg.proxy_samples = 200;
    cfg
}

fn faulty_plan() -> FaultPlan {
    FaultPlan {
        seed: 41,
        dropout_prob: 0.3,
        corrupt_prob: 0.3,
        corruption: CorruptionKind::NanPoison,
        ..FaultPlan::none()
    }
}

/// `sampled` must be fully accounted for by the participation/loss counters.
fn assert_conserved(r: &RoundReport) {
    assert_eq!(
        r.sampled,
        r.participated + r.dropped + r.crashed + r.deadline_dropped + r.link_dropped,
        "unaccounted devices: {r:?}"
    );
}

/// Installing `FaultPlan::none()` + the default policy must be bit-for-bit
/// identical to never touching the fault APIs at all.
#[test]
fn none_plan_is_bit_identical_to_untouched_world() {
    let run = |install: bool| {
        let mut world = toy_world(8, 5);
        if install {
            world.set_fault_plan(FaultPlan::none());
            world.set_round_policy(RoundPolicy::default());
        }
        let mut s = NebulaStrategy::new(toy_cfg(4), 1);
        let mut rng = NebulaRng::seed(3);
        let mut comms = Vec::new();
        for _ in 0..3 {
            let out = s.single_round(&mut world, &mut rng);
            assert_eq!(out.stats.faults.lost(), 0);
            assert_eq!(out.stats.faults.rejected, 0);
            comms.push(out.stats.comm);
        }
        (s.cloud().model().param_vector(), comms)
    };
    let (params_a, comms_a) = run(false);
    let (params_b, comms_b) = run(true);
    assert_eq!(comms_a, comms_b);
    assert_eq!(params_a.len(), params_b.len());
    for (i, (a, b)) in params_a.iter().zip(&params_b).enumerate() {
        assert!(a.to_bits() == b.to_bits(), "param {i} differs: {a} vs {b}");
    }
}

/// Under 30% dropout + NaN-corrupted updates every round still completes,
/// every corrupted update is rejected, and the cloud model stays finite.
#[test]
fn nebula_survives_dropout_and_corruption() {
    let mut world = toy_world(16, 5);
    world.set_fault_plan(faulty_plan());
    let mut s = NebulaStrategy::new(toy_cfg(8), 1);
    let mut rng = NebulaRng::seed(3);
    let mut total = RoundReport::default();
    for _ in 0..6 {
        let out = s.single_round(&mut world, &mut rng);
        assert_conserved(&out.stats.faults);
        total.merge(&out.stats.faults);
    }
    assert!(total.dropped > 0, "30% dropout never fired: {total:?}");
    assert!(total.rejected > 0, "corrupted updates never rejected: {total:?}");
    assert!(total.participated > 0, "nobody ever participated: {total:?}");
    assert!(
        s.cloud().model().param_vector().iter().all(|p| p.is_finite()),
        "NaN leaked through the sanitize gate"
    );
}

/// The same corruption poisons FedAvg's global model: the baselines have
/// no per-update gate, which is exactly the contrast the sweep measures.
#[test]
fn fedavg_has_no_gate_and_gets_poisoned() {
    let mut world = toy_world(16, 5);
    world.set_fault_plan(FaultPlan { corrupt_prob: 1.0, ..faulty_plan() });
    let mut s = FedAvgStrategy::new(toy_cfg(8), 1);
    let mut rng = NebulaRng::seed(3);
    let out = s.single_round(&mut world, &mut rng);
    assert!(out.stats.faults.participated > 0);
    // The poisoned server is what every device now evaluates.
    let acc = s.device_accuracy(&mut world, 0);
    assert!(acc.is_nan() || acc <= 0.5, "poisoned FedAvg still accurate: {acc}");
}

/// A deadline derived from the latency model drops extreme stragglers.
#[test]
fn deadline_drops_stragglers() {
    let mut world = toy_world(20, 5);
    world.set_fault_plan(FaultPlan {
        seed: 7,
        straggler_prob: 0.4,
        straggler_slowdown: 200.0,
        ..FaultPlan::none()
    });
    world.set_round_policy(RoundPolicy { deadline_factor: Some(3.0), ..RoundPolicy::default() });
    let mut s = NebulaStrategy::new(toy_cfg(10), 1);
    let mut rng = NebulaRng::seed(3);
    let mut total = RoundReport::default();
    let mut capped_rounds = 0;
    for _ in 0..4 {
        let out = s.single_round(&mut world, &mut rng);
        assert_conserved(&out.stats.faults);
        if out.stats.faults.deadline_dropped > 0 {
            capped_rounds += 1;
        }
        assert!(out.round_time_ms.is_finite());
        total.merge(&out.stats.faults);
    }
    assert!(total.deadline_dropped > 0, "no straggler ever hit the deadline: {total:?}");
    assert!(capped_rounds > 0);
    assert!(total.participated > 0, "deadline starved every round: {total:?}");
}

/// Transit corruption on upload frames: every corrupted frame is caught
/// by the wire CRC and re-sent through the retry path — nothing corrupted
/// reaches aggregation, and with a retry budget nobody is lost.
#[test]
fn frame_corruption_is_crc_detected_and_retried() {
    let mut world = toy_world(12, 5);
    world.set_fault_plan(FaultPlan { seed: 17, frame_corrupt_prob: 0.5, ..FaultPlan::none() });
    let mut s = NebulaStrategy::new(toy_cfg(6), 1);
    let mut rng = NebulaRng::seed(3);
    let mut total = RoundReport::default();
    let mut comm = nebula_sim::CommTracker::new();
    for _ in 0..4 {
        let out = s.single_round(&mut world, &mut rng);
        assert_conserved(&out.stats.faults);
        total.merge(&out.stats.faults);
        comm.merge(&out.stats.comm);
    }
    assert!(total.corrupt_frames > 0, "50% frame corruption never fired: {total:?}");
    // Default policy has retries: every corrupted frame is re-sent, so no
    // device is lost and every resend is accounted.
    assert_eq!(total.link_dropped, 0, "{total:?}");
    assert_eq!(total.retried, total.corrupt_frames, "{total:?}");
    assert_eq!(comm.retries, total.retried);
    assert!(comm.retry_bytes > 0, "corrupted attempts must burn bytes");
    assert!(total.participated > 0);
    assert!(
        s.cloud().model().param_vector().iter().all(|p| p.is_finite()),
        "corrupted frame leaked into aggregation"
    );
}

/// Without a retry budget a corrupted frame is fatal for the round: the
/// device is dropped (link_dropped) and its update never aggregates —
/// there is no silent acceptance of a CRC-failed frame.
#[test]
fn frame_corruption_without_retries_drops_devices() {
    let mut world = toy_world(12, 5);
    world.set_fault_plan(FaultPlan { seed: 19, frame_corrupt_prob: 1.0, ..FaultPlan::none() });
    world.set_round_policy(RoundPolicy { max_retries: 0, ..RoundPolicy::default() });
    let mut s = NebulaStrategy::new(toy_cfg(6), 1);
    let mut rng = NebulaRng::seed(3);
    let before = s.cloud().model().param_vector();
    let out = s.single_round(&mut world, &mut rng);
    assert_conserved(&out.stats.faults);
    assert_eq!(out.stats.faults.participated, 0, "{:?}", out.stats.faults);
    assert_eq!(out.stats.faults.link_dropped, out.stats.faults.corrupt_frames, "{:?}", out.stats.faults);
    assert!(out.stats.faults.corrupt_frames > 0);
    // Nothing aggregated → the cloud model is untouched.
    let after = s.cloud().model().param_vector();
    assert_eq!(before.len(), after.len());
    for (a, b) in before.iter().zip(&after) {
        assert_eq!(a.to_bits(), b.to_bits(), "aggregation ran on corrupted frames");
    }
}

/// A dead round — every frame corrupted, no retry budget — with the edge
/// hierarchy enabled must record zeros like the flat path does, not
/// panic. Regression test: the edge fold divided by the (empty) accepted
/// cohort's size.
#[test]
fn dead_round_with_edge_hierarchy_records_zeros() {
    let mut world = toy_world(12, 5);
    world.set_fault_plan(FaultPlan { seed: 19, frame_corrupt_prob: 1.0, ..FaultPlan::none() });
    world.set_round_policy(RoundPolicy { max_retries: 0, ..RoundPolicy::default() });
    let mut cfg = toy_cfg(6);
    cfg.edge_groups = Some(2);
    let mut s = NebulaStrategy::new(cfg, 1);
    let mut rng = NebulaRng::seed(3);
    let before = s.cloud().model().param_vector();
    let out = s.single_round(&mut world, &mut rng);
    assert_conserved(&out.stats.faults);
    assert_eq!(out.stats.faults.participated, 0, "{:?}", out.stats.faults);
    let after = s.cloud().model().param_vector();
    assert_eq!(before.len(), after.len());
    for (a, b) in before.iter().zip(&after) {
        assert_eq!(a.to_bits(), b.to_bits(), "a dead round must leave the cloud untouched");
    }
}

/// The dense baselines account frame corruption through the same
/// retry/link-drop bookkeeping.
#[test]
fn baseline_frame_corruption_accounts_retries() {
    let mut world = toy_world(12, 5);
    world.set_fault_plan(FaultPlan { seed: 23, frame_corrupt_prob: 0.6, ..FaultPlan::none() });
    let mut s = FedAvgStrategy::new(toy_cfg(6), 1);
    let mut rng = NebulaRng::seed(3);
    let mut total = RoundReport::default();
    for _ in 0..3 {
        let out = s.single_round(&mut world, &mut rng);
        assert_conserved(&out.stats.faults);
        total.merge(&out.stats.faults);
    }
    assert!(total.corrupt_frames > 0, "{total:?}");
    assert_eq!(total.link_dropped, 0, "retry budget should save every device: {total:?}");
    assert!(total.retried >= total.corrupt_frames, "{total:?}");
}

/// Flaky links cost retries (and wasted retry bytes); links whose retry
/// budget runs out drop the device.
#[test]
fn flaky_links_account_retries() {
    let mut world = toy_world(16, 5);
    world.set_fault_plan(FaultPlan {
        seed: 13,
        link_flake_prob: 0.8,
        bandwidth_collapse: 10.0,
        ..FaultPlan::none()
    });
    let mut s = NebulaStrategy::new(toy_cfg(8), 1);
    let mut rng = NebulaRng::seed(3);
    let mut comm = nebula_sim::CommTracker::new();
    let mut total = RoundReport::default();
    for _ in 0..4 {
        let out = s.single_round(&mut world, &mut rng);
        assert_conserved(&out.stats.faults);
        comm.merge(&out.stats.comm);
        total.merge(&out.stats.faults);
    }
    assert!(comm.retries > 0, "no retries recorded: {comm:?}");
    assert!(comm.retry_bytes > 0);
    assert_eq!(comm.retries, total.retried);
    assert!(comm.total_bytes() > comm.down_bytes + comm.up_bytes, "retry bytes not wasted traffic");
}
