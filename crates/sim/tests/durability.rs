//! Kill/restart durability: a run killed at any point — including with
//! corrupted durability files — resumes to a bit-identical trajectory.
//!
//! Drives `nebula_sim::Runner` directly (the free-function wrappers were
//! removed); the thin helpers below fix the run shape so every test reads
//! as "run, kill, resume, compare".

use std::fs;
use std::path::{Path, PathBuf};

use nebula_core::read_journal;
use nebula_core::transport::WireConfig;
use nebula_data::drift::DriftKind;
use nebula_data::{DriftModel, PartitionSpec, Partitioner, SynthSpec, Synthesizer};
use nebula_modular::ModularConfig;
use nebula_sim::experiment::{ContinuousOutcome, TargetOutcome};
use nebula_sim::resources::ResourceSampler;
use nebula_sim::strategy::{NebulaStrategy, StrategyConfig};
use nebula_sim::{
    ChaosControl, CommTracker, DurableOptions, ExperimentConfig, FaultPlan, KillSpot, RoundRecord, RunError,
    RunOutcome, Runner, SimWorld,
};

const TARGET: f32 = 1.01; // unreachable → runs always go to max_rounds
const MAX_ROUNDS: usize = 5;
const PROBE_EVERY: usize = 2;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nebula-durability-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn toy_world(drift: bool) -> SimWorld {
    let synth = Synthesizer::new(SynthSpec::toy(), 1);
    let spec = PartitionSpec::new(8, Partitioner::LabelSkew { m: 2 });
    let d = drift.then(|| DriftModel::new(0.5, DriftKind::ClassShift { m: 2, group_seed: 9 }));
    let mut world = SimWorld::new(synth, spec, 9, d, &ResourceSampler::default(), 5);
    // Active faults so resume must also restore the fault-plan cursor.
    world.set_fault_plan(FaultPlan {
        seed: 7,
        dropout_prob: 0.2,
        straggler_prob: 0.2,
        straggler_slowdown: 4.0,
        ..FaultPlan::none()
    });
    world
}

fn toy_cfg() -> StrategyConfig {
    let mut modular = ModularConfig::toy(16, 4);
    modular.gate_noise_std = 0.3;
    let mut cfg = StrategyConfig::new(modular);
    cfg.devices_per_round = 4;
    cfg.rounds_per_step = 1;
    cfg.pretrain_epochs = 4;
    cfg.proxy_samples = 200;
    cfg
}

fn build(drift: bool) -> (NebulaStrategy, SimWorld) {
    (NebulaStrategy::new(toy_cfg(), 1), toy_world(drift))
}

fn opts(dir: &Path) -> DurableOptions {
    let mut o = DurableOptions::new(dir);
    o.durability.snapshot_every = 2;
    o.durability.keep_snapshots = 2;
    o
}

/// One durable rounds-to-target run through the `Runner` builder.
fn run_target_durable(
    strategy: &mut NebulaStrategy,
    world: &mut SimWorld,
    cfg: &ExperimentConfig,
    target: f32,
    max_rounds: usize,
    probe_every: usize,
    o: &DurableOptions,
) -> Result<TargetOutcome, RunError> {
    Runner::new(world, strategy)
        .config(*cfg)
        .target(target, max_rounds, probe_every)
        .durable(o.durability.clone())
        .chaos(o.chaos)
        .run()
        .map(RunOutcome::into_target)
}

/// Resumes a durable rounds-to-target run from `o.durability.dir`.
fn resume_target_durable(
    strategy: &mut NebulaStrategy,
    world: &mut SimWorld,
    cfg: &ExperimentConfig,
    target: f32,
    max_rounds: usize,
    probe_every: usize,
    o: &DurableOptions,
) -> Result<TargetOutcome, RunError> {
    Runner::new(world, strategy)
        .config(*cfg)
        .target(target, max_rounds, probe_every)
        .durable(o.durability.clone())
        .chaos(o.chaos)
        .resume()
        .run()
        .map(RunOutcome::into_target)
}

/// One durable continuous run through the `Runner` builder.
fn run_cont_durable(
    strategy: &mut NebulaStrategy,
    world: &mut SimWorld,
    cfg: &ExperimentConfig,
    slots: usize,
    o: &DurableOptions,
) -> Result<ContinuousOutcome, RunError> {
    Runner::new(world, strategy)
        .config(*cfg)
        .continuous(slots)
        .durable(o.durability.clone())
        .chaos(o.chaos)
        .run()
        .map(RunOutcome::into_continuous)
}

/// Resumes a durable continuous run from `o.durability.dir`.
fn resume_cont_durable(
    strategy: &mut NebulaStrategy,
    world: &mut SimWorld,
    cfg: &ExperimentConfig,
    slots: usize,
    o: &DurableOptions,
) -> Result<ContinuousOutcome, RunError> {
    Runner::new(world, strategy)
        .config(*cfg)
        .continuous(slots)
        .durable(o.durability.clone())
        .chaos(o.chaos)
        .resume()
        .run()
        .map(RunOutcome::into_continuous)
}

fn records_of(dir: &Path) -> Vec<RoundRecord> {
    let contents = read_journal(&dir.join("rounds.nblj")).expect("journal readable");
    contents.records.iter().map(|b| serde_json::from_slice(b).expect("journal record decodes")).collect()
}

fn snapshot_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "nbrs"))
        .collect();
    files.sort();
    files
}

fn flip_byte(path: &Path, offset_from_end: usize) {
    let mut bytes = fs::read(path).unwrap();
    let n = bytes.len();
    assert!(n > offset_from_end);
    bytes[n - 1 - offset_from_end] ^= 0x10;
    fs::write(path, bytes).unwrap();
}

/// Uninterrupted durable run for `seed`, returning (outcome, records).
fn baseline(seed: u64, tag: &str) -> (nebula_sim::experiment::TargetOutcome, Vec<RoundRecord>) {
    let dir = tmp_dir(tag);
    let (mut s, mut world) = build(false);
    let cfg = ExperimentConfig { eval_devices: 3, seed };
    let out = run_target_durable(&mut s, &mut world, &cfg, TARGET, MAX_ROUNDS, PROBE_EVERY, &opts(&dir))
        .expect("uninterrupted durable run");
    let recs = records_of(&dir);
    let _ = fs::remove_dir_all(&dir);
    (out, recs)
}

fn assert_equivalent(
    base: &nebula_sim::experiment::TargetOutcome,
    base_recs: &[RoundRecord],
    resumed: &nebula_sim::experiment::TargetOutcome,
    resumed_recs: &[RoundRecord],
) {
    assert_eq!(base.rounds, resumed.rounds, "round counts diverge");
    assert_eq!(
        base.final_accuracy.to_bits(),
        resumed.final_accuracy.to_bits(),
        "final accuracy diverges: {} vs {}",
        base.final_accuracy,
        resumed.final_accuracy
    );
    assert_eq!(base.comm_total_bytes, resumed.comm_total_bytes, "comm totals diverge");
    assert_eq!(base.faults, resumed.faults, "fault accounting diverges");
    // Per-round comm-byte trajectory: every index journalled by the
    // resumed run must match the uninterrupted run exactly.
    for rec in resumed_recs {
        let b = base_recs
            .iter()
            .find(|r| r.index == rec.index)
            .unwrap_or_else(|| panic!("baseline journal missing round {}", rec.index));
        assert_eq!(b, rec, "round {} record diverges", rec.index);
    }
}

#[test]
fn kill_and_resume_is_bit_identical_until_target() {
    let kill_points = [(2, KillSpot::BeforeAppend), (3, KillSpot::AfterAppend), (4, KillSpot::AfterSnapshot)];
    for seed in [11u64, 12, 13] {
        let (base, base_recs) = baseline(seed, &format!("base-{seed}"));
        for (round, spot) in kill_points {
            let dir = tmp_dir(&format!("kill-{seed}-{round}-{spot:?}"));
            let cfg = ExperimentConfig { eval_devices: 3, seed };
            let mut o = opts(&dir);
            o.chaos = ChaosControl { kill: Some((round, spot)) };
            let (mut s, mut world) = build(false);
            let err = run_target_durable(&mut s, &mut world, &cfg, TARGET, MAX_ROUNDS, PROBE_EVERY, &o)
                .expect_err("kill point must fire");
            assert_eq!(err, RunError::Killed { round });

            let (mut s2, mut world2) = build(false);
            let resumed = resume_target_durable(
                &mut s2,
                &mut world2,
                &cfg,
                TARGET,
                MAX_ROUNDS,
                PROBE_EVERY,
                &opts(&dir),
            )
            .expect("resume after kill");
            assert_equivalent(&base, &base_recs, &resumed, &records_of(&dir));
            let _ = fs::remove_dir_all(&dir);
        }
    }
}

#[test]
fn kill_and_resume_is_bit_identical_continuous() {
    let slots = 4;
    let cfg = ExperimentConfig { eval_devices: 2, seed: 21 };

    let base_dir = tmp_dir("cont-base");
    let (mut s, mut world) = build(true);
    let base = run_cont_durable(&mut s, &mut world, &cfg, slots, &opts(&base_dir)).expect("baseline");
    let base_recs = records_of(&base_dir);

    let dir = tmp_dir("cont-kill");
    let mut o = opts(&dir);
    o.chaos = ChaosControl { kill: Some((2, KillSpot::AfterAppend)) };
    let (mut s, mut world) = build(true);
    let err = run_cont_durable(&mut s, &mut world, &cfg, slots, &o).expect_err("kill fires");
    assert_eq!(err, RunError::Killed { round: 2 });

    let (mut s, mut world) = build(true);
    let resumed = resume_cont_durable(&mut s, &mut world, &cfg, slots, &opts(&dir)).expect("resume");
    assert_eq!(base.accuracy_per_slot.len(), resumed.accuracy_per_slot.len());
    for (i, (a, b)) in base.accuracy_per_slot.iter().zip(&resumed.accuracy_per_slot).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "slot {i} accuracy diverges");
    }
    assert_eq!(base.mean_adapt_time_ms.to_bits(), resumed.mean_adapt_time_ms.to_bits());
    assert_eq!(base.faults, resumed.faults);
    for rec in records_of(&dir) {
        let b = base_recs.iter().find(|r| r.index == rec.index).expect("baseline has slot");
        assert_eq!(b, &rec, "slot {} record diverges", rec.index);
    }
    let _ = fs::remove_dir_all(&base_dir);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn resume_survives_corrupt_newest_snapshot() {
    let seed = 31u64;
    let (base, base_recs) = baseline(seed, "corrupt-base");
    let dir = tmp_dir("corrupt-snap");
    let cfg = ExperimentConfig { eval_devices: 3, seed };
    let mut o = opts(&dir);
    o.chaos = ChaosControl { kill: Some((4, KillSpot::AfterSnapshot)) };
    let (mut s, mut world) = build(false);
    run_target_durable(&mut s, &mut world, &cfg, TARGET, MAX_ROUNDS, PROBE_EVERY, &o)
        .expect_err("kill fires");

    // A torn snapshot write: flip a byte inside the newest snapshot's
    // payload. Resume must fall back to the previous snapshot and still
    // reproduce the uninterrupted trajectory.
    let snaps = snapshot_files(&dir);
    assert!(snaps.len() >= 2, "need a fallback snapshot, got {snaps:?}");
    flip_byte(snaps.last().unwrap(), 64);

    let (mut s, mut world) = build(false);
    let resumed =
        resume_target_durable(&mut s, &mut world, &cfg, TARGET, MAX_ROUNDS, PROBE_EVERY, &opts(&dir))
            .expect("resume falls back to older snapshot");
    assert_equivalent(&base, &base_recs, &resumed, &records_of(&dir));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn resume_survives_torn_journal_tail() {
    let seed = 32u64;
    let (base, base_recs) = baseline(seed, "torn-base");
    let dir = tmp_dir("torn-journal");
    let cfg = ExperimentConfig { eval_devices: 3, seed };
    let mut o = opts(&dir);
    o.chaos = ChaosControl { kill: Some((3, KillSpot::AfterAppend)) };
    let (mut s, mut world) = build(false);
    run_target_durable(&mut s, &mut world, &cfg, TARGET, MAX_ROUNDS, PROBE_EVERY, &o)
        .expect_err("kill fires");

    // A crash mid-append: garbage half-record at the journal tail.
    let jpath = dir.join("rounds.nblj");
    let mut bytes = fs::read(&jpath).unwrap();
    bytes.extend_from_slice(&[0x42, 0x00, 0x00, 0x00, 0xde, 0xad]);
    fs::write(&jpath, bytes).unwrap();

    let (mut s, mut world) = build(false);
    let resumed =
        resume_target_durable(&mut s, &mut world, &cfg, TARGET, MAX_ROUNDS, PROBE_EVERY, &opts(&dir))
            .expect("resume truncates torn tail");
    assert_equivalent(&base, &base_recs, &resumed, &records_of(&dir));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn resume_rejects_fully_corrupt_state_without_panic() {
    let dir = tmp_dir("all-corrupt");
    let cfg = ExperimentConfig { eval_devices: 3, seed: 33 };
    let mut o = opts(&dir);
    o.chaos = ChaosControl { kill: Some((3, KillSpot::AfterAppend)) };
    let (mut s, mut world) = build(false);
    run_target_durable(&mut s, &mut world, &cfg, TARGET, MAX_ROUNDS, PROBE_EVERY, &o)
        .expect_err("kill fires");

    for snap in snapshot_files(&dir) {
        flip_byte(&snap, 8);
    }
    let (mut s, mut world) = build(false);
    let err = resume_target_durable(&mut s, &mut world, &cfg, TARGET, MAX_ROUNDS, PROBE_EVERY, &opts(&dir))
        .expect_err("all snapshots corrupt → structured error, not a silent load");
    assert!(matches!(err, RunError::Durability(_)), "unexpected error: {err}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn resume_with_wrong_seed_is_a_state_mismatch() {
    let dir = tmp_dir("wrong-seed");
    let cfg = ExperimentConfig { eval_devices: 3, seed: 34 };
    let mut o = opts(&dir);
    o.chaos = ChaosControl { kill: Some((2, KillSpot::AfterAppend)) };
    let (mut s, mut world) = build(false);
    run_target_durable(&mut s, &mut world, &cfg, TARGET, MAX_ROUNDS, PROBE_EVERY, &o)
        .expect_err("kill fires");

    let other = ExperimentConfig { eval_devices: 3, seed: 35 };
    let (mut s, mut world) = build(false);
    let err = resume_target_durable(&mut s, &mut world, &other, TARGET, MAX_ROUNDS, PROBE_EVERY, &opts(&dir))
        .expect_err("different seed must not resume");
    assert!(matches!(err, RunError::StateMismatch(_)), "unexpected error: {err}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn durable_run_refuses_lossy_wire_codec() {
    let dir = tmp_dir("lossy-codec");
    let mut cfg_s = toy_cfg();
    cfg_s.wire = WireConfig::delta(0.0);
    let mut s = NebulaStrategy::new(cfg_s, 1);
    let mut world = toy_world(false);
    let cfg = ExperimentConfig { eval_devices: 3, seed: 36 };
    let err = run_target_durable(&mut s, &mut world, &cfg, TARGET, 2, 1, &opts(&dir))
        .expect_err("delta codec has unexportable cross-round state");
    assert!(matches!(err, RunError::UnsupportedStrategy(_)), "unexpected error: {err}");
    let _ = fs::remove_dir_all(&dir);
}

mod properties {
    use super::*;
    use nebula_sim::strategy::{DenseState, StrategyState};
    use nebula_sim::{RoundPolicy, RoundReport, RunState};
    use proptest::prelude::*;

    fn comm(v: [u64; 7]) -> CommTracker {
        CommTracker {
            down_bytes: v[0],
            up_bytes: v[1],
            downloads: v[2],
            uploads: v[3],
            rounds: v[4],
            retries: v[5],
            retry_bytes: v[6],
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn round_record_json_roundtrips(
            index in 0u64..=u64::MAX,
            comm_words in proptest::collection::vec(0u64..=u64::MAX, 7..=7),
            sampled in 0u64..=u64::MAX,
            acc_bits in 0u32..=u32::MAX,
            time_bits in 0u64..=u64::MAX,
        ) {
            let rec = RoundRecord {
                index,
                comm: comm([
                    comm_words[0], comm_words[1], comm_words[2], comm_words[3],
                    comm_words[4], comm_words[5], comm_words[6],
                ]),
                faults: RoundReport { sampled, ..RoundReport::default() },
                acc_bits,
                time_bits,
            };
            let json = serde_json::to_string(&rec).unwrap();
            let back: RoundRecord = serde_json::from_str(&json).unwrap();
            prop_assert_eq!(rec, back);
        }

        #[test]
        fn run_state_json_roundtrips(
            run_id in 0u64..=u64::MAX,
            rounds in 0u64..=u64::MAX,
            harness in proptest::collection::vec(1u64..=u64::MAX, 4..=4),
            world in proptest::collection::vec(1u64..=u64::MAX, 4..=4),
            acc_bits in 0u32..=u32::MAX,
            time_sum_bits in 0u64..=u64::MAX,
            slot_bits in proptest::collection::vec(0u32..=u32::MAX, 0..6),
            param_bits in proptest::collection::vec(0u32..=u32::MAX, 0..32),
            dropout in 0.0f64..1.0,
        ) {
            let state = RunState {
                format: 1,
                run_id,
                mode: "target".into(),
                rounds,
                slot: 0,
                rounds_started: rounds,
                harness_rng: harness.clone(),
                world_rng: world.clone(),
                comm: CommTracker::default(),
                faults: RoundReport::default(),
                acc_bits,
                time_sum_bits,
                acc_per_slot_bits: slot_bits,
                plan: FaultPlan { dropout_prob: dropout, ..FaultPlan::none() },
                policy: RoundPolicy::default(),
                eval_ids: vec![0, 2, 4],
                strategy_name: "Nebula".into(),
                strategy: StrategyState::Dense(DenseState { name: "FA".into(), param_bits }),
            };
            let json = serde_json::to_string(&state).unwrap();
            let back: RunState = serde_json::from_str(&json).unwrap();
            prop_assert_eq!(state, back);
        }
    }
}
