//! Integration tests of the sharded million-device round engine
//! (DESIGN.md §14): shard-count-invariant trajectories, robust shard
//! merging, hierarchical-vs-flat strategy equivalence, and large virtual
//! populations on small memory.

use nebula_core::RobustAggregator;
use nebula_data::{PartitionSpec, Partitioner, SynthSpec, Synthesizer};
use nebula_modular::ModularConfig;
use nebula_nn::Layer;
use nebula_sim::strategy::StrategyConfig;
use nebula_sim::{
    FaultPlan, FoldPlan, NebulaStrategy, ResourceSampler, RoundMode, ShardConfig, ShardedWorld, SimWorld,
};
use nebula_tensor::NebulaRng;

fn sharded(
    population: usize,
    k: usize,
    shards: usize,
    fold: FoldPlan,
    mode: RoundMode,
    aggregator: RobustAggregator,
) -> ShardedWorld {
    // Input width must match SynthSpec::toy()'s feature dim for Train mode.
    let mut modular = ModularConfig::toy(16, 4);
    modular.gate_noise_std = 0.0;
    let mut cfg = ShardConfig::new(population, k, shards);
    cfg.spec.cell_size = 64;
    cfg.fold = fold;
    cfg.mode = mode;
    cfg.aggregator = aggregator;
    ShardedWorld::new(modular, cfg, 42).expect("valid shard config")
}

fn trajectory(w: &mut ShardedWorld, rounds: usize) -> Vec<f32> {
    for _ in 0..rounds {
        let r = w.run_round();
        assert!(r.sampled > 0);
    }
    w.cloud().model().param_vector()
}

fn assert_bit_identical(a: &[f32], b: &[f32], what: &str) {
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: param {i} diverged ({x} vs {y})");
    }
}

#[test]
fn train_mode_trajectory_is_shard_count_invariant() {
    // Real local SGD end-to-end: which devices are sampled, their
    // materialized hardware/data, and the PerCell fold order are all pure
    // functions of (seed, round, id) — so shard topology cannot leak into
    // the learned model's bits.
    let mut one = sharded(256, 24, 1, FoldPlan::PerCell, RoundMode::Train, RobustAggregator::WeightedMean);
    let mut four = sharded(256, 24, 4, FoldPlan::PerCell, RoundMode::Train, RobustAggregator::WeightedMean);
    let pa = trajectory(&mut one, 2);
    let pb = trajectory(&mut four, 2);
    assert_bit_identical(&pa, &pb, "Train-mode S=1 vs S=4");
}

#[test]
fn robust_rules_buffer_and_stay_shard_count_invariant() {
    // Robust combine rules cannot stream, so shards buffer raw updates
    // and the cloud concatenates them in shard order — which is cell
    // order — before the full sanitize gate + combine rule. The
    // trajectory is therefore exactly the flat one, for any shard count.
    let agg = RobustAggregator::CoordinateMedian;
    let mut one = sharded(512, 48, 1, FoldPlan::PerShard, RoundMode::Synthetic, agg);
    let mut eight = sharded(512, 48, 8, FoldPlan::PerShard, RoundMode::Synthetic, agg);
    let pa = trajectory(&mut one, 2);
    let pb = trajectory(&mut eight, 2);
    assert_bit_identical(&pa, &pb, "CoordinateMedian S=1 vs S=8");
}

#[test]
fn per_shard_fold_is_deterministic_for_fixed_shard_count() {
    // The low-memory plan re-runs to the same bits when the topology is
    // unchanged (its documented, weaker contract).
    let mk = || sharded(512, 48, 4, FoldPlan::PerShard, RoundMode::Synthetic, RobustAggregator::WeightedMean);
    let pa = trajectory(&mut mk(), 2);
    let pb = trajectory(&mut mk(), 2);
    assert_bit_identical(&pa, &pb, "PerShard rerun at S=4");
}

#[test]
fn large_virtual_population_round_completes() {
    // 10^5 virtual devices: only the sampled cohort ever materializes, so
    // this runs in seconds and flat memory. The bench bin (scale_sweep)
    // measures the RSS claim; this test pins the functional behaviour.
    let mut w =
        sharded(100_000, 200, 8, FoldPlan::PerCell, RoundMode::Synthetic, RobustAggregator::WeightedMean);
    let r = w.run_round();
    assert_eq!(r.population, 100_000);
    assert_eq!(r.sampled, 200);
    assert_eq!(r.accepted, 200, "clean synthetic round must accept everything");
    assert!(r.touched > 0);
    assert!(r.sim_round_ms > 0.0);
    assert!(r.devices_per_sec() > 0.0);
    // Hierarchical accounting is populated.
    assert!(r.device_upload_bytes > 0);
    assert!(r.partial_upload_bytes > 0);
}

#[test]
fn hierarchical_strategy_matches_flat_on_clean_rounds() {
    // NebulaStrategy with edge_groups = Some(g): clean-run WeightedMean
    // trajectories are bit-identical to the flat path for g = 1 (same
    // fold order, and the cross-cohort outlier check never fires on a
    // clean cohort), and the robust path is identical for any g (the
    // edges buffer).
    let run = |edge_groups: Option<usize>, aggregator: RobustAggregator| {
        let synth = Synthesizer::new(SynthSpec::toy(), 1);
        let spec = PartitionSpec::new(8, Partitioner::LabelSkew { m: 2 });
        let mut world = SimWorld::new(synth, spec, 9, None, &ResourceSampler::default(), 5);
        world.set_fault_plan(FaultPlan::none());
        let mut modular = ModularConfig::toy(16, 4);
        modular.gate_noise_std = 0.3;
        let mut cfg = StrategyConfig::new(modular);
        cfg.devices_per_round = 4;
        cfg.pretrain_epochs = 1;
        cfg.proxy_samples = 100;
        cfg.edge_groups = edge_groups;
        cfg.aggregator = aggregator;
        let mut s = NebulaStrategy::new(cfg, 1);
        let mut rng = NebulaRng::seed(3);
        for _ in 0..2 {
            let out = s.single_round(&mut world, &mut rng);
            assert_eq!(out.stats.faults.lost(), 0);
        }
        s.cloud().model().param_vector()
    };
    let flat = run(None, RobustAggregator::WeightedMean);
    let hier = run(Some(1), RobustAggregator::WeightedMean);
    assert_bit_identical(&flat, &hier, "edge_groups=1 vs flat (WeightedMean)");

    let flat = run(None, RobustAggregator::CoordinateMedian);
    let hier = run(Some(3), RobustAggregator::CoordinateMedian);
    assert_bit_identical(&flat, &hier, "edge_groups=3 vs flat (CoordinateMedian)");
}
