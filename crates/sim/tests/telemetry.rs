//! Integration tests for the telemetry layer behind the unified
//! [`Runner`] API:
//!
//! * span nesting on a real collaborative run (run → round → client →
//!   wire/train/aggregate) captured by a [`MemorySink`];
//! * gate-load histograms: the aggregated metric buckets must equal the
//!   per-round activated-module counts the strategy emitted;
//! * a [`JsonlSink`] trace of a full run parses line-by-line and covers
//!   every event kind the instrumentation produces;
//! * parity: the durable path and telemetry-armed runs are bit-identical
//!   to a plain `Runner` run.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use nebula_data::drift::DriftKind;
use nebula_data::{DriftModel, PartitionSpec, Partitioner, SynthSpec, Synthesizer};
use nebula_modular::ModularConfig;
use nebula_sim::resources::ResourceSampler;
use nebula_sim::strategy::{NebulaStrategy, StrategyConfig};
use nebula_sim::{DurableOptions, ExperimentConfig, Runner, SimWorld};
use nebula_telemetry::{Event, JsonlSink, MemorySink};

const TARGET: f32 = 1.01; // unreachable → runs go to max_rounds
const MAX_ROUNDS: usize = 3;
const PROBE_EVERY: usize = 2;

fn toy_world(seed: u64) -> SimWorld {
    let synth = Synthesizer::new(SynthSpec::toy(), 1);
    let spec = PartitionSpec::new(10, Partitioner::LabelSkew { m: 2 });
    let drift = Some(DriftModel::new(0.5, DriftKind::ClassShift { m: 2, group_seed: 9 }));
    SimWorld::new(synth, spec, 9, drift, &ResourceSampler::default(), seed)
}

fn toy_cfg() -> StrategyConfig {
    let mut cfg = StrategyConfig::new(ModularConfig::toy(16, 4));
    cfg.devices_per_round = 4;
    cfg.rounds_per_step = 1;
    cfg.pretrain_epochs = 2;
    cfg.proxy_samples = 100;
    cfg
}

fn build(seed: u64) -> (NebulaStrategy, SimWorld) {
    (NebulaStrategy::new(toy_cfg(), seed), toy_world(5))
}

fn work_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nebula-telemetry-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// Sum of a gate-load event's zero-padded `bNNN` bucket fields.
fn bucket_sum(e: &Event) -> u64 {
    e.ints.iter().filter(|(k, _)| k.starts_with('b')).map(|(_, v)| *v).sum()
}

#[test]
fn memory_sink_captures_nested_spans_and_gate_loads() {
    let mem = Arc::new(MemorySink::new());
    let (mut s, mut w) = build(11);
    let num_layers = toy_cfg().modular.num_layers;
    let out = Runner::new(&mut w, &mut s)
        .config(ExperimentConfig { eval_devices: 3, seed: 11 })
        .target(TARGET, MAX_ROUNDS, PROBE_EVERY)
        .telemetry(mem.clone())
        .run()
        .expect("instrumented run");
    let events = mem.events();
    assert!(!events.is_empty());

    // ---- span hierarchy: id → (name, parent) ---------------------------
    let spans: BTreeMap<u64, (String, u64)> = events
        .iter()
        .filter(|e| e.kind == "span")
        .map(|e| (e.span, (e.text["name"].clone(), e.ints["parent"])))
        .collect();
    let ids_of = |name: &str| -> BTreeSet<u64> {
        spans.iter().filter(|(_, (n, _))| n == name).map(|(&id, _)| id).collect()
    };

    let runs = ids_of("run");
    assert_eq!(runs.len(), 1, "exactly one run span");
    let run_id = *runs.iter().next().unwrap();
    assert_eq!(spans[&run_id].1, 0, "run span is the root");

    let offline = ids_of("offline");
    assert_eq!(offline.len(), 1);
    assert_eq!(spans[offline.iter().next().unwrap()].1, run_id, "offline nests under run");

    let rounds = ids_of("round");
    assert_eq!(rounds.len(), MAX_ROUNDS, "one round span per collaborative round");
    for id in &rounds {
        assert_eq!(spans[id].1, run_id, "round spans nest under run");
    }
    let clients = ids_of("client");
    assert!(!clients.is_empty());
    for id in &clients {
        assert!(rounds.contains(&spans[id].1), "client spans nest under a round");
    }
    for id in ids_of("local_train").iter().chain(&ids_of("aggregate")) {
        assert!(rounds.contains(&spans[id].1), "train/aggregate spans nest under a round");
    }
    for id in &ids_of("wire_tx") {
        let parent = spans[id].1;
        assert!(
            clients.contains(&parent) || rounds.contains(&parent),
            "wire_tx spans nest under a client (download) or a round (upload)"
        );
    }

    // ---- gate-load histograms ------------------------------------------
    // The per-round `gate_load` events record the activated-module counts
    // of each round's accepted updates; the aggregated load-histogram
    // metrics must sum to exactly the same counts, layer by layer.
    let mut from_rounds: BTreeMap<u64, u64> = BTreeMap::new();
    for e in events.iter().filter(|e| e.kind == "gate_load") {
        *from_rounds.entry(e.ints["layer"]).or_default() += bucket_sum(e);
    }
    let mut from_metrics: BTreeMap<u64, u64> = BTreeMap::new();
    for e in events.iter().filter(|e| e.kind == "metric" && e.text["type"] == "load") {
        let name = &e.text["name"];
        if let Some(layer) = name.strip_prefix("gate_load.layer") {
            from_metrics.insert(layer.parse().unwrap(), bucket_sum(e));
        }
    }
    assert_eq!(from_metrics, from_rounds, "metric buckets equal per-round activated-module counts");
    assert_eq!(from_metrics.len(), num_layers, "one load histogram per gated layer");
    assert!(from_metrics.values().sum::<u64>() > 0, "accepted updates activated modules");

    // ---- run header and eval cohort ------------------------------------
    let header = events.iter().find(|e| e.kind == "run").expect("run header event");
    assert_eq!(header.text["mode"], "target");
    assert_eq!(header.ints["seed"], 11);
    let cohort = events.iter().find(|e| e.kind == "eval_cohort").expect("eval cohort event");
    assert_eq!(cohort.ints["count"] as usize, out.eval_ids.len());
    let recorded: Vec<usize> = cohort.text["ids"].split(',').map(|s| s.parse().unwrap()).collect();
    assert_eq!(recorded, out.eval_ids, "telemetry records the sampled cohort");

    // ---- round events match the outcome's accounting -------------------
    let round_events: Vec<&Event> = events.iter().filter(|e| e.kind == "round").collect();
    assert_eq!(round_events.len(), MAX_ROUNDS);
    assert_eq!(out.rounds as usize, MAX_ROUNDS);
    let client_events = events.iter().filter(|e| e.kind == "client").count();
    assert!(client_events > 0, "per-device fate events recorded");
}

#[test]
fn jsonl_trace_parses_and_covers_every_kind() {
    let dir = work_dir("jsonl");
    let path = dir.join("trace.jsonl");
    let sink = Arc::new(JsonlSink::create(&path).expect("create sink"));
    let (mut s, mut w) = build(3);
    Runner::new(&mut w, &mut s)
        .config(ExperimentConfig { eval_devices: 2, seed: 3 })
        .continuous(2)
        .telemetry(sink)
        .run()
        .expect("traced continuous run");

    let contents = fs::read_to_string(&path).expect("trace written and flushed");
    let events: Vec<Event> = contents
        .lines()
        .map(|l| serde_json::from_str(l).unwrap_or_else(|e| panic!("unparseable line {l:?}: {e}")))
        .collect();
    assert!(!events.is_empty());

    let kinds: BTreeSet<&str> = events.iter().map(|e| e.kind.as_str()).collect();
    for kind in ["run", "eval_cohort", "span", "round", "client", "wire", "gate_load", "metric"] {
        assert!(kinds.contains(kind), "trace is missing kind {kind:?} (has {kinds:?})");
    }
    let span_names: BTreeSet<&str> =
        events.iter().filter(|e| e.kind == "span").map(|e| e.text["name"].as_str()).collect();
    for name in ["run", "offline", "round", "client", "wire_tx", "local_train", "aggregate"] {
        assert!(span_names.contains(name), "trace is missing span {name:?} (has {span_names:?})");
    }
    let metric_names: BTreeSet<&str> =
        events.iter().filter(|e| e.kind == "metric").map(|e| e.text["name"].as_str()).collect();
    assert!(metric_names.contains("rounds"));
    assert!(metric_names.iter().any(|n| n.starts_with("wire.")), "wire metrics flushed");

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn durable_run_is_bit_identical_to_plain_run() {
    let cfg = ExperimentConfig { eval_devices: 3, seed: 21 };
    let (mut s, mut w) = build(21);
    let plain = Runner::new(&mut w, &mut s)
        .config(cfg)
        .target(TARGET, MAX_ROUNDS, PROBE_EVERY)
        .run()
        .expect("plain run");

    let dir = work_dir("durable-parity");
    let (mut s, mut w) = build(21);
    let durable = Runner::new(&mut w, &mut s)
        .config(cfg)
        .target(TARGET, MAX_ROUNDS, PROBE_EVERY)
        .durable(DurableOptions::new(&dir).durability)
        .run()
        .expect("durable run");
    let _ = fs::remove_dir_all(&dir);

    assert_eq!(plain.final_accuracy.to_bits(), durable.final_accuracy.to_bits());
    assert_eq!(plain.rounds, durable.rounds);
    assert_eq!(plain.stats.comm, durable.stats.comm);
    assert_eq!(plain.stats.faults, durable.stats.faults);
    assert_eq!(plain.eval_ids, durable.eval_ids);
}

#[test]
fn telemetry_never_perturbs_the_trajectory() {
    let cfg = ExperimentConfig { eval_devices: 2, seed: 31 };
    let (mut s, mut w) = build(31);
    let silent = Runner::new(&mut w, &mut s).config(cfg).continuous(2).run().expect("silent run");

    let (mut s, mut w) = build(31);
    let mem = Arc::new(MemorySink::new());
    let traced = Runner::new(&mut w, &mut s)
        .config(cfg)
        .continuous(2)
        .telemetry(mem.clone())
        .run()
        .expect("traced run");
    assert!(!mem.events().is_empty(), "the traced run actually recorded events");

    let silent_bits: Vec<u32> = silent.accuracy_per_slot.iter().map(|a| a.to_bits()).collect();
    let traced_bits: Vec<u32> = traced.accuracy_per_slot.iter().map(|a| a.to_bits()).collect();
    assert_eq!(silent_bits, traced_bits, "telemetry is strictly observational");
    assert_eq!(silent.final_accuracy.to_bits(), traced.final_accuracy.to_bits());
    assert_eq!(silent.stats.comm, traced.stats.comm);
    assert_eq!(silent.stats.faults, traced.stats.faults);
    assert_eq!(silent.eval_ids, traced.eval_ids);
}
