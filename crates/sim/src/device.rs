//! A simulated edge device.

use crate::resources::DeviceResources;
use nebula_core::ResourceProfile;
use nebula_data::partition::DevicePartition;
use nebula_data::{Dataset, Synthesizer};
use nebula_modular::cost::CostModel;
use nebula_tensor::NebulaRng;

/// Held-out test samples per device (drawn from the device's current
/// distribution; regenerated after drift).
pub const TEST_SAMPLES_PER_DEVICE: usize = 100;

/// A device in the simulated population: local data, a matching held-out
/// test set, sampled hardware, and a private RNG stream.
pub struct SimDevice {
    pub id: usize,
    pub partition: DevicePartition,
    pub test: Dataset,
    pub resources: DeviceResources,
    pub rng: NebulaRng,
}

impl SimDevice {
    /// Builds a device, drawing its test set from the same distribution
    /// as its local data.
    pub fn new(
        id: usize,
        partition: DevicePartition,
        resources: DeviceResources,
        mut rng: NebulaRng,
        synth: &Synthesizer,
    ) -> Self {
        let test =
            synth.sample_classes(TEST_SAMPLES_PER_DEVICE, &partition.classes, partition.context, &mut rng);
        Self { id, partition, test, resources, rng }
    }

    /// Regenerates the held-out test set after the device's environment
    /// changed (drift moved its classes/context).
    pub fn refresh_test(&mut self, synth: &Synthesizer) {
        self.test = synth.sample_classes(
            TEST_SAMPLES_PER_DEVICE,
            &self.partition.classes,
            self.partition.context,
            &mut self.rng,
        );
    }

    /// The Eq. 2 resource limits this device reports: its budget ratio of
    /// the full model's cost in every dimension. (The simulated mapping
    /// from GB-scale hardware to model-scale budgets; DESIGN.md, Fig. 2
    /// substitution.)
    pub fn profile(&self, cost: &CostModel) -> ResourceProfile {
        let full = cost.full_model();
        let r = self.resources.budget_ratio as f64;
        ResourceProfile {
            mem_bytes: ((full.training_mem_bytes as f64) * r) as u64,
            flops: ((full.flops as f64) * r) as u64,
            comm_bytes: ((full.comm_bytes as f64) * r) as u64,
        }
    }

    /// Local training data volume.
    pub fn volume(&self) -> usize {
        self.partition.data.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::ResourceSampler;
    use nebula_data::{partition, PartitionSpec, Partitioner, SynthSpec};
    use nebula_modular::ModularConfig;

    fn device() -> (SimDevice, Synthesizer) {
        let synth = Synthesizer::new(SynthSpec::toy(), 1);
        let mut rng = NebulaRng::seed(3);
        let spec = PartitionSpec::new(1, Partitioner::LabelSkew { m: 2 });
        let parts = partition::partition(&synth, &spec, 9, &mut rng);
        let res = ResourceSampler::default().sample(&mut rng);
        let dev = SimDevice::new(0, parts.into_iter().next().unwrap(), res, rng.fork(0), &synth);
        (dev, synth)
    }

    #[test]
    fn test_set_matches_device_distribution() {
        let (dev, _) = device();
        assert_eq!(dev.test.len(), TEST_SAMPLES_PER_DEVICE);
        for &label in dev.test.labels() {
            assert!(dev.partition.classes.contains(&label));
        }
    }

    #[test]
    fn refresh_follows_new_classes() {
        let (mut dev, synth) = device();
        // Manually shift the device's sub-task.
        let new_classes = vec![0usize, 3];
        dev.partition.classes = new_classes.clone();
        dev.refresh_test(&synth);
        for &label in dev.test.labels() {
            assert!(new_classes.contains(&label));
        }
    }

    #[test]
    fn profile_scales_with_budget_ratio() {
        let (mut dev, _) = device();
        let cost = CostModel::new(ModularConfig::toy(16, 4));
        dev.resources.budget_ratio = 0.5;
        let half = dev.profile(&cost);
        dev.resources.budget_ratio = 0.25;
        let quarter = dev.profile(&cost);
        assert!(half.mem_bytes > quarter.mem_bytes);
        assert!(half.flops > quarter.flops);
        assert!(half.comm_bytes > quarter.comm_bytes);
    }
}
