//! # nebula-sim
//!
//! The simulation platform the experiments run on — the stand-in for the
//! paper's Linux server + 20-device testbed (10 Jetson Nanos, 10
//! Raspberry Pi 4Bs) and its 500-device simulated population.
//!
//! * [`resources`] — per-device hardware sampled from AI-Benchmark-shaped
//!   distributions (RAM histogram, lognormal inference speed for mobile
//!   SoCs vs IoT boards, bandwidth), reproducing Fig. 2(a)/(b).
//! * [`contention`] — the co-running-process latency multiplier behind
//!   Fig. 1(b) (5.06× with 3 background processes).
//! * [`latency`] — training/inference latency estimates from flops,
//!   device speed and contention.
//! * [`network`] — byte/transfer-time accounting (Fig. 7).
//! * [`device`] — a simulated edge device: local data, held-out local
//!   test set, resources, and the resource profile handed to Nebula's
//!   derivation.
//! * [`faults`] — seeded fault injection (dropout, crashes, stragglers,
//!   flaky links, corrupted updates) and the robust-round policy/report
//!   types every strategy shares.
//! * [`world`] — the device population plus the drift process advancing
//!   it through time slots.
//! * [`shard`] — the sharded round engine for 10^5–10^6-device *virtual*
//!   populations: devices materialized on demand from per-id seeds,
//!   per-shard edge replicas folding streaming partials, simulated
//!   hierarchical round clock.
//! * [`strategy`] — the six adaptation systems behind Table 1 / Figs 7–11
//!   (NA, LA, AN, FA, HFL, Nebula) behind one trait.
//! * [`experiment`] — shared drivers: one adaptation step, rounds-to-
//!   target-accuracy, continuous multi-slot adaptation.
//! * [`durability`] — crash-safe run state: atomic run snapshots, a
//!   write-ahead round journal, deterministic resume, and chaos kill
//!   hooks.
//! * [`runner`] — the unified [`Runner`] builder every experiment shape
//!   (plain/durable × target/continuous) goes through, with optional
//!   [`nebula_telemetry`] tracing.

pub mod contention;
pub mod device;
pub mod durability;
pub mod experiment;
pub mod faults;
pub mod latency;
pub mod network;
pub mod resources;
pub mod runner;
pub mod shard;
pub mod strategy;
pub mod world;

pub use contention::contention_multiplier;
pub use device::SimDevice;
pub use durability::{
    ChaosControl, DurabilityConfig, DurableOptions, KillSpot, RoundRecord, RunError, RunState,
};
pub use experiment::{AdaptationOutcome, ExperimentConfig};
pub use faults::{
    AdversaryPlan, AttackPersona, CorruptionKind, DeviceFate, FaultPlan, RoundPolicy, RoundReport,
};
pub use nebula_core::stats::RoundStats;
pub use network::CommTracker;
pub use resources::{DeviceClass, DeviceResources, ResourceSampler};
pub use runner::{RunOutcome, Runner};
pub use shard::{
    FoldPlan, LinkModel, RoundMode, ShardConfig, ShardRound, ShardSpec, ShardedWorld, VirtualDevice,
};
pub use strategy::{
    AdaptStrategy, AdaptiveNetStrategy, FedAvgStrategy, HeteroFlStrategy, LocalAdaptStrategy, NebulaStrategy,
    NebulaVariant, NoAdaptStrategy,
};
pub use world::SimWorld;
