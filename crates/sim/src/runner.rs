//! The unified experiment driver.
//!
//! [`Runner`] subsumes the six free-function drivers that grew across
//! earlier iterations (`run_until_target`, `run_continuous`, their
//! `_durable` variants and the two `resume_*` functions) behind one
//! builder:
//!
//! ```text
//! Runner::new(&mut world, &mut strategy)
//!     .config(cfg)                    // seed, eval cohort size
//!     .target(0.8, 200, 5)            // or .continuous(slots)
//!     .durable(DurabilityConfig::new(dir))   // optional crash safety
//!     .chaos(ChaosControl::default())        // optional kill injection
//!     .telemetry(Telemetry::new(sink))       // optional tracing
//!     .run()?                          // -> RunOutcome
//! ```
//!
//! Every path funnels through the same round helpers the durable drivers
//! use ([`crate::durability`]'s `target_round` / `continuous_slot`), so a
//! plain run and a durable run of the same configuration produce
//! **bit-identical** trajectories — the legacy free functions are now
//! thin deprecated wrappers over this type, and a parity test holds them
//! to bit equality.
//!
//! ## Determinism contract
//!
//! Telemetry is strictly observational: no instrumentation call consumes
//! simulation RNG or feeds back into round execution, so a run with a
//! [`nebula_telemetry::JsonlSink`] attached produces the same
//! [`RunOutcome`] as one with the disarmed default.

use crate::durability::{
    continuous_slot, derive_run_id, restore, target_round, validate_common, validate_target, verify_replay,
    Accum, ChaosControl, DurabilityConfig, DurableOptions, Engine, RunError, MODE_CONTINUOUS, MODE_TARGET,
};
use crate::experiment::{mean_accuracy, pick_eval_ids, ContinuousOutcome, ExperimentConfig, TargetOutcome};
use crate::strategy::AdaptStrategy;
use crate::world::SimWorld;
use nebula_core::stats::RoundStats;
use nebula_core::{JournalWriter, RobustAggregator, SanitizePolicy, SnapshotStore};
use nebula_telemetry::{Span, Telemetry};
use nebula_tensor::NebulaRng;
use serde::Serialize;

/// Which experiment shape a [`Runner`] drives.
#[derive(Clone, Copy, Debug)]
enum Mode {
    /// Rounds until `target` accuracy (probe every `probe_every`), capped
    /// at `max_rounds`.
    Target { target: f32, max_rounds: usize, probe_every: usize },
    /// `slots` drift slots, adapting and evaluating after each.
    Continuous { slots: usize },
}

/// Unified result of a [`Runner`] run, covering both experiment shapes.
///
/// Convert to the legacy per-shape outcomes with
/// [`RunOutcome::into_target`] / [`RunOutcome::into_continuous`].
#[derive(Clone, Debug, Serialize)]
pub struct RunOutcome {
    /// `strategy.name()`.
    pub strategy: String,
    /// `"target"` or `"continuous"`.
    pub mode: String,
    /// Target mode: whether the accuracy target was reached. Always true
    /// in continuous mode (it has no target).
    pub reached: bool,
    /// Completed rounds (target) or slots (continuous).
    pub rounds: u64,
    /// Last probed mean eval accuracy.
    pub final_accuracy: f32,
    /// Per-slot accuracies (continuous mode; empty in target mode).
    pub accuracy_per_slot: Vec<f32>,
    /// Mean on-device adaptation time per round/slot, ms.
    pub mean_adapt_time_ms: f64,
    /// The evaluation cohort the run probed (sampled by the Runner,
    /// stable across resume).
    pub eval_ids: Vec<usize>,
    /// Communication, fault accounting, and total adaptation time summed
    /// over the whole run.
    pub stats: RoundStats,
}

impl RunOutcome {
    /// The legacy rounds-to-target outcome shape.
    pub fn into_target(self) -> TargetOutcome {
        TargetOutcome {
            strategy: self.strategy,
            reached: self.reached,
            rounds: self.rounds as usize,
            comm_total_bytes: self.stats.comm.total_bytes(),
            final_accuracy: self.final_accuracy,
            faults: self.stats.faults,
        }
    }

    /// The legacy continuous-adaptation outcome shape.
    pub fn into_continuous(self) -> ContinuousOutcome {
        ContinuousOutcome {
            strategy: self.strategy,
            accuracy_per_slot: self.accuracy_per_slot,
            mean_adapt_time_ms: self.mean_adapt_time_ms,
            faults: self.stats.faults,
        }
    }
}

/// Builder-style driver for one experiment run.
///
/// See the [module docs](self) for the full shape. `world` and
/// `strategy` are borrowed mutably for the builder's lifetime and driven
/// by [`Runner::run`].
pub struct Runner<'a> {
    world: &'a mut SimWorld,
    strategy: &'a mut dyn AdaptStrategy,
    cfg: ExperimentConfig,
    mode: Option<Mode>,
    durability: Option<DurabilityConfig>,
    chaos: ChaosControl,
    resume: bool,
    telemetry: Telemetry,
    sanitize: Option<SanitizePolicy>,
    aggregator: Option<RobustAggregator>,
    transport: Option<Box<dyn nebula_core::Transport>>,
}

impl<'a> Runner<'a> {
    /// A runner over `world` driving `strategy`; defaults to
    /// [`ExperimentConfig::default`], no durability, no chaos, and
    /// disarmed telemetry. A mode ([`Runner::target`] or
    /// [`Runner::continuous`]) must be chosen before [`Runner::run`].
    pub fn new(world: &'a mut SimWorld, strategy: &'a mut dyn AdaptStrategy) -> Self {
        Runner {
            world,
            strategy,
            cfg: ExperimentConfig::default(),
            mode: None,
            durability: None,
            chaos: ChaosControl::default(),
            resume: false,
            telemetry: Telemetry::off(),
            sanitize: None,
            aggregator: None,
            transport: None,
        }
    }

    /// Seed and eval-cohort knobs (defaults: seed 1, 20 eval devices).
    pub fn config(mut self, cfg: ExperimentConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Run collaborative rounds until mean eval accuracy reaches
    /// `target` (probing every `probe_every` rounds), stopping at
    /// `max_rounds`.
    pub fn target(mut self, target: f32, max_rounds: usize, probe_every: usize) -> Self {
        self.mode = Some(Mode::Target { target, max_rounds, probe_every });
        self
    }

    /// Run `slots` drift slots: each slot the world drifts, the strategy
    /// adapts, and the eval cohort is probed.
    pub fn continuous(mut self, slots: usize) -> Self {
        self.mode = Some(Mode::Continuous { slots });
        self
    }

    /// Persist crash-safe state (snapshots + round journal) under
    /// `durability.dir`.
    pub fn durable(mut self, durability: DurabilityConfig) -> Self {
        self.durability = Some(durability);
        self
    }

    /// Arm chaos-harness kill injection (requires [`Runner::durable`]).
    pub fn chaos(mut self, chaos: ChaosControl) -> Self {
        self.chaos = chaos;
        self
    }

    /// Attach telemetry. Accepts a [`Telemetry`] handle or any
    /// `Arc<impl Collector>` (e.g. `Arc<JsonlSink>`, `Arc<MemorySink>`).
    pub fn telemetry(mut self, telemetry: impl Into<Telemetry>) -> Self {
        self.telemetry = telemetry.into();
        self
    }

    /// Replace the sanitize gate the strategy's cloud applies before
    /// aggregation. Applied via [`AdaptStrategy::set_sanitize_policy`];
    /// strategies without a gate ignore it.
    pub fn sanitize(mut self, policy: SanitizePolicy) -> Self {
        self.sanitize = Some(policy);
        self
    }

    /// Select the module-wise combine rule used at aggregation. Applied
    /// via [`AdaptStrategy::set_aggregator`]; strategies without
    /// module-wise aggregation ignore it.
    pub fn aggregator(mut self, aggregator: RobustAggregator) -> Self {
        self.aggregator = Some(aggregator);
        self
    }

    /// Route the strategy's training dispatch through a
    /// [`nebula_core::Transport`] (e.g. [`nebula_core::Loopback`] or a
    /// serving-plane socket transport) instead of the in-process path.
    /// Applied via [`AdaptStrategy::set_transport`]; strategies without
    /// remote dispatch ignore it.
    pub fn transport(mut self, transport: Box<dyn nebula_core::Transport>) -> Self {
        self.transport = Some(transport);
        self
    }

    /// Restore from the durability directory instead of starting fresh
    /// (requires [`Runner::durable`]); replays the journal tail with
    /// divergence verification, then continues live.
    pub fn resume(mut self) -> Self {
        self.resume = true;
        self
    }

    /// Drives the configured run to completion.
    pub fn run(self) -> Result<RunOutcome, RunError> {
        let mode = self.mode.ok_or_else(|| {
            RunError::InvalidConfig("Runner needs a mode: call .target(..) or .continuous(..)".into())
        })?;
        if self.durability.is_none() {
            if self.resume {
                return Err(RunError::InvalidConfig(".resume() requires .durable(..)".into()));
            }
            if self.chaos.is_armed() {
                return Err(RunError::InvalidConfig("chaos injection requires .durable(..)".into()));
            }
        }
        match mode {
            Mode::Target { target, max_rounds, probe_every } => {
                self.run_target(target, max_rounds, probe_every)
            }
            Mode::Continuous { slots } => self.run_continuous(slots),
        }
    }

    fn run_target(self, target: f32, max_rounds: usize, probe_every: usize) -> Result<RunOutcome, RunError> {
        validate_target(self.world, &self.cfg, target, probe_every)?;
        let Runner {
            world,
            strategy,
            cfg,
            durability,
            chaos,
            resume,
            telemetry,
            sanitize,
            aggregator,
            transport,
            ..
        } = self;
        if let Some(d) = &durability {
            d.validate()?;
        }
        let opts = durability.map(|d| DurableOptions { durability: d, chaos });

        strategy.set_telemetry(telemetry.clone());
        if let Some(policy) = sanitize {
            strategy.set_sanitize_policy(policy);
        }
        if let Some(agg) = aggregator {
            strategy.set_aggregator(agg);
        }
        if let Some(t) = transport {
            strategy.set_transport(t);
        }
        let pool0 = nebula_nn::workspace::pool_stats();
        let mut run_span = open_run(&telemetry, strategy, MODE_TARGET, &cfg, |e| {
            e.num.insert("target".into(), target as f64);
            e.ints.insert("max_rounds".into(), max_rounds as u64);
            e.ints.insert("probe_every".into(), probe_every as u64);
        });
        run_span.num("target", target as f64);

        let (eval_ids, mut acc, mut eng) = if resume {
            let opts = opts.expect("run() rejects resume without durability");
            let run_id = derive_run_id(cfg.seed, MODE_TARGET);
            let (parts, mut acc) =
                restore(strategy, world, &cfg, run_id, MODE_TARGET, &opts, |_world, _state| Ok(()))?;
            let (store, journal, eval_ids, tail) = parts;
            note_eval_cohort(&telemetry, &eval_ids, acc.rounds);
            let eng = Engine {
                store,
                journal,
                opts,
                run_id,
                mode: MODE_TARGET,
                eval_ids: eval_ids.clone(),
                telemetry: telemetry.clone(),
            };
            // Deterministically re-execute the journal tail, verifying
            // each round against its record.
            let replay_to = tail.keys().next_back().copied().unwrap_or(0);
            while acc.acc < target && (acc.rounds as usize) < max_rounds && acc.rounds < replay_to {
                let rec = target_round(strategy, world, &eval_ids, &mut acc, max_rounds, probe_every);
                if let Some(journaled) = tail.get(&rec.index) {
                    verify_replay(journaled, &rec)?;
                }
            }
            (eval_ids, acc, Some(eng))
        } else {
            // Open the store before any simulation work so I/O problems
            // surface ahead of the (expensive) offline stage — same order
            // the legacy durable driver used.
            let store = match &opts {
                Some(o) => Some(SnapshotStore::open(&o.durability.dir)?),
                None => None,
            };
            let mut rng = NebulaRng::seed(cfg.seed ^ 0x7A6);
            let eval_ids = pick_eval_ids(world, cfg.eval_devices);
            note_eval_cohort(&telemetry, &eval_ids, 0);
            strategy.track(&eval_ids);
            {
                let _offline = telemetry.span("offline");
                strategy.offline(world, &mut rng);
            }
            let first_probe = mean_accuracy(strategy, world, &eval_ids);
            let acc = Accum::fresh(rng, first_probe);
            let eng = match (store, opts) {
                (Some(store), Some(opts)) => {
                    let run_id = derive_run_id(cfg.seed, MODE_TARGET);
                    let journal = JournalWriter::create(&opts.durability.journal_path(), run_id)?;
                    let eng = Engine {
                        store,
                        journal,
                        opts,
                        run_id,
                        mode: MODE_TARGET,
                        eval_ids: eval_ids.clone(),
                        telemetry: telemetry.clone(),
                    };
                    // Guaranteed recovery point (and early
                    // UnsupportedStrategy signal).
                    eng.save_snapshot(&*strategy, world, &acc)?;
                    Some(eng)
                }
                _ => None,
            };
            (eval_ids, acc, eng)
        };

        while acc.acc < target && (acc.rounds as usize) < max_rounds {
            let rec = target_round(strategy, world, &eval_ids, &mut acc, max_rounds, probe_every);
            if let Some(eng) = &mut eng {
                eng.finish_round(&rec, &*strategy, world, &acc)?;
            }
        }
        let reached = acc.acc >= target;
        Ok(finalize(strategy, &telemetry, run_span, MODE_TARGET, reached, eval_ids, acc, pool0))
    }

    fn run_continuous(self, slots: usize) -> Result<RunOutcome, RunError> {
        validate_common(self.world, &self.cfg)?;
        let Runner {
            world,
            strategy,
            cfg,
            durability,
            chaos,
            resume,
            telemetry,
            sanitize,
            aggregator,
            transport,
            ..
        } = self;
        if let Some(d) = &durability {
            d.validate()?;
        }
        let opts = durability.map(|d| DurableOptions { durability: d, chaos });

        strategy.set_telemetry(telemetry.clone());
        if let Some(policy) = sanitize {
            strategy.set_sanitize_policy(policy);
        }
        if let Some(agg) = aggregator {
            strategy.set_aggregator(agg);
        }
        if let Some(t) = transport {
            strategy.set_transport(t);
        }
        let pool0 = nebula_nn::workspace::pool_stats();
        let mut run_span = open_run(&telemetry, strategy, MODE_CONTINUOUS, &cfg, |e| {
            e.ints.insert("slots".into(), slots as u64);
        });
        run_span.int("slots", slots as u64);

        let (eval_ids, mut acc, mut eng) = if resume {
            let opts = opts.expect("run() rejects resume without durability");
            let run_id = derive_run_id(cfg.seed, MODE_CONTINUOUS);
            let (parts, mut acc) =
                restore(strategy, world, &cfg, run_id, MODE_CONTINUOUS, &opts, |world, state| {
                    // Drift the fresh world forward to the snapshot's
                    // slot. Only per-device RNGs advance here; the world
                    // RNG is restored after.
                    for _ in 0..state.slot {
                        world.advance_slot();
                    }
                    Ok(())
                })?;
            let (store, journal, eval_ids, tail) = parts;
            note_eval_cohort(&telemetry, &eval_ids, acc.rounds);
            let eng = Engine {
                store,
                journal,
                opts,
                run_id,
                mode: MODE_CONTINUOUS,
                eval_ids: eval_ids.clone(),
                telemetry: telemetry.clone(),
            };
            let replay_to = tail.keys().next_back().copied().unwrap_or(0);
            while (acc.rounds as usize) < slots && acc.rounds < replay_to {
                let rec = continuous_slot(strategy, world, &eval_ids, &mut acc);
                if let Some(journaled) = tail.get(&rec.index) {
                    verify_replay(journaled, &rec)?;
                }
            }
            (eval_ids, acc, Some(eng))
        } else {
            let store = match &opts {
                Some(o) => Some(SnapshotStore::open(&o.durability.dir)?),
                None => None,
            };
            let mut rng = NebulaRng::seed(cfg.seed ^ 0xC0);
            let eval_ids = pick_eval_ids(world, cfg.eval_devices);
            note_eval_cohort(&telemetry, &eval_ids, 0);
            strategy.track(&eval_ids);
            {
                let _offline = telemetry.span("offline");
                strategy.offline(world, &mut rng);
            }
            let first_probe = mean_accuracy(strategy, world, &eval_ids);
            let acc = Accum::fresh(rng, first_probe);
            let eng = match (store, opts) {
                (Some(store), Some(opts)) => {
                    let run_id = derive_run_id(cfg.seed, MODE_CONTINUOUS);
                    let journal = JournalWriter::create(&opts.durability.journal_path(), run_id)?;
                    let eng = Engine {
                        store,
                        journal,
                        opts,
                        run_id,
                        mode: MODE_CONTINUOUS,
                        eval_ids: eval_ids.clone(),
                        telemetry: telemetry.clone(),
                    };
                    eng.save_snapshot(&*strategy, world, &acc)?;
                    Some(eng)
                }
                _ => None,
            };
            (eval_ids, acc, eng)
        };

        while (acc.rounds as usize) < slots {
            let rec = continuous_slot(strategy, world, &eval_ids, &mut acc);
            if let Some(eng) = &mut eng {
                eng.finish_round(&rec, &*strategy, world, &acc)?;
            }
        }
        Ok(finalize(strategy, &telemetry, run_span, MODE_CONTINUOUS, true, eval_ids, acc, pool0))
    }
}

/// Opens the run-level span and emits the `kind = "run"` header event.
fn open_run(
    telemetry: &Telemetry,
    strategy: &dyn AdaptStrategy,
    mode: &'static str,
    cfg: &ExperimentConfig,
    extra: impl FnOnce(&mut nebula_telemetry::Event),
) -> Span {
    let mut span = telemetry.span("run");
    span.int("seed", cfg.seed);
    telemetry.emit("run", |e| {
        e.text.insert("strategy".into(), strategy.name().to_string());
        e.text.insert("mode".into(), mode.to_string());
        e.ints.insert("seed".into(), cfg.seed);
        e.ints.insert("eval_devices".into(), cfg.eval_devices as u64);
        extra(e);
    });
    span
}

/// Records the sampled evaluation cohort (once per run/resume).
fn note_eval_cohort(telemetry: &Telemetry, eval_ids: &[usize], resumed_rounds: u64) {
    telemetry.emit("eval_cohort", |e| {
        e.ints.insert("count".into(), eval_ids.len() as u64);
        e.ints.insert("resumed_rounds".into(), resumed_rounds);
        let ids: Vec<String> = eval_ids.iter().map(ToString::to_string).collect();
        e.text.insert("ids".into(), ids.join(","));
    });
}

#[allow(clippy::too_many_arguments)]
fn finalize(
    strategy: &dyn AdaptStrategy,
    telemetry: &Telemetry,
    mut run_span: Span,
    mode: &'static str,
    reached: bool,
    eval_ids: Vec<usize>,
    acc: Accum,
    pool0: (u64, u64),
) -> RunOutcome {
    let mean_adapt_time_ms = if mode == MODE_CONTINUOUS {
        acc.time_sum / acc.acc_per_slot.len().max(1) as f64
    } else {
        acc.time_sum / acc.rounds.max(1) as f64
    };
    if telemetry.enabled() {
        let (hits, misses) = nebula_nn::workspace::pool_stats();
        telemetry.counter_add("nn.pool_hits", hits.saturating_sub(pool0.0));
        telemetry.counter_add("nn.pool_misses", misses.saturating_sub(pool0.1));
        telemetry.gauge_set("run.final_accuracy", acc.acc as f64);
        run_span.int("rounds", acc.rounds);
        run_span.num("final_accuracy", acc.acc as f64);
    }
    drop(run_span);
    telemetry.finish();
    RunOutcome {
        strategy: strategy.name().to_string(),
        mode: mode.to_string(),
        reached,
        rounds: acc.rounds,
        final_accuracy: acc.acc,
        accuracy_per_slot: acc.acc_per_slot,
        mean_adapt_time_ms,
        eval_ids,
        stats: RoundStats { comm: acc.comm, adapt_time_ms: acc.time_sum, faults: acc.faults },
    }
}
