//! On-device resource contention (the paper's *inner runtime dynamic*).
//!
//! Fig. 1(b) measures inference latency with 1–4 processes co-running on a
//! Jetson Nano and reports "up to 5.06× inference latency with 3
//! background processes". We model the multiplier as a power law pinned to
//! the paper's two anchors — 1× with no background load, 5.06× with 3
//! background processes:
//!
//! ```text
//! m(b) = (1 + b)^γ,   γ = ln(5.06)/ln(4) ≈ 1.169
//! ```

/// The paper's measured slowdown at 3 background processes.
pub const SLOWDOWN_AT_3_PROCS: f64 = 5.06;

/// Latency multiplier with `background_procs` co-running processes.
pub fn contention_multiplier(background_procs: usize) -> f64 {
    let gamma = SLOWDOWN_AT_3_PROCS.ln() / 4.0f64.ln();
    ((1 + background_procs) as f64).powf(gamma)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_contention_is_identity() {
        assert!((contention_multiplier(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn matches_paper_anchor_at_three_procs() {
        assert!((contention_multiplier(3) - SLOWDOWN_AT_3_PROCS).abs() < 1e-9);
    }

    #[test]
    fn strictly_increasing() {
        for b in 0..8 {
            assert!(contention_multiplier(b + 1) > contention_multiplier(b));
        }
    }

    #[test]
    fn interpolates_sensibly_between_anchors() {
        let m1 = contention_multiplier(1);
        let m2 = contention_multiplier(2);
        assert!(m1 > 1.5 && m1 < 3.0, "m(1) = {m1}");
        assert!(m2 > m1 && m2 < 5.06, "m(2) = {m2}");
    }
}
