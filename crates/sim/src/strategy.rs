//! The six adaptation systems evaluated in the paper, behind one trait.
//!
//! | Paper name | Type | Impl |
//! |---|---|---|
//! | No Adaptation (NA) | static cloud model | [`NoAdaptStrategy`] |
//! | Local Adaptation (LA) | on-device | [`LocalAdaptStrategy`] |
//! | AdaptiveNet (AN) | on-device, multi-branch | [`AdaptiveNetStrategy`] |
//! | FedAvg (FA) | edge-cloud collaborative | [`FedAvgStrategy`] |
//! | HeteroFL (HFL) | edge-cloud collaborative | [`HeteroFlStrategy`] |
//! | Nebula | edge-cloud collaborative | [`NebulaStrategy`] |
//!
//! A strategy is *tracked-device* oriented: the experiment harness names
//! the devices that will be evaluated (the paper evaluates per-device
//! accuracy on local test sets), and strategies keep persistent per-device
//! state for exactly those — LA's private models, AN's adapted branches,
//! Nebula's edge clients — across time slots.

use crate::device::SimDevice;
use crate::faults::{
    apply_attack, attack_dense_mean, corrupt_frame, corrupt_module_update, forge_frame, poison_dense_mean,
    DeviceFate, RoundReport,
};
use crate::latency::adaptation_latency_ms;
use crate::network::{transfer_time_ms, CommTracker};
use crate::world::SimWorld;
use nebula_baselines::{
    fedavg_round_wire, heterofl_round_wire, local_adapt, ratio_for_budget, AdaptiveNet, DenseModel,
};
use nebula_core::{
    discount_staleness, plan_corrupt_resend, plan_upload, round_deadline_ms, EdgeAccumulator, EdgeClient,
    EdgeClientState, EdgePartial, EdgeUpdate, NebulaCloud, NebulaParams, RobustAggregator, RoundStats,
    SanitizePolicy, WireConfig, WireContext,
};
use nebula_data::Dataset;
use nebula_modular::ModularConfig;
use nebula_nn::Layer;
use nebula_telemetry::Telemetry;
use nebula_tensor::NebulaRng;
use nebula_wire::{CodecKind, DensePool};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// What one adaptation step cost. The fields formerly defined here were
/// merged with the per-round counters into [`RoundStats`] in
/// `nebula-core::stats`; this alias keeps old call sites compiling.
#[deprecated(note = "use RoundStats (defined in nebula-core, re-exported from nebula-sim)")]
pub type StepReport = RoundStats;

/// What one collaborative round produced under the fault plan.
#[derive(Clone, Copy, Debug, Default)]
pub struct RoundOutcome {
    /// The round's communication and robustness accounting.
    /// `stats.adapt_time_ms` stays 0 here: per-participant latency is a
    /// step-level estimate, not a per-round quantity.
    pub stats: RoundStats,
    /// Predicted synchronous round wall-clock, ms (capped at the deadline
    /// when one is set).
    pub round_time_ms: f64,
}

/// Static resource footprint of the model a device runs (Figs 8–9).
#[derive(Clone, Copy, Debug, Default)]
pub struct Footprint {
    pub params: u64,
    pub train_mem_bytes: u64,
    pub forward_flops: u64,
}

/// Hyper-parameters shared by all strategies (paper §6.1).
#[derive(Clone, Debug)]
pub struct StrategyConfig {
    pub modular: ModularConfig,
    /// Devices sampled per collaborative round (paper: 25).
    pub devices_per_round: usize,
    /// Collaborative rounds per adaptation step.
    pub rounds_per_step: usize,
    /// Local epochs per collaborative round (paper: 3).
    pub local_epochs: usize,
    /// Local epochs for pure on-device fine-tuning (paper: 10).
    pub finetune_epochs: usize,
    pub batch_size: usize,
    pub local_lr: f32,
    /// Pre-training epochs on the cloud proxy data.
    pub pretrain_epochs: usize,
    /// Proxy dataset size.
    pub proxy_samples: usize,
    /// Wire transport configuration for all module/model traffic. The
    /// default (`Raw`) is bit-identical to the analytic exchange; delta
    /// and int8 codecs shrink the *measured* bytes.
    pub wire: WireConfig,
    /// Module-wise combine rule applied behind the sanitize gate (Nebula
    /// only). The default `WeightedMean` is the paper's importance-weighted
    /// aggregation, bit-identical to the unparameterized path; the robust
    /// rules trade clean-run fidelity for Byzantine tolerance.
    pub aggregator: RobustAggregator,
    /// Hierarchical cloud→edge→device fan-out (DESIGN.md §14): the
    /// accepted cohort is folded at this many simulated edge servers
    /// (contiguous chunks in cohort order) and the cloud merges one
    /// partial per edge, in edge order. `None` keeps the flat
    /// direct-to-cloud path. Under `WeightedMean` each edge streams its
    /// chunk into a constant-memory accumulator, so the cloud-side cost
    /// is O(edges), not O(devices); robust rules buffer per edge and run
    /// the full sanitize gate + combine rule at the cloud, matching the
    /// flat trajectory exactly.
    ///
    /// Caveat: under `WeightedMean` the fold-time gate runs only the
    /// non-finite check — the cross-cohort norm-outlier rejection of
    /// [`SanitizePolicy::norm_outlier_ratio`] cannot run on a stream, so
    /// enabling the hierarchy weakens that defense relative to the flat
    /// path. Each bypassed accept is counted in
    /// `SanitizeReport::outlier_check_skipped` (telemetry counter
    /// `sanitize.outlier_check_skipped`).
    pub edge_groups: Option<usize>,
}

impl StrategyConfig {
    /// Defaults mirroring §6.1 with a laptop-scale round count.
    pub fn new(modular: ModularConfig) -> Self {
        Self {
            modular,
            devices_per_round: 25,
            rounds_per_step: 15,
            local_epochs: 3,
            finetune_epochs: 10,
            batch_size: 16,
            local_lr: 0.02,
            pretrain_epochs: 15,
            proxy_samples: 3000,
            wire: WireConfig::raw(),
            aggregator: RobustAggregator::WeightedMean,
            edge_groups: None,
        }
    }

    /// Per-device dense channel pool matching the configured wire codec
    /// (used by the flat-model baselines).
    fn dense_pool(&self) -> DensePool {
        DensePool::new(self.wire.codec, self.wire.delta_threshold)
    }

    /// Dense model matching the full modular capacity: each block's hidden
    /// width equals the modular layer's total module capacity.
    pub fn dense_model(&self, seed: u64) -> DenseModel {
        let m = &self.modular;
        let shrunk = if m.residual_module { m.modules_per_layer - 1 } else { m.modules_per_layer };
        DenseModel::new(
            m.input_dim,
            m.width,
            m.num_layers,
            (shrunk * m.module_hidden).max(1),
            m.classes,
            seed,
        )
    }
}

/// Approximate forward MACs of a dense model: one MAC per weight.
fn dense_forward_flops(model: &DenseModel) -> u64 {
    model.param_count() as u64
}

/// Mean per-participant adaptation latency over an evenly-spaced device
/// sample: local training plus the down+up transfer.
fn mean_participant_latency_ms(
    world: &SimWorld,
    forward_flops: u64,
    exchange_bytes: u64,
    epochs: usize,
    batch: usize,
) -> f64 {
    let n = world.num_devices();
    if n == 0 {
        return 0.0;
    }
    let samples = 8.min(n);
    let mut total = 0.0;
    for i in 0..samples {
        let dev = &world.devices[i * n / samples];
        total += adaptation_latency_ms(&dev.resources, forward_flops, dev.volume(), epochs, batch)
            + transfer_time_ms(exchange_bytes, dev.resources.bandwidth_bps);
    }
    total / samples as f64
}

fn dense_footprint(model: &DenseModel, ratio: f32) -> Footprint {
    let params = model.active_params(ratio) as u64;
    Footprint {
        params,
        // params + grads + momentum (matching the modular cost model).
        train_mem_bytes: 3 * params * 4,
        forward_flops: params,
    }
}

/// Serializable mutable state of a dense-model strategy (NA/FA/HFL):
/// the server/base parameters, stored as `f32::to_bits` words so the
/// JSON round trip is bit-exact even for non-finite values.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DenseState {
    /// `name()` of the exporting strategy, checked on import.
    pub name: String,
    pub param_bits: Vec<u32>,
}

/// Serializable state of one Nebula edge client.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClientState {
    pub id: usize,
    pub param_bits: Vec<u32>,
    pub active: Vec<Vec<usize>>,
    pub installed: Vec<Vec<usize>>,
}

/// Serializable mutable state of [`NebulaStrategy`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NebulaState {
    /// Full cloud model parameters (stem + module layers + head +
    /// unified selector), as bit patterns.
    pub cloud_param_bits: Vec<u32>,
    pub enhanced: bool,
    pub tracked: Vec<usize>,
    /// Edge clients sorted by device id (deterministic encoding).
    pub clients: Vec<ClientState>,
}

/// A strategy's exported run state (see [`AdaptStrategy::export_state`]).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum StrategyState {
    Dense(DenseState),
    Nebula(NebulaState),
}

fn bits_of(params: &[f32]) -> Vec<u32> {
    params.iter().map(|p| p.to_bits()).collect()
}

fn floats_of(bits: &[u32]) -> Vec<f32> {
    bits.iter().map(|&b| f32::from_bits(b)).collect()
}

/// Round-level telemetry shared by the collaborative strategies: fault
/// counters plus one `kind = "round"` event. One branch on a disarmed
/// handle.
fn note_round(t: &Telemetry, round: u64, comm: &CommTracker, report: &RoundReport, round_time_ms: f64) {
    if !t.enabled() {
        return;
    }
    t.counter_add("rounds", 1);
    t.counter_add("faults.dropped", report.dropped);
    t.counter_add("faults.crashed", report.crashed);
    t.counter_add("faults.deadline_dropped", report.deadline_dropped);
    t.counter_add("faults.link_dropped", report.link_dropped);
    t.counter_add("faults.rejected", report.rejected);
    t.counter_add("faults.retried", report.retried);
    t.counter_add("faults.stale", report.stale);
    t.counter_add("faults.rolled_back", report.rolled_back);
    t.counter_add("faults.corrupt_frames", report.corrupt_frames);
    t.observe("round.time_ms", round_time_ms);
    t.emit("round", |e| {
        e.ints.insert("index".into(), round);
        e.ints.insert("sampled".into(), report.sampled);
        e.ints.insert("participated".into(), report.participated);
        e.ints.insert("lost".into(), report.lost());
        e.ints.insert("rejected".into(), report.rejected);
        e.ints.insert("down_bytes".into(), comm.down_bytes);
        e.ints.insert("up_bytes".into(), comm.up_bytes);
        e.ints.insert("retry_bytes".into(), comm.retry_bytes);
        e.num.insert("round_time_ms".into(), round_time_ms);
    });
}

/// Per-device fate telemetry (`kind = "client"`). `time_ms` is the
/// simulated participant wall-clock when one was derived before the
/// device's fate resolved.
fn note_client(t: &Telemetry, device: usize, outcome: &'static str, time_ms: Option<f64>) {
    t.emit("client", |e| {
        e.ints.insert("device".into(), device as u64);
        e.text.insert("outcome".into(), outcome.into());
        if let Some(ms) = time_ms {
            e.num.insert("time_ms".into(), ms);
        }
    });
}

/// One adaptation system under test.
pub trait AdaptStrategy {
    /// Display name (matches the paper's table headers).
    fn name(&self) -> &'static str;

    /// Offline stage: pre-train on cloud proxy data.
    fn offline(&mut self, world: &mut SimWorld, rng: &mut NebulaRng);

    /// Registers the devices that will be evaluated; strategies keep
    /// persistent state for exactly these.
    fn track(&mut self, ids: &[usize]);

    /// Attaches a telemetry handle for the run (spans, metrics, event
    /// traces). Instrumentation must never feed back into the simulation:
    /// a disarmed handle and an armed one see identical RNG streams and
    /// identical results. Strategies without seams ignore it.
    fn set_telemetry(&mut self, _telemetry: Telemetry) {}

    /// Replaces the sanitize gate the cloud applies before aggregation.
    /// Strategies without a server-side gate ignore it.
    fn set_sanitize_policy(&mut self, _policy: SanitizePolicy) {}

    /// Selects the module-wise combine rule used at aggregation.
    /// Strategies without module-wise aggregation ignore it.
    fn set_aggregator(&mut self, _aggregator: RobustAggregator) {}

    /// Routes the per-round local training through a
    /// [`nebula_core::Transport`] (loopback executors or socket workers)
    /// instead of the inline in-process loop. Strategies without a
    /// dispatch seam ignore it. Collaborative strategies panic on a
    /// configuration the transport cannot reproduce bit-exactly (Nebula
    /// requires the stateless `Raw` codec).
    fn set_transport(&mut self, _transport: Box<dyn nebula_core::Transport>) {}

    /// One adaptation step (collaborative rounds and/or tracked-device
    /// local updates against the devices' *current* data).
    fn adaptation_step(&mut self, world: &mut SimWorld, rng: &mut NebulaRng) -> RoundStats;

    /// Personalized accuracy of tracked device `id` on its local test set.
    fn device_accuracy(&mut self, world: &mut SimWorld, id: usize) -> f32;

    /// Resource footprint of the model device `id` runs.
    fn footprint(&self, world: &SimWorld, id: usize) -> Footprint;

    /// Exports the strategy's full mutable state for a run snapshot, or
    /// `None` when the strategy cannot support deterministic resume
    /// (per-device state that is not captured, or a stateful wire codec
    /// whose residual/ack history is not reconstructible). The default
    /// opts out; strategies that support durability override it.
    fn export_state(&self) -> Option<StrategyState> {
        None
    }

    /// Restores state produced by [`Self::export_state`] into a freshly
    /// constructed strategy (same config and seed). Errors on any
    /// mismatch; the strategy may be partially modified on failure, so
    /// callers must discard it on error.
    fn import_state(&mut self, _state: &StrategyState) -> Result<(), String> {
        Err(format!("{} does not support state import", self.name()))
    }
}

/// Dense-strategy export shared by NA/FA/HFL.
fn dense_export(name: &str, model: &DenseModel) -> StrategyState {
    StrategyState::Dense(DenseState { name: name.to_string(), param_bits: bits_of(&model.param_vector()) })
}

/// Dense-strategy import shared by NA/FA/HFL.
fn dense_import(name: &str, model: &mut DenseModel, state: &StrategyState) -> Result<(), String> {
    let StrategyState::Dense(d) = state else {
        return Err(format!("{name}: expected dense strategy state"));
    };
    if d.name != name {
        return Err(format!("state belongs to strategy {}, not {name}", d.name));
    }
    if d.param_bits.len() != model.param_count() {
        return Err(format!(
            "{name}: state has {} params, model wants {}",
            d.param_bits.len(),
            model.param_count()
        ));
    }
    model.load_param_vector(&floats_of(&d.param_bits));
    Ok(())
}

// ---------------------------------------------------------------------------
// No Adaptation
// ---------------------------------------------------------------------------

/// The pre-trained cloud model used as-is on every device.
pub struct NoAdaptStrategy {
    cfg: StrategyConfig,
    model: DenseModel,
}

impl NoAdaptStrategy {
    pub fn new(cfg: StrategyConfig, seed: u64) -> Self {
        let model = cfg.dense_model(seed);
        Self { cfg, model }
    }
}

impl AdaptStrategy for NoAdaptStrategy {
    fn name(&self) -> &'static str {
        "NA"
    }

    fn offline(&mut self, world: &mut SimWorld, rng: &mut NebulaRng) {
        let proxy = world.proxy(self.cfg.proxy_samples);
        let mut opt = nebula_nn::Sgd::with_momentum(0.05, 0.9);
        nebula_data::train_epochs(
            &mut self.model,
            &mut opt,
            &proxy,
            nebula_data::TrainConfig {
                epochs: self.cfg.pretrain_epochs,
                batch_size: 32,
                clip_norm: Some(5.0),
            },
            rng,
        );
    }

    fn track(&mut self, _ids: &[usize]) {}

    fn adaptation_step(&mut self, _world: &mut SimWorld, _rng: &mut NebulaRng) -> RoundStats {
        RoundStats::default()
    }

    fn device_accuracy(&mut self, world: &mut SimWorld, id: usize) -> f32 {
        nebula_data::evaluate_accuracy(&mut self.model, &world.devices[id].test, 64)
    }

    fn footprint(&self, _world: &SimWorld, _id: usize) -> Footprint {
        dense_footprint(&self.model, 1.0)
    }

    fn export_state(&self) -> Option<StrategyState> {
        Some(dense_export("NA", &self.model))
    }

    fn import_state(&mut self, state: &StrategyState) -> Result<(), String> {
        dense_import("NA", &mut self.model, state)
    }
}

// ---------------------------------------------------------------------------
// Local Adaptation
// ---------------------------------------------------------------------------

/// Each tracked device fine-tunes a private full-model copy on its fresh
/// local data every step.
pub struct LocalAdaptStrategy {
    cfg: StrategyConfig,
    base: DenseModel,
    device_models: HashMap<usize, DenseModel>,
    tracked: Vec<usize>,
}

impl LocalAdaptStrategy {
    pub fn new(cfg: StrategyConfig, seed: u64) -> Self {
        let base = cfg.dense_model(seed);
        Self { cfg, base, device_models: HashMap::new(), tracked: Vec::new() }
    }
}

impl AdaptStrategy for LocalAdaptStrategy {
    fn name(&self) -> &'static str {
        "LA"
    }

    fn offline(&mut self, world: &mut SimWorld, rng: &mut NebulaRng) {
        let proxy = world.proxy(self.cfg.proxy_samples);
        let mut opt = nebula_nn::Sgd::with_momentum(0.05, 0.9);
        nebula_data::train_epochs(
            &mut self.base,
            &mut opt,
            &proxy,
            nebula_data::TrainConfig {
                epochs: self.cfg.pretrain_epochs,
                batch_size: 32,
                clip_norm: Some(5.0),
            },
            rng,
        );
    }

    fn track(&mut self, ids: &[usize]) {
        self.tracked = ids.to_vec();
    }

    fn adaptation_step(&mut self, world: &mut SimWorld, rng: &mut NebulaRng) -> RoundStats {
        let mut time_ms = 0.0;
        for &id in &self.tracked.clone() {
            let model = self.device_models.entry(id).or_insert_with(|| self.base.deep_clone());
            let dev = &world.devices[id];
            let mut drng = rng.fork(id as u64);
            local_adapt(
                model,
                &dev.partition.data,
                self.cfg.finetune_epochs,
                self.cfg.batch_size,
                self.cfg.local_lr,
                &mut drng,
            );
            time_ms += adaptation_latency_ms(
                &dev.resources,
                dense_forward_flops(model),
                dev.volume(),
                self.cfg.finetune_epochs,
                self.cfg.batch_size,
            );
        }
        RoundStats {
            comm: CommTracker::new(),
            adapt_time_ms: time_ms / self.tracked.len().max(1) as f64,
            faults: RoundReport::default(),
        }
    }

    fn device_accuracy(&mut self, world: &mut SimWorld, id: usize) -> f32 {
        let model = self.device_models.entry(id).or_insert_with(|| self.base.deep_clone());
        nebula_data::evaluate_accuracy(model, &world.devices[id].test, 64)
    }

    fn footprint(&self, _world: &SimWorld, _id: usize) -> Footprint {
        dense_footprint(&self.base, 1.0)
    }
}

// ---------------------------------------------------------------------------
// AdaptiveNet-style
// ---------------------------------------------------------------------------

/// Multi-branch supernet; each tracked device adapts its selected branch
/// locally.
pub struct AdaptiveNetStrategy {
    cfg: StrategyConfig,
    an: AdaptiveNet,
    device_models: HashMap<usize, DenseModel>,
    tracked: Vec<usize>,
    /// Per-device wire channels: the one-time branch download is a real
    /// measured frame (AdaptiveNet never uploads).
    pool: DensePool,
}

impl AdaptiveNetStrategy {
    pub fn new(cfg: StrategyConfig, seed: u64) -> Self {
        let an = AdaptiveNet::new(cfg.dense_model(seed));
        let pool = cfg.dense_pool();
        Self { cfg, an, device_models: HashMap::new(), tracked: Vec::new(), pool }
    }

    fn branch_for(&self, dev: &SimDevice) -> f32 {
        let budget = (self.an.supernet().param_count() as f64 * dev.resources.budget_ratio as f64) as usize;
        self.an.select_branch(budget)
    }

    /// Ensures device `id` holds its branch model, downloading it over the
    /// wire on first contact. Returns the measured frame bytes (0 when the
    /// device already has its branch).
    fn ensure_branch(&mut self, id: usize, ratio: f32) -> u64 {
        if self.device_models.contains_key(&id) {
            return 0;
        }
        let (model, bytes) = self.an.branch_model_wire(ratio, id as u64, &mut self.pool);
        self.device_models.insert(id, model);
        bytes
    }
}

impl AdaptStrategy for AdaptiveNetStrategy {
    fn name(&self) -> &'static str {
        "AN"
    }

    fn offline(&mut self, world: &mut SimWorld, rng: &mut NebulaRng) {
        let proxy = world.proxy(self.cfg.proxy_samples);
        // Sandwich training is 3× the work per epoch; keep wall-clock
        // comparable to the single-branch baselines.
        let epochs = (self.cfg.pretrain_epochs / 2).max(1);
        self.an.pretrain(&proxy, epochs, 32, 0.05, rng);
    }

    fn track(&mut self, ids: &[usize]) {
        self.tracked = ids.to_vec();
    }

    fn adaptation_step(&mut self, world: &mut SimWorld, rng: &mut NebulaRng) -> RoundStats {
        let mut time_ms = 0.0;
        let mut comm = CommTracker::new();
        for &id in &self.tracked.clone() {
            let ratio = self.branch_for(&world.devices[id]);
            let bytes = self.ensure_branch(id, ratio);
            if bytes > 0 {
                comm.record_download(bytes);
                time_ms += transfer_time_ms(bytes, world.devices[id].resources.bandwidth_bps);
            }
            let model = self.device_models.get_mut(&id).expect("branch just ensured");
            let dev = &world.devices[id];
            let mut drng = rng.fork(id as u64 ^ 0xA0A0);
            local_adapt(
                model,
                &dev.partition.data,
                self.cfg.finetune_epochs,
                self.cfg.batch_size,
                self.cfg.local_lr,
                &mut drng,
            );
            time_ms += adaptation_latency_ms(
                &dev.resources,
                model.active_params(model.width_ratio()) as u64,
                dev.volume(),
                self.cfg.finetune_epochs,
                self.cfg.batch_size,
            );
        }
        RoundStats {
            comm,
            adapt_time_ms: time_ms / self.tracked.len().max(1) as f64,
            faults: RoundReport::default(),
        }
    }

    fn device_accuracy(&mut self, world: &mut SimWorld, id: usize) -> f32 {
        let ratio = self.branch_for(&world.devices[id]);
        self.ensure_branch(id, ratio);
        let model = self.device_models.get_mut(&id).expect("branch just ensured");
        nebula_data::evaluate_accuracy(model, &world.devices[id].test, 64)
    }

    fn footprint(&self, world: &SimWorld, id: usize) -> Footprint {
        let ratio = self.branch_for(&world.devices[id]);
        dense_footprint(self.an.supernet(), ratio)
    }
}

// ---------------------------------------------------------------------------
// FedAvg
// ---------------------------------------------------------------------------

/// Classic federated averaging of the full dense model.
pub struct FedAvgStrategy {
    cfg: StrategyConfig,
    server: DenseModel,
    /// Per-device wire channels; all model traffic moves as real frames.
    pool: DensePool,
    /// Optional dispatch transport; `None` trains in-process.
    transport: Option<Box<dyn nebula_core::Transport>>,
    telemetry: Telemetry,
}

impl FedAvgStrategy {
    pub fn new(cfg: StrategyConfig, seed: u64) -> Self {
        let server = cfg.dense_model(seed);
        let pool = cfg.dense_pool();
        Self { cfg, server, pool, transport: None, telemetry: Telemetry::off() }
    }

    /// One communication round (used by the rounds-to-target driver),
    /// under the world's fault plan and round policy.
    ///
    /// FedAvg has no per-update gate: a corrupted client poisons the
    /// averaged weights themselves ([`poison_dense_mean`]) — the contrast
    /// the fault sweep measures against Nebula's sanitize gate.
    pub fn single_round(&mut self, world: &mut SimWorld, rng: &mut NebulaRng) -> RoundOutcome {
        let telemetry = self.telemetry.clone();
        let mut round_span = telemetry.span("round");
        let ids = world.sample_participants(self.cfg.devices_per_round);
        let round = world.next_round_index();
        round_span.int("index", round);
        let plan = world.faults;
        let policy = world.policy;
        let mut comm = CommTracker::new();
        let mut report = RoundReport { sampled: ids.len() as u64, ..Default::default() };
        let payload_bytes = (self.server.param_count() * 4) as u64;
        let flops = dense_forward_flops(&self.server);

        let mut meta: Vec<(usize, DeviceFate, f64)> = Vec::with_capacity(ids.len());
        for &id in &ids {
            let fate = plan.fate(round, id);
            if fate.dropped {
                report.dropped += 1;
                continue;
            }
            let up = plan_upload(fate.upload_attempts, fate.flaky_link, policy.retry_policy());
            for _ in 0..up.resends {
                comm.record_retry(payload_bytes);
            }
            report.retried += up.resends as u64;
            if !up.delivered {
                report.link_dropped += 1;
                continue;
            }
            let mut backoff = up.backoff_ms;
            let mut resends = up.resends as u64;
            // Transit corruption on the upload frame: CRC-rejected, one
            // clean resend. Without a retry budget the device is lost.
            if fate.frame_corrupt {
                report.corrupt_frames += 1;
                comm.record_retry(payload_bytes);
                let Some(wait) = plan_corrupt_resend(up.resends, policy.retry_policy()) else {
                    report.link_dropped += 1;
                    continue;
                };
                report.retried += 1;
                resends += 1;
                backoff += wait;
            }
            let dev = &world.devices[id];
            let bw = dev.resources.bandwidth_bps * fate.bandwidth_factor;
            let time_ms = adaptation_latency_ms(
                &dev.resources,
                flops,
                dev.volume(),
                self.cfg.local_epochs,
                self.cfg.batch_size,
            ) * fate.slowdown
                + transfer_time_ms(2 * payload_bytes + resends * payload_bytes, bw)
                + backoff;
            meta.push((id, fate, time_ms));
        }

        let times: Vec<f64> = meta.iter().map(|m| m.2).collect();
        let deadline = round_deadline_ms(policy.deadline_factor, &times);
        let mut trainers: Vec<usize> = Vec::with_capacity(meta.len());
        let mut n_corrupt = 0usize;
        let mut n_malicious = 0usize;
        let mut round_time_ms = 0.0f64;
        for (id, fate, time_ms) in meta {
            if let Some(d) = deadline {
                if time_ms > d {
                    report.deadline_dropped += 1;
                    round_time_ms = round_time_ms.max(d);
                    continue;
                }
            }
            if fate.crashed {
                // Received the global model (a real measured frame on its
                // download channel), died before uploading.
                let mut scratch = Vec::new();
                let bytes = self
                    .pool
                    .send_down(id as u64, &self.server.param_vector(), &mut scratch)
                    .expect("pristine in-process frame must decode");
                comm.record_download(bytes);
                report.crashed += 1;
                continue;
            }
            round_time_ms = round_time_ms.max(time_ms);
            if fate.corruption.is_some() {
                n_corrupt += 1;
            }
            if fate.malicious.is_some() {
                n_malicious += 1;
            }
            trainers.push(id);
        }
        report.participated = trainers.len() as u64;

        if !trainers.is_empty() {
            let data: Vec<&Dataset> = trainers.iter().map(|&i| &world.devices[i].partition.data).collect();
            let ids_u64: Vec<u64> = trainers.iter().map(|&i| i as u64).collect();
            let (wb, lost) = match self.transport.as_deref_mut() {
                Some(t) => {
                    let out = nebula_baselines::fedavg_round_transport(
                        &mut self.server,
                        &data,
                        &ids_u64,
                        &mut self.pool,
                        self.cfg.local_epochs,
                        self.cfg.batch_size,
                        self.cfg.local_lr,
                        rng,
                        round as usize,
                        t,
                    );
                    (out.bytes, out.lost)
                }
                None => (
                    fedavg_round_wire(
                        &mut self.server,
                        &data,
                        &ids_u64,
                        &mut self.pool,
                        self.cfg.local_epochs,
                        self.cfg.batch_size,
                        self.cfg.local_lr,
                        rng,
                    ),
                    0,
                ),
            };
            // Jobs the transport lost (worker crash/deadline) degrade the
            // round like dropped links; in-process rounds never lose any.
            report.link_dropped += lost;
            report.participated = report.participated.saturating_sub(lost);
            comm.down_bytes = comm.down_bytes.saturating_add(wb.down);
            comm.up_bytes = comm.up_bytes.saturating_add(wb.up);
            comm.downloads = comm.downloads.saturating_add(trainers.len() as u64);
            comm.uploads = comm.uploads.saturating_add(trainers.len() as u64 - lost);
            if n_corrupt > 0 {
                let mut params = self.server.param_vector();
                poison_dense_mean(
                    &mut params,
                    plan.corruption,
                    plan.explode_scale,
                    n_corrupt as f32 / trainers.len() as f32,
                    plan.seed ^ (round << 20),
                );
                self.server.load_param_vector(&params);
            }
            if n_malicious > 0 {
                // No per-update gate and no robust combine: the Byzantine
                // cohort's attacked mean lands on the server weights.
                let mut params = self.server.param_vector();
                attack_dense_mean(
                    &mut params,
                    &plan.adversary,
                    n_malicious as f32 / trainers.len() as f32,
                    plan.adversary.attack_seed(round, usize::MAX),
                );
                self.server.load_param_vector(&params);
            }
        }
        comm.end_round();
        note_round(&telemetry, round, &comm, &report, round_time_ms);
        round_span.num("time_ms", round_time_ms);
        RoundOutcome { stats: RoundStats { comm, adapt_time_ms: 0.0, faults: report }, round_time_ms }
    }
}

impl AdaptStrategy for FedAvgStrategy {
    fn name(&self) -> &'static str {
        "FA"
    }

    fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    fn set_transport(&mut self, transport: Box<dyn nebula_core::Transport>) {
        self.transport = Some(transport);
    }

    fn offline(&mut self, world: &mut SimWorld, rng: &mut NebulaRng) {
        let proxy = world.proxy(self.cfg.proxy_samples);
        let mut opt = nebula_nn::Sgd::with_momentum(0.05, 0.9);
        nebula_data::train_epochs(
            &mut self.server,
            &mut opt,
            &proxy,
            nebula_data::TrainConfig {
                epochs: self.cfg.pretrain_epochs,
                batch_size: 32,
                clip_norm: Some(5.0),
            },
            rng,
        );
    }

    fn track(&mut self, _ids: &[usize]) {}

    fn adaptation_step(&mut self, world: &mut SimWorld, rng: &mut NebulaRng) -> RoundStats {
        let mut stats = RoundStats::default();
        for _ in 0..self.cfg.rounds_per_step {
            stats.merge(&self.single_round(world, rng).stats);
        }
        // Per-participant local-training + transfer latency, averaged over
        // an evenly-spaced device sample (a single device's hardware would
        // bias the estimate).
        let flops = dense_forward_flops(&self.server);
        let bytes = 2 * (self.server.param_count() * 4) as u64;
        let time_ms =
            mean_participant_latency_ms(world, flops, bytes, self.cfg.local_epochs, self.cfg.batch_size);
        RoundStats { adapt_time_ms: time_ms, ..stats }
    }

    fn device_accuracy(&mut self, world: &mut SimWorld, id: usize) -> f32 {
        nebula_data::evaluate_accuracy(&mut self.server, &world.devices[id].test, 64)
    }

    fn footprint(&self, _world: &SimWorld, _id: usize) -> Footprint {
        dense_footprint(&self.server, 1.0)
    }

    fn export_state(&self) -> Option<StrategyState> {
        // Delta/int8 dense channels carry baseline and error-feedback
        // history that a snapshot does not capture; only Raw resumes
        // bit-identically.
        (self.cfg.wire.codec == CodecKind::Raw).then(|| dense_export("FA", &self.server))
    }

    fn import_state(&mut self, state: &StrategyState) -> Result<(), String> {
        if self.cfg.wire.codec != CodecKind::Raw {
            return Err("FA: state import requires the Raw wire codec".to_string());
        }
        dense_import("FA", &mut self.server, state)
    }
}

// ---------------------------------------------------------------------------
// HeteroFL
// ---------------------------------------------------------------------------

/// Resource-aware FL over nested width-scaled sub-models.
pub struct HeteroFlStrategy {
    cfg: StrategyConfig,
    server: DenseModel,
    /// Per-device wire channels carrying each device's active slice.
    pool: DensePool,
    /// Optional dispatch transport; `None` trains in-process.
    transport: Option<Box<dyn nebula_core::Transport>>,
    telemetry: Telemetry,
}

impl HeteroFlStrategy {
    pub fn new(cfg: StrategyConfig, seed: u64) -> Self {
        let server = cfg.dense_model(seed);
        let pool = cfg.dense_pool();
        Self { cfg, server, pool, transport: None, telemetry: Telemetry::off() }
    }

    fn ratio_for(&self, dev: &SimDevice) -> f32 {
        let budget = (self.server.param_count() as f64 * dev.resources.budget_ratio as f64) as usize;
        ratio_for_budget(&self.server, budget)
    }

    /// One communication round (used by the rounds-to-target driver),
    /// under the world's fault plan and round policy.
    ///
    /// Like FedAvg, HeteroFL has no per-update gate: corrupted clients
    /// poison the width-wise averaged weights ([`poison_dense_mean`]).
    pub fn single_round(&mut self, world: &mut SimWorld, rng: &mut NebulaRng) -> RoundOutcome {
        let telemetry = self.telemetry.clone();
        let mut round_span = telemetry.span("round");
        let ids = world.sample_participants(self.cfg.devices_per_round);
        let round = world.next_round_index();
        round_span.int("index", round);
        let plan = world.faults;
        let policy = world.policy;
        let mut comm = CommTracker::new();
        let mut report = RoundReport { sampled: ids.len() as u64, ..Default::default() };

        let mut meta: Vec<(usize, DeviceFate, f64)> = Vec::with_capacity(ids.len());
        for &id in &ids {
            let fate = plan.fate(round, id);
            if fate.dropped {
                report.dropped += 1;
                continue;
            }
            let ratio = self.ratio_for(&world.devices[id]);
            // Each device exchanges its own width-scaled sub-model.
            let payload_bytes = (self.server.active_params(ratio) * 4) as u64;
            let up = plan_upload(fate.upload_attempts, fate.flaky_link, policy.retry_policy());
            for _ in 0..up.resends {
                comm.record_retry(payload_bytes);
            }
            report.retried += up.resends as u64;
            if !up.delivered {
                report.link_dropped += 1;
                continue;
            }
            let mut backoff = up.backoff_ms;
            let mut resends = up.resends as u64;
            // Transit corruption on the upload frame: CRC-rejected, one
            // clean resend. Without a retry budget the device is lost.
            if fate.frame_corrupt {
                report.corrupt_frames += 1;
                comm.record_retry(payload_bytes);
                let Some(wait) = plan_corrupt_resend(up.resends, policy.retry_policy()) else {
                    report.link_dropped += 1;
                    continue;
                };
                report.retried += 1;
                resends += 1;
                backoff += wait;
            }
            let dev = &world.devices[id];
            let bw = dev.resources.bandwidth_bps * fate.bandwidth_factor;
            let time_ms = adaptation_latency_ms(
                &dev.resources,
                self.server.active_params(ratio) as u64,
                dev.volume(),
                self.cfg.local_epochs,
                self.cfg.batch_size,
            ) * fate.slowdown
                + transfer_time_ms(2 * payload_bytes + resends * payload_bytes, bw)
                + backoff;
            meta.push((id, fate, time_ms));
        }

        let times: Vec<f64> = meta.iter().map(|m| m.2).collect();
        let deadline = round_deadline_ms(policy.deadline_factor, &times);
        let mut trainers: Vec<usize> = Vec::with_capacity(meta.len());
        let mut n_corrupt = 0usize;
        let mut n_malicious = 0usize;
        let mut round_time_ms = 0.0f64;
        for (id, fate, time_ms) in meta {
            if let Some(d) = deadline {
                if time_ms > d {
                    report.deadline_dropped += 1;
                    round_time_ms = round_time_ms.max(d);
                    continue;
                }
            }
            if fate.crashed {
                // Received its active slice as a real measured frame,
                // died before uploading.
                let ratio = self.ratio_for(&world.devices[id]);
                let params = self.server.param_vector();
                let mask = self.server.mask_for_ratio(ratio);
                let slice: Vec<f32> =
                    params.iter().zip(&mask).filter_map(|(&v, &m)| m.then_some(v)).collect();
                let mut scratch = Vec::new();
                let bytes = self
                    .pool
                    .send_down(id as u64, &slice, &mut scratch)
                    .expect("pristine in-process frame must decode");
                comm.record_download(bytes);
                report.crashed += 1;
                continue;
            }
            round_time_ms = round_time_ms.max(time_ms);
            if fate.corruption.is_some() {
                n_corrupt += 1;
            }
            if fate.malicious.is_some() {
                n_malicious += 1;
            }
            trainers.push(id);
        }
        report.participated = trainers.len() as u64;

        if !trainers.is_empty() {
            let data: Vec<&Dataset> = trainers.iter().map(|&i| &world.devices[i].partition.data).collect();
            let ratios: Vec<f32> = trainers.iter().map(|&i| self.ratio_for(&world.devices[i])).collect();
            let ids_u64: Vec<u64> = trainers.iter().map(|&i| i as u64).collect();
            let (wb, lost) = match self.transport.as_deref_mut() {
                Some(t) => {
                    let out = nebula_baselines::heterofl_round_transport(
                        &mut self.server,
                        &data,
                        &ratios,
                        &ids_u64,
                        &mut self.pool,
                        self.cfg.local_epochs,
                        self.cfg.batch_size,
                        self.cfg.local_lr,
                        rng,
                        round as usize,
                        t,
                    );
                    (out.bytes, out.lost)
                }
                None => (
                    heterofl_round_wire(
                        &mut self.server,
                        &data,
                        &ratios,
                        &ids_u64,
                        &mut self.pool,
                        self.cfg.local_epochs,
                        self.cfg.batch_size,
                        self.cfg.local_lr,
                        rng,
                    ),
                    0,
                ),
            };
            // Jobs the transport lost (worker crash/deadline) degrade the
            // round like dropped links; in-process rounds never lose any.
            report.link_dropped += lost;
            report.participated = report.participated.saturating_sub(lost);
            comm.down_bytes = comm.down_bytes.saturating_add(wb.down);
            comm.up_bytes = comm.up_bytes.saturating_add(wb.up);
            comm.downloads = comm.downloads.saturating_add(trainers.len() as u64);
            comm.uploads = comm.uploads.saturating_add(trainers.len() as u64 - lost);
            if n_corrupt > 0 {
                let mut params = self.server.param_vector();
                poison_dense_mean(
                    &mut params,
                    plan.corruption,
                    plan.explode_scale,
                    n_corrupt as f32 / trainers.len() as f32,
                    plan.seed ^ (round << 20),
                );
                self.server.load_param_vector(&params);
            }
            if n_malicious > 0 {
                // Like FedAvg: no gate, no robust combine — the attacked
                // width-wise mean lands on the server weights.
                let mut params = self.server.param_vector();
                attack_dense_mean(
                    &mut params,
                    &plan.adversary,
                    n_malicious as f32 / trainers.len() as f32,
                    plan.adversary.attack_seed(round, usize::MAX),
                );
                self.server.load_param_vector(&params);
            }
        }
        comm.end_round();
        note_round(&telemetry, round, &comm, &report, round_time_ms);
        round_span.num("time_ms", round_time_ms);
        RoundOutcome { stats: RoundStats { comm, adapt_time_ms: 0.0, faults: report }, round_time_ms }
    }
}

impl AdaptStrategy for HeteroFlStrategy {
    fn name(&self) -> &'static str {
        "HFL"
    }

    fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    fn set_transport(&mut self, transport: Box<dyn nebula_core::Transport>) {
        self.transport = Some(transport);
    }

    fn offline(&mut self, world: &mut SimWorld, rng: &mut NebulaRng) {
        let proxy = world.proxy(self.cfg.proxy_samples);
        let mut opt = nebula_nn::Sgd::with_momentum(0.05, 0.9);
        nebula_data::train_epochs(
            &mut self.server,
            &mut opt,
            &proxy,
            nebula_data::TrainConfig {
                epochs: self.cfg.pretrain_epochs,
                batch_size: 32,
                clip_norm: Some(5.0),
            },
            rng,
        );
    }

    fn track(&mut self, _ids: &[usize]) {}

    fn adaptation_step(&mut self, world: &mut SimWorld, rng: &mut NebulaRng) -> RoundStats {
        let mut stats = RoundStats::default();
        for _ in 0..self.cfg.rounds_per_step {
            stats.merge(&self.single_round(world, rng).stats);
        }
        // Mean over a device sample, each at its own width level.
        let mut time_ms = 0.0;
        let ids: Vec<usize> = (0..8.min(world.num_devices()))
            .map(|i| i * world.num_devices() / 8.min(world.num_devices()))
            .collect();
        for &id in &ids {
            let dev = &world.devices[id];
            let ratio = self.ratio_for(dev);
            let flops = self.server.active_params(ratio) as u64;
            time_ms += adaptation_latency_ms(
                &dev.resources,
                flops,
                dev.volume(),
                self.cfg.local_epochs,
                self.cfg.batch_size,
            ) + transfer_time_ms(
                2 * (self.server.active_params(ratio) * 4) as u64,
                dev.resources.bandwidth_bps,
            );
        }
        time_ms /= ids.len().max(1) as f64;
        RoundStats { adapt_time_ms: time_ms, ..stats }
    }

    fn device_accuracy(&mut self, world: &mut SimWorld, id: usize) -> f32 {
        // The device serves the sub-model its resources allow.
        let ratio = self.ratio_for(&world.devices[id]);
        let mut local = self.server.deep_clone();
        local.set_width_ratio(ratio);
        nebula_data::evaluate_accuracy(&mut local, &world.devices[id].test, 64)
    }

    fn footprint(&self, world: &SimWorld, id: usize) -> Footprint {
        dense_footprint(&self.server, self.ratio_for(&world.devices[id]))
    }

    fn export_state(&self) -> Option<StrategyState> {
        (self.cfg.wire.codec == CodecKind::Raw).then(|| dense_export("HFL", &self.server))
    }

    fn import_state(&mut self, state: &StrategyState) -> Result<(), String> {
        if self.cfg.wire.codec != CodecKind::Raw {
            return Err("HFL: state import requires the Raw wire codec".to_string());
        }
        dense_import("HFL", &mut self.server, state)
    }
}

// ---------------------------------------------------------------------------
// Nebula
// ---------------------------------------------------------------------------

/// Which parts of the Nebula pipeline run (the Fig. 10 variants).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NebulaVariant {
    /// Full framework: collaborative rounds + per-device derivation +
    /// local fine-tuning.
    Full,
    /// "Nebula w/o local training": devices query the cloud for fresh
    /// sub-models each step but never fine-tune locally.
    NoLocalTraining,
    /// "Nebula w/o cloud": devices query the cloud once, then adapt only
    /// locally.
    NoCloud,
}

/// The full Nebula framework.
pub struct NebulaStrategy {
    cfg: StrategyConfig,
    cloud: NebulaCloud,
    variant: NebulaVariant,
    clients: HashMap<usize, EdgeClient>,
    tracked: Vec<usize>,
    enhanced: bool,
    /// Sanitize gate the cloud applies to every round's updates.
    sanitize: SanitizePolicy,
    /// Module-wise combine rule applied behind the gate.
    aggregator: RobustAggregator,
    /// Checkpoint-rollback guard: probe dataset + max tolerated accuracy
    /// drop per aggregation. Off by default.
    rollback: Option<(Dataset, f32)>,
    /// Module transport: registry, codecs and per-device residual state.
    wire: WireContext,
    /// Reusable frame buffer for all encode/decode round trips.
    frame_buf: Vec<u8>,
    /// Optional dispatch transport for the round's local training;
    /// `None` trains in-process (the historical path, bit-identical).
    transport: Option<Box<dyn nebula_core::Transport>>,
    telemetry: Telemetry,
}

impl NebulaStrategy {
    pub fn new(cfg: StrategyConfig, seed: u64) -> Self {
        Self::with_variant(cfg, seed, NebulaVariant::Full)
    }

    pub fn with_variant(cfg: StrategyConfig, seed: u64, variant: NebulaVariant) -> Self {
        let mut params = NebulaParams::default();
        params.pretrain.epochs = cfg.pretrain_epochs;
        params.local_epochs = cfg.local_epochs;
        params.batch_size = cfg.batch_size;
        params.local_lr = cfg.local_lr;
        let cloud = NebulaCloud::new(cfg.modular.clone(), params, seed);
        let wire = WireContext::new(cfg.wire);
        let aggregator = cfg.aggregator;
        Self {
            cfg,
            cloud,
            variant,
            clients: HashMap::new(),
            tracked: Vec::new(),
            enhanced: false,
            sanitize: SanitizePolicy::default(),
            aggregator,
            rollback: None,
            wire,
            frame_buf: Vec::new(),
            transport: None,
            telemetry: Telemetry::off(),
        }
    }

    /// Read access to the cloud (diagnostics, sub-model studies).
    pub fn cloud(&self) -> &NebulaCloud {
        &self.cloud
    }

    /// Mutable cloud access.
    pub fn cloud_mut(&mut self) -> &mut NebulaCloud {
        &mut self.cloud
    }

    /// Replaces the sanitize gate's policy (testing/ablation hook).
    pub fn set_sanitize_policy(&mut self, policy: SanitizePolicy) {
        self.sanitize = policy;
    }

    /// Selects the module-wise combine rule applied behind the gate.
    pub fn set_aggregator(&mut self, aggregator: RobustAggregator) {
        self.aggregator = aggregator;
    }

    /// Arms the checkpoint-rollback guard: every aggregation is probed on
    /// `probe` and undone if accuracy regresses by more than `max_drop`.
    pub fn enable_rollback(&mut self, probe: Dataset, max_drop: f32) {
        self.rollback = Some((probe, max_drop));
    }

    /// Disarms the rollback guard.
    pub fn disable_rollback(&mut self) {
        self.rollback = None;
    }

    /// One collaborative round: sample devices, derive/dispatch/train/
    /// aggregate — under the world's fault plan and round policy.
    ///
    /// Derivation/dispatch happen sequentially (they read the shared cloud
    /// model); the expensive per-device local training runs in parallel
    /// with pre-forked RNG streams, so results are identical for any
    /// rayon thread count. Fault fates come from the plan's dedicated RNG,
    /// so with [`crate::faults::FaultPlan::none`] this round is bit-for-bit
    /// identical to a fault-free build.
    pub fn single_round(&mut self, world: &mut SimWorld, rng: &mut NebulaRng) -> RoundOutcome {
        use rayon::prelude::*;

        let telemetry = self.telemetry.clone();
        let mut round_span = telemetry.span("round");
        let ids = world.sample_participants(self.cfg.devices_per_round);
        let round = world.next_round_index();
        round_span.int("index", round);
        let plan = world.faults;
        let policy = world.policy;
        let mut comm = CommTracker::new();
        let mut report = RoundReport { sampled: ids.len() as u64, ..Default::default() };
        // Per-layer module-activation counts of this round's accepted
        // updates (telemetry only; empty when disarmed).
        let mut round_loads: Vec<Vec<u64>> = if telemetry.enabled() {
            vec![vec![0u64; self.cfg.modular.modules_per_layer]; self.cfg.modular.num_layers]
        } else {
            Vec::new()
        };

        // Baselines for this round's wire traffic (no-op for non-delta
        // codecs).
        self.wire.commit_model(self.cloud.model());

        // Sequential phase: fates, derivation, dispatch, downloads. Each
        // download is encoded into a real frame and the *decoded* payload
        // is what the device trains from; the tracker records the measured
        // frame length, while the latency model keeps the analytic
        // planning size (so `Raw` rounds stay bit-identical).
        let mut jobs = Vec::with_capacity(ids.len());
        let mut meta: Vec<(usize, DeviceFate, f64)> = Vec::with_capacity(ids.len());
        for &id in &ids {
            let mut client_span = telemetry.span("client");
            client_span.int("device", id as u64);
            let fate = plan.fate(round, id);
            if fate.dropped {
                report.dropped += 1;
                note_client(&telemetry, id, "dropped", None);
                continue;
            }
            let (profile, local);
            {
                let dev = &world.devices[id];
                profile = dev.profile(self.cloud.cost_model());
                local = dev.partition.data.clone();
            }
            let outcome = self.cloud.derive_for_data(&local, &profile, None);
            let payload = self.cloud.dispatch(&outcome.spec);
            let plan_bytes = payload.bytes();
            let up = plan_upload(fate.upload_attempts, fate.flaky_link, policy.retry_policy());
            if !up.delivered {
                // Retries exhausted: the device never joins the round (and
                // never receives a frame, so its wire state stays cold).
                for _ in 0..up.resends {
                    comm.record_retry(plan_bytes);
                }
                report.retried += up.resends as u64;
                report.link_dropped += 1;
                note_client(&telemetry, id, "link_dropped", None);
                continue;
            }
            let wire_span = telemetry.span("wire_tx");
            let wire_bytes = self.wire.encode_payload(id as u64, &payload, &mut self.frame_buf) as u64;
            comm.record_download(wire_bytes);
            let payload = match self.wire.decode_payload(id as u64, &self.frame_buf) {
                Ok(p) => p,
                Err(_) => {
                    // Defensive: a pristine in-process frame always decodes.
                    report.link_dropped += 1;
                    note_client(&telemetry, id, "link_dropped", None);
                    continue;
                }
            };
            drop(wire_span);
            let extra = up.resends;
            let backoff = up.backoff_ms;
            for _ in 0..extra {
                comm.record_retry(wire_bytes);
            }
            report.retried += extra as u64;
            // Predicted participant wall-clock: local training under the
            // injected slowdown, plus transfers (and retry re-sends) over
            // the possibly-collapsed link, plus backoff waits.
            let flops = self.cloud.cost_model().submodel(&outcome.spec).flops;
            let dev = &world.devices[id];
            let bw = dev.resources.bandwidth_bps * fate.bandwidth_factor;
            let time_ms = adaptation_latency_ms(
                &dev.resources,
                flops,
                local.len(),
                self.cfg.local_epochs,
                self.cfg.batch_size,
            ) * fate.slowdown
                + transfer_time_ms(2 * plan_bytes + extra as u64 * plan_bytes, bw)
                + backoff;
            meta.push((id, fate, time_ms));
            // Remote dispatch ships the encoded payload frame; the fork
            // happens here either way, so both modes consume the same RNG
            // sequence.
            let frame = self.transport.is_some().then(|| self.frame_buf.clone());
            jobs.push((payload, frame, local, rng.fork(id as u64 ^ 0xEB)));
        }

        /// How one device's training came back: an in-process update, a
        /// remote worker's encoded update frame, or not at all.
        enum Arrived {
            Update(EdgeUpdate),
            Frame(Vec<u8>),
            Lost,
        }

        let arrivals: Vec<Arrived> = if self.transport.is_some() {
            let train = nebula_core::TrainParams {
                epochs: self.cfg.local_epochs,
                batch_size: self.cfg.batch_size,
                lr: self.cfg.local_lr,
            };
            let dispatch: Vec<nebula_core::DispatchJob> = jobs
                .into_iter()
                .zip(&meta)
                .map(|((_payload, frame, local, drng), &(id, _, _))| nebula_core::DispatchJob {
                    round: round as usize,
                    device: id as u64,
                    spec: nebula_core::JobSpec::Modular {
                        frame: frame.expect("remote jobs carry their payload frame"),
                    },
                    rng_state: drng.state(),
                    train,
                    data: local,
                })
                .collect();
            let transport = self.transport.as_deref_mut().expect("transport checked above");
            let mut train_span = telemetry.span("remote_train");
            train_span.int("clients", dispatch.len() as u64);
            transport
                .round_trip(dispatch)
                .into_iter()
                .map(|r| match r {
                    Ok(nebula_core::JobResult::Frame(f)) => Arrived::Frame(f),
                    // A dense result to a modular job is a protocol
                    // violation; the device degrades like a lost link.
                    Ok(nebula_core::JobResult::Params(_)) | Err(_) => Arrived::Lost,
                })
                .collect()
        } else {
            let cfg = &self.cfg;
            let mut train_span = telemetry.span("local_train");
            train_span.int("clients", jobs.len() as u64);
            jobs.into_par_iter()
                .map(|(payload, _frame, local, mut drng)| {
                    // Client-level parallelism owns the pool here; keep the
                    // inner tensor kernels sequential so per-device training
                    // does not nest-fork (see nebula_tensor::par).
                    nebula_tensor::par::sequential(|| {
                        let mut client = EdgeClient::from_payload(cfg.modular.clone(), &payload);
                        client.adapt(&local, cfg.local_epochs, cfg.batch_size, cfg.local_lr, &mut drng);
                        Arrived::Update(client.make_update(&local))
                    })
                })
                .collect()
        };

        // Round deadline from the latency model; stragglers past it drop.
        let times: Vec<f64> = meta.iter().map(|m| m.2).collect();
        let deadline = round_deadline_ms(policy.deadline_factor, &times);
        let mut accepted: Vec<EdgeUpdate> = Vec::with_capacity(arrivals.len());
        let mut round_time_ms = 0.0f64;
        for (arrived, (id, fate, time_ms)) in arrivals.into_iter().zip(meta) {
            if let Some(d) = deadline {
                if time_ms > d {
                    report.deadline_dropped += 1;
                    round_time_ms = round_time_ms.max(d);
                    note_client(&telemetry, id, "deadline_dropped", Some(time_ms));
                    continue;
                }
            }
            if fate.crashed {
                // Trained, but died before the upload landed.
                report.crashed += 1;
                note_client(&telemetry, id, "crashed", Some(time_ms));
                continue;
            }
            round_time_ms = round_time_ms.max(time_ms);
            let upload_span = telemetry.span("wire_tx");
            let decoded = match arrived {
                Arrived::Lost => {
                    // The transport failed to bring the job back (worker
                    // crash, socket deadline): the device degrades through
                    // the same path as a dropped link below.
                    telemetry.counter_add("serve.transport_lost", 1);
                    None
                }
                Arrived::Update(mut update) => {
                    if let Some(kind) = fate.corruption {
                        // App-level corruption garbles the tensors *before*
                        // the frame is cut: the frame is valid, the sanitize
                        // gate is the defence.
                        corrupt_module_update(
                            &mut update,
                            kind,
                            plan.explode_scale,
                            plan.seed ^ (round << 20) ^ id as u64,
                        );
                    }
                    if fate.malicious.is_some() {
                        // Byzantine persona: a well-formed update deliberately
                        // crafted to poison the aggregate (colluders share one
                        // per-round attack seed). The robust combine rule is
                        // the defence, not the frame or the sanitize gate.
                        apply_attack(&mut update, &plan.adversary, plan.adversary.attack_seed(round, id));
                    }
                    // The upload is a real frame; the cloud aggregates what
                    // it decodes, never the sender's structs.
                    let enc = self.wire.encode_update(id as u64, &update, &mut self.frame_buf) as u64;
                    if fate.frame_corrupt {
                        // Transit corruption flips bytes on the wire; under
                        // frame auth the tamper also recomputes the CRC (the
                        // forgery only the MAC catches). Either way the
                        // decode rejects before aggregation and the retry
                        // path re-sends; without a retry budget the device
                        // is lost.
                        report.corrupt_frames += 1;
                        let mut bad = self.frame_buf.clone();
                        if self.cfg.wire.auth_key.is_some() {
                            forge_frame(&mut bad, plan.seed ^ (round << 20) ^ id as u64);
                        } else {
                            corrupt_frame(&mut bad, plan.seed ^ (round << 20) ^ id as u64);
                        }
                        match self.wire.decode_update_from(id as u64, &bad) {
                            Ok(u) => {
                                comm.record_upload(enc);
                                Some(u)
                            }
                            Err(_) => {
                                comm.record_retry(enc);
                                if policy.max_retries == 0 {
                                    None
                                } else {
                                    report.retried += 1;
                                    match self.wire.decode_update_from(id as u64, &self.frame_buf) {
                                        Ok(u) => {
                                            comm.record_upload(enc);
                                            Some(u)
                                        }
                                        Err(_) => None,
                                    }
                                }
                            }
                        }
                    } else {
                        match self.wire.decode_update_from(id as u64, &self.frame_buf) {
                            Ok(u) => {
                                comm.record_upload(enc);
                                Some(u)
                            }
                            Err(_) => {
                                comm.record_retry(enc);
                                None
                            }
                        }
                    }
                }
                Arrived::Frame(frame) => {
                    // A remote worker already encoded the update; transit
                    // faults tamper with its bytes, and app-level
                    // corruption / Byzantine attacks mutate what the cloud
                    // decoded. Under the Raw codec that ordering is
                    // bit-identical to the loopback order (mutate before
                    // encode), which the serve tests pin.
                    let enc = frame.len() as u64;
                    let got = if fate.frame_corrupt {
                        report.corrupt_frames += 1;
                        let mut bad = frame.clone();
                        if self.cfg.wire.auth_key.is_some() {
                            forge_frame(&mut bad, plan.seed ^ (round << 20) ^ id as u64);
                        } else {
                            corrupt_frame(&mut bad, plan.seed ^ (round << 20) ^ id as u64);
                        }
                        match self.wire.decode_update_from(id as u64, &bad) {
                            Ok(u) => {
                                comm.record_upload(enc);
                                Some(u)
                            }
                            Err(_) => {
                                comm.record_retry(enc);
                                if policy.max_retries == 0 {
                                    None
                                } else {
                                    report.retried += 1;
                                    match self.wire.decode_update_from(id as u64, &frame) {
                                        Ok(u) => {
                                            comm.record_upload(enc);
                                            Some(u)
                                        }
                                        Err(_) => None,
                                    }
                                }
                            }
                        }
                    } else {
                        match self.wire.decode_update_from(id as u64, &frame) {
                            Ok(u) => {
                                comm.record_upload(enc);
                                Some(u)
                            }
                            Err(_) => {
                                comm.record_retry(enc);
                                None
                            }
                        }
                    };
                    got.map(|mut update| {
                        if let Some(kind) = fate.corruption {
                            corrupt_module_update(
                                &mut update,
                                kind,
                                plan.explode_scale,
                                plan.seed ^ (round << 20) ^ id as u64,
                            );
                        }
                        if fate.malicious.is_some() {
                            apply_attack(&mut update, &plan.adversary, plan.adversary.attack_seed(round, id));
                        }
                        update
                    })
                }
            };
            drop(upload_span);
            let Some(mut update) = decoded else {
                report.link_dropped += 1;
                note_client(&telemetry, id, "link_dropped", Some(time_ms));
                continue;
            };
            // Gate-probability and module-load telemetry of what the cloud
            // actually decoded: which modules each accepted client
            // activated, and how spread its per-layer gate distribution is.
            if telemetry.enabled() {
                for (layer, modules) in update.spec.layers().iter().enumerate() {
                    for &m in modules {
                        telemetry.load_add(&format!("gate_load.layer{layer}"), m, 1);
                        if let Some(counts) = round_loads.get_mut(layer) {
                            if let Some(c) = counts.get_mut(m) {
                                *c += 1;
                            }
                        }
                    }
                    if let Some(row) = update.importance.get(layer) {
                        telemetry.observe(
                            &format!("gate_entropy.layer{layer}"),
                            nebula_modular::normalized_entropy(row),
                        );
                    }
                }
            }
            if fate.straggler {
                // Late but within the deadline: accepted at a discount
                // (server-side, after decode).
                discount_staleness(&mut update, policy.staleness_discount);
                report.stale += 1;
                note_client(&telemetry, id, "stale", Some(time_ms));
            } else {
                note_client(&telemetry, id, "accepted", Some(time_ms));
            }
            accepted.push(update);
        }
        report.participated = accepted.len() as u64;

        // Aggregate behind the sanitize gate, optionally under the
        // checkpoint-rollback guard.
        let mut agg_span = telemetry.span("aggregate");
        agg_span.int("accepted", accepted.len() as u64);
        let outcome = if let Some(partials) = self.edge_partials(&accepted) {
            // Hierarchical fan-out: the cloud only ever sees one partial
            // per edge group. (Edge→cloud backhaul byte/latency accounting
            // lives in the sharded engine; `comm` here stays the
            // device-side traffic, identical to the flat path.)
            agg_span.int("edge_partials", partials.len() as u64);
            match &self.rollback {
                Some((probe, max_drop)) => {
                    let out = self.cloud.absorb_partials_guarded(
                        &partials,
                        &self.sanitize,
                        self.aggregator,
                        |m| nebula_data::evaluate_accuracy(m, probe, 64),
                        *max_drop,
                    );
                    if out.rolled_back {
                        report.rolled_back += 1;
                    }
                    nebula_core::AggregateOutcome { touched: out.touched, sanitize: out.sanitize }
                }
                None => self.cloud.absorb_partials(&partials, &self.sanitize, self.aggregator),
            }
        } else {
            match &self.rollback {
                Some((probe, max_drop)) => {
                    let out = self.cloud.aggregate_guarded_with(
                        &accepted,
                        &self.sanitize,
                        self.aggregator,
                        |m| nebula_data::evaluate_accuracy(m, probe, 64),
                        *max_drop,
                    );
                    if out.rolled_back {
                        report.rolled_back += 1;
                    }
                    nebula_core::AggregateOutcome { touched: out.touched, sanitize: out.sanitize }
                }
                None => self.cloud.aggregate_robust_with(&accepted, &self.sanitize, self.aggregator),
            }
        };
        report.rejected += outcome.sanitize.rejected() as u64;
        if telemetry.enabled() {
            let s = outcome.sanitize;
            telemetry.counter_add("sanitize.rejected_non_finite", s.rejected_non_finite as u64);
            telemetry.counter_add("sanitize.rejected_outlier", s.rejected_outlier as u64);
            telemetry.counter_add("sanitize.outlier_check_skipped", s.outlier_check_skipped as u64);
            telemetry.emit("sanitize", |e| {
                e.ints.insert("round".into(), round);
                e.ints.insert("accepted".into(), s.accepted as u64);
                e.ints.insert("non_finite".into(), s.rejected_non_finite as u64);
                e.ints.insert("outlier".into(), s.rejected_outlier as u64);
                e.ints.insert("outlier_skipped".into(), s.outlier_check_skipped as u64);
            });
        }
        drop(agg_span);
        comm.end_round();
        for (layer, counts) in round_loads.iter().enumerate() {
            telemetry.emit("gate_load", |e| {
                e.ints.insert("round".into(), round);
                e.ints.insert("layer".into(), layer as u64);
                for (m, &c) in counts.iter().enumerate() {
                    e.ints.insert(format!("b{m:03}"), c);
                }
            });
        }
        note_round(&telemetry, round, &comm, &report, round_time_ms);
        round_span.num("time_ms", round_time_ms);
        RoundOutcome { stats: RoundStats { comm, adapt_time_ms: 0.0, faults: report }, round_time_ms }
    }

    /// Folds the accepted cohort at `cfg.edge_groups` simulated edge
    /// servers — contiguous chunks in cohort order — and returns their
    /// partials in edge order. `None` when the hierarchy is disabled (or
    /// configured with zero edges), which keeps the flat path.
    fn edge_partials(&self, accepted: &[EdgeUpdate]) -> Option<Vec<EdgePartial>> {
        let groups = self.cfg.edge_groups?;
        if groups == 0 {
            return None;
        }
        // A dead round — every sampled device crashed, missed the
        // deadline, or dropped its link — has nothing to fold.
        // `absorb_partials` of an empty list is a no-op, so the round
        // records zeros instead of the whole experiment crashing.
        if accepted.is_empty() {
            return Some(Vec::new());
        }
        let chunk = accepted.len().div_ceil(groups.min(accepted.len()));
        Some(
            accepted
                .chunks(chunk)
                .enumerate()
                .map(|(g, block)| {
                    let mut edge = EdgeAccumulator::new(self.aggregator, self.sanitize, true);
                    for u in block {
                        edge.ingest(u.clone());
                    }
                    edge.finish(g as u64)
                })
                .collect(),
        )
    }

    /// Refreshes (or creates) the tracked device's client from the cloud:
    /// derive + dispatch, over the wire. Returns the measured download
    /// frame bytes; the client installs what it decoded.
    fn refresh_client(&mut self, world: &mut SimWorld, id: usize) -> u64 {
        let dev = &world.devices[id];
        let profile = dev.profile(self.cloud.cost_model());
        let local = dev.partition.data.clone();
        let outcome = self.cloud.derive_for_data(&local, &profile, None);
        let payload = self.cloud.dispatch(&outcome.spec);
        let bytes = self.wire.encode_payload(id as u64, &payload, &mut self.frame_buf) as u64;
        let payload = self
            .wire
            .decode_payload(id as u64, &self.frame_buf)
            .expect("pristine in-process frame must decode");
        match self.clients.get_mut(&id) {
            Some(client) => client.install(&payload),
            None => {
                self.clients.insert(id, EdgeClient::from_payload(self.cfg.modular.clone(), &payload));
            }
        }
        bytes
    }
}

impl AdaptStrategy for NebulaStrategy {
    fn name(&self) -> &'static str {
        match self.variant {
            NebulaVariant::Full => "Nebula",
            NebulaVariant::NoLocalTraining => "Nebula w/o local",
            NebulaVariant::NoCloud => "Nebula w/o cloud",
        }
    }

    fn offline(&mut self, world: &mut SimWorld, rng: &mut NebulaRng) {
        let proxy = world.proxy(self.cfg.proxy_samples);
        self.cloud.pretrain(&proxy, rng);
        let subtasks = world.subtask_datasets(200);
        self.cloud.enhance(&subtasks, rng);
        self.enhanced = true;
    }

    fn track(&mut self, ids: &[usize]) {
        self.tracked = ids.to_vec();
    }

    fn set_telemetry(&mut self, telemetry: Telemetry) {
        // The wire context shares the handle so frame/CRC telemetry lands
        // in the same trace as the round spans.
        self.wire.set_telemetry(telemetry.clone());
        self.telemetry = telemetry;
    }

    fn set_sanitize_policy(&mut self, policy: SanitizePolicy) {
        self.sanitize = policy;
    }

    fn set_aggregator(&mut self, aggregator: RobustAggregator) {
        self.aggregator = aggregator;
    }

    fn set_transport(&mut self, transport: Box<dyn nebula_core::Transport>) {
        // Remote dispatch rebuilds a fresh WireContext per job on the
        // worker side, which is only byte-identical to the coordinator's
        // shared context under the stateless Raw codec.
        assert_eq!(
            self.cfg.wire.codec,
            CodecKind::Raw,
            "Nebula transport routing requires the stateless Raw codec"
        );
        self.transport = Some(transport);
    }

    fn adaptation_step(&mut self, world: &mut SimWorld, rng: &mut NebulaRng) -> RoundStats {
        let mut stats = RoundStats::default();

        // Edge-cloud collaborative rounds (skipped by the w/o-cloud variant).
        if self.variant != NebulaVariant::NoCloud {
            for _ in 0..self.cfg.rounds_per_step {
                stats.merge(&self.single_round(world, rng).stats);
            }
        }

        // Tracked devices: refresh sub-model from the cloud and/or adapt
        // locally, per variant. Refresh downloads are wire frames cut from
        // the post-aggregation model, so commit fresh baselines first.
        self.wire.commit_model(self.cloud.model());
        let mut comm = stats.comm;
        let mut time_ms = 0.0;
        for &id in &self.tracked.clone() {
            let refresh = match self.variant {
                NebulaVariant::Full | NebulaVariant::NoLocalTraining => true,
                NebulaVariant::NoCloud => !self.clients.contains_key(&id),
            };
            if refresh {
                let bytes = self.refresh_client(world, id);
                comm.record_download(bytes);
                time_ms += transfer_time_ms(bytes, world.devices[id].resources.bandwidth_bps);
            }
            let local_training = self.variant != NebulaVariant::NoLocalTraining;
            if local_training {
                let local = world.devices[id].partition.data.clone();
                let client = self.clients.get_mut(&id).expect("tracked client exists");
                let mut drng = rng.fork(id as u64 ^ 0xF00D);
                client.adapt(
                    &local,
                    self.cfg.local_epochs,
                    self.cfg.batch_size,
                    self.cfg.local_lr,
                    &mut drng,
                );
                let spec_cost = self.cloud.cost_model().submodel(client.spec());
                let dev = &world.devices[id];
                time_ms += adaptation_latency_ms(
                    &dev.resources,
                    spec_cost.flops,
                    dev.volume(),
                    self.cfg.local_epochs,
                    self.cfg.batch_size,
                );
            }
        }

        RoundStats { comm, adapt_time_ms: time_ms / self.tracked.len().max(1) as f64, faults: stats.faults }
    }

    fn device_accuracy(&mut self, world: &mut SimWorld, id: usize) -> f32 {
        if !self.clients.contains_key(&id) {
            self.refresh_client(world, id);
        }
        let client = self.clients.get_mut(&id).expect("client exists");
        client.accuracy(&world.devices[id].test)
    }

    fn footprint(&self, world: &SimWorld, id: usize) -> Footprint {
        // Footprint of the sub-model the device would be assigned.
        let dev = &world.devices[id];
        let profile = dev.profile(self.cloud.cost_model());
        let spec = match self.clients.get(&id) {
            Some(c) => c.spec().clone(),
            None => {
                // No data-dependent importance available immutably; use a
                // uniform-importance derivation under the device budget.
                let cfg = &self.cfg.modular;
                let uniform =
                    vec![vec![1.0 / cfg.modules_per_layer as f32; cfg.modules_per_layer]; cfg.num_layers];
                self.cloud.derive_for_importance(&uniform, &profile, None).spec
            }
        };
        let c = self.cloud.cost_model().submodel(&spec);
        Footprint { params: c.params, train_mem_bytes: c.training_mem_bytes, forward_flops: c.flops }
    }

    fn export_state(&self) -> Option<StrategyState> {
        // Delta/int8 wire traffic depends on registry/residual history
        // that a snapshot does not capture; only Raw resumes
        // bit-identically (DESIGN.md §11).
        if self.cfg.wire.codec != CodecKind::Raw {
            return None;
        }
        let mut clients: Vec<ClientState> = self
            .clients
            .iter()
            .map(|(&id, client)| {
                let s = client.export_state();
                ClientState { id, param_bits: bits_of(&s.params), active: s.active, installed: s.installed }
            })
            .collect();
        clients.sort_by_key(|c| c.id);
        Some(StrategyState::Nebula(NebulaState {
            cloud_param_bits: bits_of(&self.cloud.model().param_vector()),
            enhanced: self.enhanced,
            tracked: self.tracked.clone(),
            clients,
        }))
    }

    fn import_state(&mut self, state: &StrategyState) -> Result<(), String> {
        if self.cfg.wire.codec != CodecKind::Raw {
            return Err("Nebula: state import requires the Raw wire codec".to_string());
        }
        let StrategyState::Nebula(n) = state else {
            return Err("Nebula: expected Nebula strategy state".to_string());
        };
        let want = self.cloud.model().param_count();
        if n.cloud_param_bits.len() != want {
            return Err(format!(
                "Nebula: state has {} cloud params, model wants {want}",
                n.cloud_param_bits.len()
            ));
        }
        self.cloud.model_mut().load_param_vector(&floats_of(&n.cloud_param_bits));
        self.enhanced = n.enhanced;
        self.tracked = n.tracked.clone();
        self.clients.clear();
        for c in &n.clients {
            let s = EdgeClientState {
                params: floats_of(&c.param_bits),
                active: c.active.clone(),
                installed: c.installed.clone(),
            };
            let client = EdgeClient::from_state(self.cfg.modular.clone(), &s)
                .map_err(|e| format!("Nebula: client {}: {e}", c.id))?;
            self.clients.insert(c.id, client);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::ResourceSampler;
    use nebula_data::{PartitionSpec, Partitioner, SynthSpec, Synthesizer};

    fn toy_world(devices: usize) -> SimWorld {
        let synth = Synthesizer::new(SynthSpec::toy(), 1);
        let spec = PartitionSpec::new(devices, Partitioner::LabelSkew { m: 2 });
        SimWorld::new(synth, spec, 9, None, &ResourceSampler::default(), 5)
    }

    fn toy_cfg() -> StrategyConfig {
        let mut modular = ModularConfig::toy(16, 4);
        modular.gate_noise_std = 0.3;
        let mut cfg = StrategyConfig::new(modular);
        cfg.devices_per_round = 4;
        cfg.rounds_per_step = 2;
        cfg.pretrain_epochs = 6;
        cfg.proxy_samples = 300;
        cfg.finetune_epochs = 4;
        cfg
    }

    #[test]
    fn all_strategies_run_one_step() {
        let mut rng = NebulaRng::seed(3);
        let mut strategies: Vec<Box<dyn AdaptStrategy>> = vec![
            Box::new(NoAdaptStrategy::new(toy_cfg(), 1)),
            Box::new(LocalAdaptStrategy::new(toy_cfg(), 1)),
            Box::new(AdaptiveNetStrategy::new(toy_cfg(), 1)),
            Box::new(FedAvgStrategy::new(toy_cfg(), 1)),
            Box::new(HeteroFlStrategy::new(toy_cfg(), 1)),
            Box::new(NebulaStrategy::new(toy_cfg(), 1)),
        ];
        for s in &mut strategies {
            let mut world = toy_world(8);
            s.offline(&mut world, &mut rng);
            s.track(&[0, 1]);
            let report = s.adaptation_step(&mut world, &mut rng);
            let acc = s.device_accuracy(&mut world, 0);
            assert!((0.0..=1.0).contains(&acc), "{}: acc {acc}", s.name());
            let fp = s.footprint(&world, 0);
            assert!(fp.params > 0, "{}: zero params", s.name());
            // Strategies that download models must move bytes (AN pays a
            // one-time branch download); purely local ones must not.
            match s.name() {
                "FA" | "HFL" | "Nebula" | "AN" => {
                    assert!(report.comm.total_bytes() > 0, "{}", s.name())
                }
                _ => assert_eq!(report.comm.total_bytes(), 0, "{}", s.name()),
            }
        }
    }

    #[test]
    fn nebula_comm_cheaper_than_fedavg() {
        let mut rng = NebulaRng::seed(4);
        let mut world_a = toy_world(8);
        let mut fa = FedAvgStrategy::new(toy_cfg(), 1);
        fa.offline(&mut world_a, &mut rng);
        let fa_report = fa.adaptation_step(&mut world_a, &mut rng);

        let mut world_b = toy_world(8);
        let mut nb = NebulaStrategy::new(toy_cfg(), 1);
        nb.offline(&mut world_b, &mut rng);
        nb.track(&[]);
        let nb_report = nb.adaptation_step(&mut world_b, &mut rng);

        assert!(
            nb_report.comm.total_bytes() < fa_report.comm.total_bytes(),
            "Nebula {} vs FedAvg {}",
            nb_report.comm.total_bytes(),
            fa_report.comm.total_bytes()
        );
    }

    #[test]
    fn nebula_variants_differ_in_behaviour() {
        let mut rng = NebulaRng::seed(5);
        let mut world = toy_world(6);
        let mut no_cloud = NebulaStrategy::with_variant(toy_cfg(), 1, NebulaVariant::NoCloud);
        no_cloud.offline(&mut world, &mut rng);
        no_cloud.track(&[0]);
        let r1 = no_cloud.adaptation_step(&mut world, &mut rng);
        // w/o cloud: no collaborative rounds → only the one-time download.
        assert_eq!(r1.comm.rounds, 0);
        let r2 = no_cloud.adaptation_step(&mut world, &mut rng);
        // Second step: no new download at all.
        assert_eq!(r2.comm.downloads, 0, "w/o-cloud re-downloaded");
    }

    #[test]
    fn heterofl_assigns_smaller_ratios_to_weak_devices() {
        let world = toy_world(20);
        let s = HeteroFlStrategy::new(toy_cfg(), 1);
        let mut ratios: Vec<f32> = world.devices.iter().map(|d| s.ratio_for(d)).collect();
        ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(ratios[0] < ratios[ratios.len() - 1], "no ratio heterogeneity");
    }
}
