//! Device hardware sampling, shaped after the paper's Fig. 2 (statistics
//! from AI Benchmark): the on-device RAM histogram, the bimodal inference-
//! speed distribution (mobile SoCs ~10–100 ms vs IoT boards ~0.1–1 s for
//! MobileNetV3), and WiFi-class bandwidth.

use nebula_tensor::NebulaRng;
use serde::{Deserialize, Serialize};

/// The two device classes of the testbed: GPU-equipped mobile-SoC boards
/// (Jetson Nano) and CPU-only IoT boards (Raspberry Pi 4B).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeviceClass {
    MobileSoc,
    Iot,
}

impl DeviceClass {
    pub fn name(self) -> &'static str {
        match self {
            DeviceClass::MobileSoc => "JetsonNano",
            DeviceClass::Iot => "RaspberryPi",
        }
    }
}

/// A device's sampled hardware profile.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct DeviceResources {
    pub class: DeviceClass,
    /// Installed RAM (Fig. 2a histogram).
    pub ram_bytes: u64,
    /// Sustained training/inference throughput in multiply-accumulates
    /// per second.
    pub flops_per_sec: f64,
    /// Link bandwidth to the cloud, bits per second.
    pub bandwidth_bps: f64,
    /// Fraction of the *full* cloud model this device can afford to hold
    /// and train — the scalar that converts hardware into Eq. 2 limits.
    pub budget_ratio: f32,
    /// Currently co-running background processes (inner runtime dynamic).
    pub background_procs: usize,
}

/// RAM histogram from Fig. 2(a): bucket upper bounds in GB and their
/// probabilities.
const RAM_BUCKETS_GB: [(f32, f32); 7] =
    [(2.0, 0.05), (4.0, 0.30), (6.0, 0.30), (8.0, 0.15), (10.0, 0.10), (12.0, 0.07), (16.0, 0.03)];

/// Samples device populations with Fig. 2-shaped marginals.
#[derive(Clone, Debug)]
pub struct ResourceSampler {
    /// Probability a device is a mobile SoC (vs IoT board).
    pub mobile_fraction: f64,
}

impl Default for ResourceSampler {
    fn default() -> Self {
        Self { mobile_fraction: 0.5 }
    }
}

impl ResourceSampler {
    /// Draws one device.
    pub fn sample(&self, rng: &mut NebulaRng) -> DeviceResources {
        let class =
            if rng.bernoulli(self.mobile_fraction) { DeviceClass::MobileSoc } else { DeviceClass::Iot };

        // RAM bucket, uniform within the bucket.
        let weights: Vec<f32> = RAM_BUCKETS_GB.iter().map(|&(_, p)| p).collect();
        let bucket = rng.weighted_index(&weights);
        let hi = RAM_BUCKETS_GB[bucket].0;
        let lo = if bucket == 0 { 0.5 } else { RAM_BUCKETS_GB[bucket - 1].0 };
        let ram_gb = rng.uniform_f32(lo, hi);
        let ram_bytes = (ram_gb as f64 * 1e9) as u64;

        // Inference speed: lognormal per class. MobileNetV3 at ~220 MFLOPs:
        // mobile SoCs land at 10–100 ms, IoT boards at 100 ms–1 s, giving
        // the paper's Fig. 2(b) CDF split.
        let flops_per_sec = match class {
            DeviceClass::MobileSoc => rng.lognormal_f32(22.4, 0.7) as f64, // e^22.4 ≈ 5.4 GFLOP/s
            DeviceClass::Iot => rng.lognormal_f32(20.1, 0.7) as f64,       // ≈ 0.54 GFLOP/s
        };

        // WiFi LAN bandwidth ~ 20 Mbps lognormal.
        let bandwidth_bps = rng.lognormal_f32(16.8, 0.5) as f64; // e^16.8 ≈ 20 Mb

        // Model budget: mobile devices afford bigger sub-models.
        let budget_ratio = match class {
            DeviceClass::MobileSoc => rng.uniform_f32(0.3, 0.7),
            DeviceClass::Iot => rng.uniform_f32(0.12, 0.4),
        };

        DeviceResources { class, ram_bytes, flops_per_sec, bandwidth_bps, budget_ratio, background_procs: 0 }
    }

    /// Draws a population of `n` devices from a forked stream.
    pub fn sample_population(&self, n: usize, rng: &mut NebulaRng) -> Vec<DeviceResources> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// Inference latency in milliseconds for a model of `flops` MACs on `dev`,
/// including contention.
pub fn inference_latency_ms(dev: &DeviceResources, flops: u64) -> f64 {
    let base = flops as f64 / dev.flops_per_sec * 1e3;
    base * crate::contention::contention_multiplier(dev.background_procs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn population(n: usize) -> Vec<DeviceResources> {
        let mut rng = NebulaRng::seed(42);
        ResourceSampler::default().sample_population(n, &mut rng)
    }

    #[test]
    fn ram_histogram_has_expected_mode() {
        let pop = population(2000);
        let in_2_6: usize = pop
            .iter()
            .filter(|d| {
                let gb = d.ram_bytes as f64 / 1e9;
                (2.0..6.0).contains(&gb)
            })
            .count();
        // 60% of mass lies in 2–6 GB per the Fig. 2a histogram.
        let frac = in_2_6 as f64 / 2000.0;
        assert!((frac - 0.6).abs() < 0.06, "2–6 GB fraction {frac}");
    }

    #[test]
    fn mobile_socs_are_faster_than_iot() {
        let pop = population(2000);
        let mean = |class: DeviceClass| {
            let (sum, n) = pop
                .iter()
                .filter(|d| d.class == class)
                .fold((0.0f64, 0usize), |(s, c), d| (s + d.flops_per_sec, c + 1));
            sum / n as f64
        };
        assert!(mean(DeviceClass::MobileSoc) > 3.0 * mean(DeviceClass::Iot));
    }

    #[test]
    fn budget_ratios_are_in_range() {
        for d in population(500) {
            assert!(d.budget_ratio > 0.0 && d.budget_ratio <= 0.7);
            if d.class == DeviceClass::Iot {
                assert!(d.budget_ratio <= 0.4);
            }
        }
    }

    #[test]
    fn latency_scales_with_contention() {
        let mut d = population(1)[0];
        d.background_procs = 0;
        let base = inference_latency_ms(&d, 1_000_000);
        d.background_procs = 3;
        let loaded = inference_latency_ms(&d, 1_000_000);
        assert!((loaded / base - 5.06).abs() < 0.01);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let mut a = NebulaRng::seed(7);
        let mut b = NebulaRng::seed(7);
        let s = ResourceSampler::default();
        let da = s.sample(&mut a);
        let db = s.sample(&mut b);
        assert_eq!(da.ram_bytes, db.ram_bytes);
        assert_eq!(da.budget_ratio, db.budget_ratio);
    }
}
