//! Communication accounting (Fig. 7).
//!
//! The paper reports communication cost as total bytes moved between edge
//! and cloud during adaptation. The byte tracker itself
//! ([`CommTracker`]) lives in `nebula-core::stats` so bench bins and
//! telemetry sinks share one shape; this module re-exports it and keeps
//! the bandwidth → transfer-time model the simulator layers on top.

pub use nebula_core::stats::CommTracker;

/// Transfer time in milliseconds for `bytes` over a `bandwidth_bps` link.
pub fn transfer_time_ms(bytes: u64, bandwidth_bps: f64) -> f64 {
    assert!(bandwidth_bps > 0.0, "non-positive bandwidth");
    (bytes as f64 * 8.0) / bandwidth_bps * 1e3
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_basic() {
        // 1 MB over 8 Mbps = 1 s.
        let ms = transfer_time_ms(1_000_000, 8e6);
        assert!((ms - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn reexported_tracker_is_the_core_type() {
        // Counter arithmetic is tested in nebula-core::stats; this pins
        // the re-export so sim callers keep compiling against one type.
        let mut t = CommTracker::new();
        t.record_download(100);
        assert_eq!(t.total_bytes(), 100);
        let core_t: nebula_core::CommTracker = t;
        assert_eq!(core_t.downloads, 1);
    }
}
