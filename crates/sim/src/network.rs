//! Communication accounting (Fig. 7).
//!
//! The paper reports communication cost as total bytes moved between edge
//! and cloud during adaptation. The tracker tallies per-direction bytes
//! and exchange counts; transfer time falls out of the device bandwidth.

use serde::{Deserialize, Serialize};

/// Byte-level communication tracker for one strategy run.
///
/// All counters use saturating arithmetic: a long-running (or
/// fault-amplified) simulation clamps at `u64::MAX` instead of
/// panicking in debug builds or silently wrapping in release.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommTracker {
    /// Cloud → edge bytes.
    pub down_bytes: u64,
    /// Edge → cloud bytes.
    pub up_bytes: u64,
    /// Number of cloud→edge payloads.
    pub downloads: u64,
    /// Number of edge→cloud updates.
    pub uploads: u64,
    /// Completed communication rounds.
    pub rounds: u64,
    /// Extra transfer attempts over flaky links.
    pub retries: u64,
    /// Bytes re-sent by those retries (wasted traffic).
    pub retry_bytes: u64,
}

impl CommTracker {
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a cloud → edge payload.
    pub fn record_download(&mut self, bytes: u64) {
        self.down_bytes = self.down_bytes.saturating_add(bytes);
        self.downloads = self.downloads.saturating_add(1);
    }

    /// Records an edge → cloud update.
    pub fn record_upload(&mut self, bytes: u64) {
        self.up_bytes = self.up_bytes.saturating_add(bytes);
        self.uploads = self.uploads.saturating_add(1);
    }

    /// Records one failed transfer attempt that re-sent `bytes`.
    pub fn record_retry(&mut self, bytes: u64) {
        self.retry_bytes = self.retry_bytes.saturating_add(bytes);
        self.retries = self.retries.saturating_add(1);
    }

    /// Marks the end of a communication round.
    pub fn end_round(&mut self) {
        self.rounds = self.rounds.saturating_add(1);
    }

    /// Total bytes on the wire, including retry re-sends.
    pub fn total_bytes(&self) -> u64 {
        self.down_bytes.saturating_add(self.up_bytes).saturating_add(self.retry_bytes)
    }

    /// Total in mebibytes (Fig. 7's unit for HAR) .
    pub fn total_mib(&self) -> f64 {
        self.total_bytes() as f64 / (1024.0 * 1024.0)
    }

    /// Total in gibibytes (Fig. 7's unit for the CNN tasks).
    pub fn total_gib(&self) -> f64 {
        self.total_bytes() as f64 / (1024.0 * 1024.0 * 1024.0)
    }

    /// Merges another tracker into this one.
    pub fn merge(&mut self, other: &CommTracker) {
        self.down_bytes = self.down_bytes.saturating_add(other.down_bytes);
        self.up_bytes = self.up_bytes.saturating_add(other.up_bytes);
        self.downloads = self.downloads.saturating_add(other.downloads);
        self.uploads = self.uploads.saturating_add(other.uploads);
        self.rounds = self.rounds.saturating_add(other.rounds);
        self.retries = self.retries.saturating_add(other.retries);
        self.retry_bytes = self.retry_bytes.saturating_add(other.retry_bytes);
    }
}

/// Transfer time in milliseconds for `bytes` over a `bandwidth_bps` link.
pub fn transfer_time_ms(bytes: u64, bandwidth_bps: f64) -> f64 {
    assert!(bandwidth_bps > 0.0, "non-positive bandwidth");
    (bytes as f64 * 8.0) / bandwidth_bps * 1e3
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let mut t = CommTracker::new();
        t.record_download(100);
        t.record_upload(40);
        t.record_upload(60);
        t.end_round();
        assert_eq!(t.total_bytes(), 200);
        assert_eq!(t.downloads, 1);
        assert_eq!(t.uploads, 2);
        assert_eq!(t.rounds, 1);
    }

    #[test]
    fn unit_conversions() {
        let t = CommTracker { down_bytes: 1024 * 1024, up_bytes: 0, ..Default::default() };
        assert!((t.total_mib() - 1.0).abs() < 1e-9);
        assert!((t.total_gib() - 1.0 / 1024.0).abs() < 1e-9);
    }

    #[test]
    fn merge_sums_fields() {
        let mut a = CommTracker {
            down_bytes: 1,
            up_bytes: 2,
            downloads: 1,
            uploads: 1,
            rounds: 1,
            ..Default::default()
        };
        let b = CommTracker {
            down_bytes: 10,
            up_bytes: 20,
            downloads: 2,
            uploads: 3,
            rounds: 4,
            retries: 2,
            retry_bytes: 7,
        };
        a.merge(&b);
        assert_eq!(a.down_bytes, 11);
        assert_eq!(a.rounds, 5);
        assert_eq!(a.retries, 2);
        assert_eq!(a.retry_bytes, 7);
    }

    #[test]
    fn retries_count_as_wasted_traffic() {
        let mut t = CommTracker::new();
        t.record_download(100);
        t.record_retry(100);
        t.record_retry(100);
        assert_eq!(t.retries, 2);
        assert_eq!(t.retry_bytes, 200);
        assert_eq!(t.total_bytes(), 300);
        // Retries are not successful exchanges.
        assert_eq!(t.downloads, 1);
        assert_eq!(t.uploads, 0);
    }

    #[test]
    fn counters_saturate_instead_of_overflowing() {
        let mut t = CommTracker { down_bytes: u64::MAX - 1, downloads: u64::MAX, ..Default::default() };
        t.record_download(1000);
        assert_eq!(t.down_bytes, u64::MAX);
        assert_eq!(t.downloads, u64::MAX);
        let big = CommTracker { up_bytes: u64::MAX, retry_bytes: u64::MAX, ..Default::default() };
        t.merge(&big);
        assert_eq!(t.up_bytes, u64::MAX);
        assert_eq!(t.total_bytes(), u64::MAX);
        t.end_round();
        t.record_retry(u64::MAX);
        t.record_upload(u64::MAX);
        assert_eq!(t.retry_bytes, u64::MAX);
        assert_eq!(t.up_bytes, u64::MAX);
    }

    #[test]
    fn transfer_time_basic() {
        // 1 MB over 8 Mbps = 1 s.
        let ms = transfer_time_ms(1_000_000, 8e6);
        assert!((ms - 1000.0).abs() < 1e-6);
    }
}
