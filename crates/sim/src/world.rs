//! The simulated world: a device population over a synthetic task, plus
//! the drift process that advances it through time slots.

use crate::device::SimDevice;
use crate::durability::RunError;
use crate::faults::{DeviceFate, FaultPlan, RoundPolicy};
use crate::resources::ResourceSampler;
use nebula_data::partition::{cooccurrence_groups, partition, PartitionSpec, Partitioner};
use nebula_data::{Dataset, DriftModel, Synthesizer};
use nebula_tensor::NebulaRng;

/// The full simulation state for one task.
pub struct SimWorld {
    pub synth: Synthesizer,
    pub devices: Vec<SimDevice>,
    pub drift: Option<DriftModel>,
    /// Seed fixing the sub-task (co-occurrence group) structure; shared by
    /// the partitioner, the drift process and the cloud's sub-task
    /// definitions so all three agree on what the sub-tasks are.
    pub group_seed: u64,
    partition_spec: PartitionSpec,
    rng: NebulaRng,
    /// Time slots advanced so far.
    pub slot: usize,
    /// Faults injected into every strategy that runs on this world.
    /// Defaults to [`FaultPlan::none`], which is bit-identical to a
    /// fault-free build.
    pub faults: FaultPlan,
    /// Robust-round orchestration knobs (deadline, retries, staleness).
    pub policy: RoundPolicy,
    /// Communication rounds started on this world (fault-fate key).
    rounds_started: u64,
}

impl SimWorld {
    /// Builds a world: samples hardware, partitions data, draws test sets.
    pub fn new(
        synth: Synthesizer,
        partition_spec: PartitionSpec,
        group_seed: u64,
        drift: Option<DriftModel>,
        sampler: &ResourceSampler,
        seed: u64,
    ) -> Self {
        let mut rng = NebulaRng::seed(seed);
        let parts = partition(&synth, &partition_spec, group_seed, &mut rng);
        let hardware = sampler.sample_population(parts.len(), &mut rng);
        let devices = parts
            .into_iter()
            .zip(hardware)
            .enumerate()
            .map(|(id, (p, h))| {
                let drng = rng.fork(id as u64);
                SimDevice::new(id, p, h, drng, &synth)
            })
            .collect();
        Self {
            synth,
            devices,
            drift,
            group_seed,
            partition_spec,
            rng,
            slot: 0,
            faults: FaultPlan::none(),
            policy: RoundPolicy::default(),
            rounds_started: 0,
        }
    }

    /// Builds the paper's real-world testbed population (Fig. 6): 10
    /// Jetson Nanos and 10 Raspberry Pi 4Bs on a WiFi LAN, with fixed
    /// (non-sampled) hardware per device class.
    ///
    /// Errors with [`RunError::InvalidConfig`] when the partition spec
    /// does not describe the testbed's 20 devices.
    pub fn testbed(
        synth: Synthesizer,
        partition_spec: PartitionSpec,
        group_seed: u64,
        drift: Option<DriftModel>,
        seed: u64,
    ) -> Result<Self, RunError> {
        use crate::resources::{DeviceClass, DeviceResources};
        if partition_spec.devices != 20 {
            return Err(RunError::InvalidConfig(format!(
                "the paper's testbed has 20 devices, partition spec describes {}",
                partition_spec.devices
            )));
        }
        let mut rng = NebulaRng::seed(seed);
        let parts = partition(&synth, &partition_spec, group_seed, &mut rng);
        let hw = |class: DeviceClass| match class {
            DeviceClass::MobileSoc => DeviceResources {
                class,
                ram_bytes: 4_000_000_000, // Jetson Nano: 4 GB
                flops_per_sec: 5.4e9,
                bandwidth_bps: 2e7,
                budget_ratio: 0.5,
                background_procs: 0,
            },
            DeviceClass::Iot => DeviceResources {
                class,
                ram_bytes: 2_000_000_000, // Raspberry Pi 4B: 2 GB
                flops_per_sec: 5.4e8,
                bandwidth_bps: 2e7,
                budget_ratio: 0.25,
                background_procs: 0,
            },
        };
        let devices = parts
            .into_iter()
            .enumerate()
            .map(|(id, p)| {
                let class = if id < 10 { DeviceClass::MobileSoc } else { DeviceClass::Iot };
                let drng = rng.fork(id as u64);
                SimDevice::new(id, p, hw(class), drng, &synth)
            })
            .collect();
        Ok(Self {
            synth,
            devices,
            drift,
            group_seed,
            partition_spec,
            rng,
            slot: 0,
            faults: FaultPlan::none(),
            policy: RoundPolicy::default(),
            rounds_started: 0,
        })
    }

    /// Installs a fault plan; every strategy run on this world afterwards
    /// experiences the same injected faults.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = plan;
    }

    /// Installs the robust-round policy (deadline, retries, staleness).
    pub fn set_round_policy(&mut self, policy: RoundPolicy) {
        self.policy = policy;
    }

    /// The index of the next communication round, advancing the counter.
    /// Strategies call this once per round so fault fates are keyed by a
    /// stable `(plan seed, round, device)` triple.
    pub fn next_round_index(&mut self) -> u64 {
        let r = self.rounds_started;
        self.rounds_started = self.rounds_started.saturating_add(1);
        r
    }

    /// Rounds started so far (the fault-plan cursor), for run snapshots.
    pub fn rounds_started(&self) -> u64 {
        self.rounds_started
    }

    /// Restores the round counter from a run snapshot.
    pub fn set_rounds_started(&mut self, rounds: u64) {
        self.rounds_started = rounds;
    }

    /// The world RNG's raw state, for run snapshots.
    pub fn rng_state(&self) -> [u64; 4] {
        self.rng.state()
    }

    /// Restores the world RNG from a captured state. `None` means the
    /// state is not one a seeded generator can hold (corrupt snapshot).
    pub fn restore_rng_state(&mut self, state: [u64; 4]) -> Option<()> {
        self.rng = NebulaRng::from_state(state)?;
        Some(())
    }

    /// The injected fate of `device` in `round` under the current plan.
    pub fn fate(&self, round: u64, device: usize) -> DeviceFate {
        self.faults.fate(round, device)
    }

    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// Advances one time slot: applies drift to every device's local data
    /// and refreshes the matching test sets.
    pub fn advance_slot(&mut self) {
        self.slot += 1;
        if let Some(drift) = self.drift.clone() {
            for dev in &mut self.devices {
                drift.step(&mut dev.partition, &self.synth, &mut dev.rng);
                dev.refresh_test(&self.synth);
            }
        }
        // Inner runtime dynamic: background process counts fluctuate.
        for dev in &mut self.devices {
            dev.resources.background_procs = dev.rng.below(4);
        }
    }

    /// Samples `k` distinct participant indices for a communication round.
    pub fn sample_participants(&mut self, k: usize) -> Vec<usize> {
        let k = k.min(self.devices.len());
        self.rng.sample_indices(self.devices.len(), k)
    }

    /// The cloud's proxy dataset (IID, canonical context).
    pub fn proxy(&mut self, n: usize) -> Dataset {
        self.synth.sample(n, 0, &mut self.rng)
    }

    /// The application-defined sub-task datasets for the cloud's module
    /// ability-enhancing training — one dataset per sub-task, matching the
    /// structure the partitioner/drift use:
    /// * label skew → one dataset per co-occurrence class group;
    /// * feature skew → one dataset per sensing context;
    /// * IID / Dirichlet → per-class-chunk groups as a generic default.
    pub fn subtask_datasets(&mut self, samples_per_task: usize) -> Vec<Dataset> {
        let classes = self.synth.spec().classes;
        match self.partition_spec.partitioner.clone() {
            Partitioner::LabelSkew { m } => {
                let groups = cooccurrence_groups(classes, m, self.group_seed);
                groups
                    .iter()
                    .map(|g| self.synth.sample_classes(samples_per_task, g, 0, &mut self.rng))
                    .collect()
            }
            Partitioner::FeatureSkew => {
                let contexts = self.synth.spec().contexts;
                (0..contexts).map(|ctx| self.synth.sample(samples_per_task, ctx, &mut self.rng)).collect()
            }
            Partitioner::Iid | Partitioner::Dirichlet { .. } | Partitioner::QuantitySkew { .. } => {
                let m = (classes / 4).max(1);
                let groups = cooccurrence_groups(classes, m, self.group_seed);
                groups
                    .iter()
                    .map(|g| self.synth.sample_classes(samples_per_task, g, 0, &mut self.rng))
                    .collect()
            }
        }
    }

    /// Mean over `eval_ids` of a per-device metric.
    pub fn mean_over(&mut self, eval_ids: &[usize], mut f: impl FnMut(&mut SimDevice) -> f32) -> f32 {
        assert!(!eval_ids.is_empty(), "empty evaluation set");
        let mut sum = 0.0;
        for &id in eval_ids {
            sum += f(&mut self.devices[id]);
        }
        sum / eval_ids.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nebula_data::drift::DriftKind;
    use nebula_data::SynthSpec;

    fn world(devices: usize, drift: bool) -> SimWorld {
        let synth = Synthesizer::new(SynthSpec::toy(), 1);
        let spec = PartitionSpec::new(devices, Partitioner::LabelSkew { m: 2 });
        let d = drift.then(|| DriftModel::new(0.5, DriftKind::ClassShift { m: 2, group_seed: 9 }));
        SimWorld::new(synth, spec, 9, d, &ResourceSampler::default(), 5)
    }

    #[test]
    fn world_builds_population() {
        let w = world(12, false);
        assert_eq!(w.num_devices(), 12);
        for dev in &w.devices {
            assert!(!dev.partition.data.is_empty());
            assert!(!dev.test.is_empty());
        }
    }

    #[test]
    fn advance_slot_applies_drift_and_refreshes_tests() {
        let mut w = world(6, true);
        let before: Vec<Vec<usize>> = w.devices.iter().map(|d| d.partition.classes.clone()).collect();
        for _ in 0..3 {
            w.advance_slot();
        }
        assert_eq!(w.slot, 3);
        // At least one device's sub-task should have moved after 3 slots of
        // full-group re-draws (2 groups; P(all 6 stay) ≈ 2^-18).
        let after: Vec<Vec<usize>> = w.devices.iter().map(|d| d.partition.classes.clone()).collect();
        assert_ne!(before, after, "drift changed nothing");
        // Test sets track the new classes.
        for dev in &w.devices {
            for &label in dev.test.labels() {
                assert!(dev.partition.classes.contains(&label));
            }
        }
    }

    #[test]
    fn participants_are_distinct_and_bounded() {
        let mut w = world(10, false);
        let p = w.sample_participants(25);
        assert_eq!(p.len(), 10); // clamped to population size
        let q = w.sample_participants(4);
        assert_eq!(q.len(), 4);
        let mut qq = q.clone();
        qq.sort_unstable();
        qq.dedup();
        assert_eq!(qq.len(), 4);
    }

    #[test]
    fn subtask_datasets_match_group_structure() {
        let mut w = world(4, false);
        let subtasks = w.subtask_datasets(40);
        // toy spec: 4 classes, m = 2 → 2 groups.
        assert_eq!(subtasks.len(), 2);
        let groups = cooccurrence_groups(4, 2, 9);
        for (g, st) in groups.iter().zip(&subtasks) {
            for &label in st.labels() {
                assert!(g.contains(&label));
            }
        }
    }

    #[test]
    fn testbed_has_ten_nanos_and_ten_pis() {
        use crate::resources::DeviceClass;
        let synth = Synthesizer::new(SynthSpec::toy(), 1);
        let spec = PartitionSpec::new(20, Partitioner::LabelSkew { m: 2 });
        let w = SimWorld::testbed(synth, spec, 9, None, 5).expect("valid 20-device testbed spec");
        let nanos = w.devices.iter().filter(|d| d.resources.class == DeviceClass::MobileSoc).count();
        assert_eq!(nanos, 10);
        assert_eq!(w.num_devices(), 20);
        // Nanos are ~10× faster than Pis, as in the real hardware.
        let nano_speed = w.devices[0].resources.flops_per_sec;
        let pi_speed = w.devices[19].resources.flops_per_sec;
        assert!(nano_speed / pi_speed > 5.0);
    }

    #[test]
    fn testbed_rejects_wrong_population_size() {
        let synth = Synthesizer::new(SynthSpec::toy(), 1);
        let spec = PartitionSpec::new(8, Partitioner::Iid);
        match SimWorld::testbed(synth, spec, 9, None, 5) {
            Err(RunError::InvalidConfig(msg)) => {
                assert!(msg.contains("20 devices"), "unhelpful error: {msg}");
                assert!(msg.contains('8'), "error should name the bad count: {msg}");
            }
            Err(e) => panic!("wrong error variant: {e}"),
            Ok(_) => panic!("8-device testbed spec must be rejected"),
        }
    }

    #[test]
    fn background_procs_fluctuate_over_slots() {
        let mut w = world(20, false);
        w.advance_slot();
        let any_busy = w.devices.iter().any(|d| d.resources.background_procs > 0);
        assert!(any_busy, "no device picked up background load");
    }
}
