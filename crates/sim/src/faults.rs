//! Fault injection for dynamic edge environments.
//!
//! Real edge deployments lose devices mid-round, wait on stragglers,
//! retry over flaky links and occasionally receive garbage updates
//! (OOM-killed trainers, fp16 overflow, bit-flips in transit). This
//! module models those failure modes as a seeded [`FaultPlan`] attached
//! to the [`SimWorld`](crate::world::SimWorld): every strategy that runs
//! on the same world sees the *same* injected faults, so robustness
//! comparisons are apples-to-apples.
//!
//! Determinism: each device's per-round [`DeviceFate`] is drawn from a
//! dedicated RNG seeded by `hash(plan.seed, round, device)`. The world's
//! main RNG stream is never consumed, so a [`FaultPlan::none`] run is
//! bit-for-bit identical to a run without any fault plumbing.

use nebula_core::ModuleUpdate;
use nebula_tensor::NebulaRng;
use serde::{Deserialize, Serialize};

/// What kind of garbage a corrupted update carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CorruptionKind {
    /// Sparse NaNs poison the parameters (fp overflow / bit-flips).
    NanPoison,
    /// All parameters blown up by [`FaultPlan::explode_scale`]
    /// (diverged local training).
    Exploding,
}

/// Seeded description of the faults a population experiences.
///
/// All probabilities are per device per round. `none()` disables every
/// fault and is the default on a fresh world.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed of the fault process, independent of the world seed.
    pub seed: u64,
    /// P(device never starts the round).
    pub dropout_prob: f64,
    /// P(device trains but crashes before uploading).
    pub crash_prob: f64,
    /// P(device straggles this round).
    pub straggler_prob: f64,
    /// Max compute slowdown of a straggler (draws uniform in `[1, this]`).
    pub straggler_slowdown: f64,
    /// P(device's link flakes: transfers retried, bandwidth collapses).
    pub link_flake_prob: f64,
    /// Bandwidth divisor while a link is flaky (≥ 1).
    pub bandwidth_collapse: f64,
    /// P(device's uploaded update is corrupted).
    pub corrupt_prob: f64,
    /// What corruption looks like.
    pub corruption: CorruptionKind,
    /// Multiplier for [`CorruptionKind::Exploding`].
    pub explode_scale: f32,
    /// P(the device's upload frame is corrupted *in transit*). Unlike
    /// [`FaultPlan::corrupt_prob`] — which garbles tensor values inside a
    /// structurally valid message — this flips bytes on the encoded
    /// `nebula-wire` frame, so the CRC check rejects it and the round
    /// loop's retry path (not the sanitize gate) handles it.
    #[serde(default)]
    pub frame_corrupt_prob: f64,
}

impl FaultPlan {
    /// No faults at all; runs are bit-identical to a fault-free build.
    pub fn none() -> Self {
        Self {
            seed: 0,
            dropout_prob: 0.0,
            crash_prob: 0.0,
            straggler_prob: 0.0,
            straggler_slowdown: 1.0,
            link_flake_prob: 0.0,
            bandwidth_collapse: 1.0,
            corrupt_prob: 0.0,
            corruption: CorruptionKind::NanPoison,
            explode_scale: 1e4,
            frame_corrupt_prob: 0.0,
        }
    }

    /// Whether any fault can fire.
    pub fn is_active(&self) -> bool {
        self.dropout_prob > 0.0
            || self.crash_prob > 0.0
            || self.straggler_prob > 0.0
            || self.link_flake_prob > 0.0
            || self.corrupt_prob > 0.0
            || self.frame_corrupt_prob > 0.0
    }

    /// The deterministic fate of `device` in `round`.
    ///
    /// Uses a private RNG keyed by `(seed, round, device)`; repeated calls
    /// return the same fate and nothing else observes the draw.
    pub fn fate(&self, round: u64, device: usize) -> DeviceFate {
        let mut rng = NebulaRng::seed(fate_seed(self.seed, round, device as u64));
        // Fixed draw order so adding a fault kind later never reshuffles
        // the fates of existing kinds.
        let dropped = rng.bernoulli(self.dropout_prob);
        let crashed = rng.bernoulli(self.crash_prob);
        let straggler = rng.bernoulli(self.straggler_prob);
        let slow_u = rng.uniform_f32(0.0, 1.0) as f64;
        let flaky_link = rng.bernoulli(self.link_flake_prob);
        let extra_attempts = rng.below(3) as u32 + 1;
        let corrupt = rng.bernoulli(self.corrupt_prob);
        // New draws go after the existing ones: adding frame corruption
        // must not reshuffle fates drawn by older plans.
        let frame_corrupt = rng.bernoulli(self.frame_corrupt_prob);
        DeviceFate {
            dropped,
            crashed,
            straggler,
            slowdown: if straggler { 1.0 + slow_u * (self.straggler_slowdown - 1.0).max(0.0) } else { 1.0 },
            flaky_link,
            bandwidth_factor: if flaky_link { 1.0 / self.bandwidth_collapse.max(1.0) } else { 1.0 },
            upload_attempts: if flaky_link { 1 + extra_attempts } else { 1 },
            corruption: if corrupt { Some(self.corruption) } else { None },
            frame_corrupt,
        }
    }
}

/// SplitMix64-style mix of (plan seed, round, device) into a fate seed.
fn fate_seed(seed: u64, round: u64, device: u64) -> u64 {
    let mut z = seed ^ round.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ device.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One device's injected faults for one round.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DeviceFate {
    /// Never starts the round (offline / battery / opted out).
    pub dropped: bool,
    /// Trains but dies before the upload lands.
    pub crashed: bool,
    /// Compute slowed this round.
    pub straggler: bool,
    /// Compute slowdown factor (1.0 when not straggling).
    pub slowdown: f64,
    /// Link flaky this round: transfers retried, bandwidth collapsed.
    pub flaky_link: bool,
    /// Multiplier on the device's bandwidth (1.0 when the link is clean).
    pub bandwidth_factor: f64,
    /// Attempts each transfer needs before it succeeds (1 = clean link).
    pub upload_attempts: u32,
    /// Corruption applied to the device's update, if any.
    pub corruption: Option<CorruptionKind>,
    /// The upload frame arrives with flipped bytes (CRC rejects it; the
    /// resend is clean).
    pub frame_corrupt: bool,
}

impl DeviceFate {
    /// A clean fate (what `FaultPlan::none()` always produces).
    pub fn clean() -> Self {
        Self {
            dropped: false,
            crashed: false,
            straggler: false,
            slowdown: 1.0,
            flaky_link: false,
            bandwidth_factor: 1.0,
            upload_attempts: 1,
            corruption: None,
            frame_corrupt: false,
        }
    }
}

/// Robust-orchestration knobs of the round loop (as opposed to the faults
/// themselves): how long the server waits, how often it retries, how much
/// it trusts late arrivals.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RoundPolicy {
    /// Round deadline as a multiple of the median predicted participant
    /// time (derived from the latency model). `None` waits forever —
    /// the seed behaviour.
    pub deadline_factor: Option<f64>,
    /// Upload/download retries before the server gives a device up.
    pub max_retries: u32,
    /// Importance multiplier for accepted-but-late (straggler) updates.
    pub staleness_discount: f32,
    /// Base of the exponential retry backoff, milliseconds.
    pub retry_backoff_base_ms: f64,
}

impl Default for RoundPolicy {
    fn default() -> Self {
        Self { deadline_factor: None, max_retries: 2, staleness_discount: 0.5, retry_backoff_base_ms: 50.0 }
    }
}

/// Exponential backoff before retry `attempt` (0-based): `base · 2^attempt`.
pub fn backoff_ms(base_ms: f64, attempt: u32) -> f64 {
    base_ms * 2f64.powi(attempt.min(16) as i32)
}

/// Per-round robustness accounting, summed over a step/run. Defined in
/// `nebula-core::stats` (with [`CommTracker`](crate::network::CommTracker)
/// and `RoundStats`) so bench bins and telemetry sinks consume one shape;
/// re-exported here for the fault-injection call sites that fill it in.
pub use nebula_core::stats::RoundReport;

/// Applies `kind` to a module update in place (what a corrupted upload
/// looks like when it reaches the cloud).
pub fn corrupt_module_update(update: &mut ModuleUpdate, kind: CorruptionKind, explode_scale: f32) {
    match kind {
        CorruptionKind::NanPoison => {
            for params in update.module_params.values_mut() {
                poison_sparse(params);
            }
            poison_sparse(&mut update.shared_params);
        }
        CorruptionKind::Exploding => {
            for params in update.module_params.values_mut() {
                for p in params.iter_mut() {
                    *p *= explode_scale;
                }
            }
            for p in update.shared_params.iter_mut() {
                *p *= explode_scale;
            }
        }
    }
}

/// Every 5th element → NaN: partial corruption, as a torn write would leave.
fn poison_sparse(params: &mut [f32]) {
    for p in params.iter_mut().step_by(5) {
        *p = f32::NAN;
    }
}

/// Flips 1–4 bytes of an encoded wire frame in place (deterministic in
/// `seed`), modelling transit corruption. Any flip is guaranteed to make
/// `FrameView::parse` fail its CRC check, because the flipped byte always
/// differs from the original.
pub fn corrupt_frame(frame: &mut [u8], seed: u64) {
    if frame.is_empty() {
        return;
    }
    let mut rng = NebulaRng::seed(seed ^ 0xF1A6_F1A6_F1A6_F1A6);
    let flips = rng.below(4) + 1;
    for _ in 0..flips {
        let i = rng.below(frame.len());
        // XOR with a nonzero mask so the byte always changes.
        frame[i] ^= (rng.below(255) as u8) + 1;
    }
}

/// Folds `frac` corrupted contributions into an already-averaged dense
/// parameter vector (FedAvg/HeteroFL have no per-update gate; a poisoned
/// client poisons the mean itself).
pub fn poison_dense_mean(params: &mut [f32], kind: CorruptionKind, explode_scale: f32, corrupt_frac: f32) {
    if corrupt_frac <= 0.0 {
        return;
    }
    match kind {
        // Any NaN term makes the whole mean NaN.
        CorruptionKind::NanPoison => {
            for p in params.iter_mut() {
                *p = f32::NAN;
            }
        }
        // Mean of (1-frac) honest + frac exploded copies of the weights.
        CorruptionKind::Exploding => {
            let m = 1.0 + corrupt_frac * (explode_scale - 1.0);
            for p in params.iter_mut() {
                *p *= m;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn plan(p: f64) -> FaultPlan {
        FaultPlan {
            seed: 7,
            dropout_prob: p,
            crash_prob: p,
            straggler_prob: p,
            straggler_slowdown: 8.0,
            link_flake_prob: p,
            bandwidth_collapse: 10.0,
            corrupt_prob: p,
            corruption: CorruptionKind::NanPoison,
            explode_scale: 1e4,
            frame_corrupt_prob: p,
        }
    }

    #[test]
    fn none_plan_yields_clean_fates() {
        let p = FaultPlan::none();
        assert!(!p.is_active());
        for round in 0..5 {
            for dev in 0..20 {
                assert_eq!(p.fate(round, dev), DeviceFate::clean());
            }
        }
    }

    #[test]
    fn fates_are_deterministic_and_vary_by_key() {
        let p = plan(0.5);
        assert_eq!(p.fate(3, 4), p.fate(3, 4));
        let fates: Vec<DeviceFate> = (0..40).map(|d| p.fate(0, d)).collect();
        // 40 devices at 50% rates: some of each outcome, not all equal.
        assert!(fates.iter().any(|f| f.dropped));
        assert!(fates.iter().any(|f| !f.dropped));
        assert!(fates.iter().any(|f| f.corruption.is_some()));
        // Different rounds reshuffle the fates.
        let other: Vec<DeviceFate> = (0..40).map(|d| p.fate(1, d)).collect();
        assert_ne!(fates, other);
    }

    #[test]
    fn straggler_slowdown_in_range() {
        let p = plan(1.0);
        for d in 0..30 {
            let f = p.fate(0, d);
            assert!(f.straggler);
            assert!(f.slowdown >= 1.0 && f.slowdown <= 8.0, "slowdown {}", f.slowdown);
            assert!(f.upload_attempts >= 2 && f.upload_attempts <= 4);
            assert!((f.bandwidth_factor - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn backoff_doubles() {
        assert_eq!(backoff_ms(50.0, 0), 50.0);
        assert_eq!(backoff_ms(50.0, 1), 100.0);
        assert_eq!(backoff_ms(50.0, 3), 400.0);
    }

    #[test]
    fn corruption_kinds_do_what_they_say() {
        let mut u = ModuleUpdate {
            spec: nebula_modular::SubModelSpec::new(vec![vec![0]]),
            module_params: HashMap::from([((0, 0), vec![1.0f32; 10])]),
            shared_params: vec![2.0f32; 10],
            importance: vec![vec![1.0]],
            data_volume: 10,
        };
        let mut exploded = u.clone();
        corrupt_module_update(&mut u, CorruptionKind::NanPoison, 1e4);
        assert!(u.module_params[&(0, 0)].iter().any(|p| p.is_nan()));
        assert!(u.shared_params.iter().any(|p| p.is_nan()));
        corrupt_module_update(&mut exploded, CorruptionKind::Exploding, 1e4);
        assert!(exploded.shared_params.iter().all(|p| (*p - 2e4).abs() < 1.0));
    }

    #[test]
    fn dense_poisoning_models_a_poisoned_mean() {
        let mut p = vec![1.0f32; 8];
        poison_dense_mean(&mut p, CorruptionKind::Exploding, 100.0, 0.0);
        assert!(p.iter().all(|v| *v == 1.0), "zero fraction must be a no-op");
        poison_dense_mean(&mut p, CorruptionKind::Exploding, 100.0, 0.5);
        assert!(p.iter().all(|v| (*v - 50.5).abs() < 1e-3));
        poison_dense_mean(&mut p, CorruptionKind::NanPoison, 100.0, 0.25);
        assert!(p.iter().all(|v| v.is_nan()));
    }

    #[test]
    fn frame_corruption_is_deterministic_and_changes_bytes() {
        let original: Vec<u8> = (0..64).map(|i| i as u8).collect();
        let mut a = original.clone();
        let mut b = original.clone();
        corrupt_frame(&mut a, 42);
        corrupt_frame(&mut b, 42);
        assert_eq!(a, b, "same seed must corrupt identically");
        assert_ne!(a, original, "corruption must change at least one byte");
        let mut c = original.clone();
        corrupt_frame(&mut c, 43);
        // Different seeds almost surely corrupt differently (fixed seeds
        // here, so this is deterministic, not flaky).
        assert_ne!(a, c);
        // Empty frames are a no-op, not a panic.
        corrupt_frame(&mut [], 1);
    }

    #[test]
    fn frame_corrupt_fates_fire_independently_of_value_corruption() {
        let p = FaultPlan { frame_corrupt_prob: 1.0, ..FaultPlan::none() };
        for d in 0..10 {
            let f = p.fate(0, d);
            assert!(f.frame_corrupt);
            assert!(f.corruption.is_none());
        }
        assert!(p.is_active());
    }
}
