//! Fault injection for dynamic edge environments.
//!
//! Real edge deployments lose devices mid-round, wait on stragglers,
//! retry over flaky links and occasionally receive garbage updates
//! (OOM-killed trainers, fp16 overflow, bit-flips in transit). This
//! module models those failure modes as a seeded [`FaultPlan`] attached
//! to the [`SimWorld`](crate::world::SimWorld): every strategy that runs
//! on the same world sees the *same* injected faults, so robustness
//! comparisons are apples-to-apples.
//!
//! Determinism: each device's per-round [`DeviceFate`] is drawn from a
//! dedicated RNG seeded by `hash(plan.seed, round, device)`. The world's
//! main RNG stream is never consumed, so a [`FaultPlan::none`] run is
//! bit-for-bit identical to a run without any fault plumbing.

use nebula_core::ModuleUpdate;
use nebula_tensor::NebulaRng;
use serde::{Deserialize, Serialize};

/// What kind of garbage a corrupted update carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CorruptionKind {
    /// Sparse NaNs poison the parameters (fp overflow / bit-flips).
    NanPoison,
    /// All parameters blown up by [`FaultPlan::explode_scale`]
    /// (diverged local training).
    Exploding,
}

/// How a malicious device perturbs its contribution before upload.
///
/// Personas model *adversaries*, not accidents: the device trains
/// normally (its update looks structurally valid and finite) and then
/// applies a targeted perturbation. Magnitudes live on the
/// [`AdversaryPlan`] (the [`FaultPlan::explode_scale`] convention), so
/// the persona itself stays a plain tag.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttackPersona {
    /// Upload `−scale · params`: steers the aggregate away from the
    /// honest direction (model poisoning).
    SignFlip,
    /// Add seeded gaussian noise to every parameter (stealthy poisoning).
    GaussianNoise,
    /// Upload `scale · params`: amplifies the device's own influence
    /// while staying finite (and, for modest scales, under the sanitize
    /// gate's norm-outlier radar).
    ScaledUpdate,
    /// Leave parameters untouched but inflate reported importance and
    /// data volume, capturing the importance-weighted average (the
    /// federated-MoE gate-load-gaming concern).
    GateGaming,
}

/// Seeded description of an adversarial cohort inside the population.
///
/// Malice is a *persistent role*: whether a device is malicious is drawn
/// once per device from `seed` (not per round), matching how compromised
/// clients behave in practice. `none()` disables the adversary entirely
/// and is the `Default`, so serialized plans from before this field
/// existed deserialize unchanged.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct AdversaryPlan {
    /// Seed of the adversary process, independent of the fault seed.
    pub seed: u64,
    /// Fraction of the device population that is malicious.
    pub frac: f64,
    /// What malicious devices do.
    pub persona: AttackPersona,
    /// Colluding cohort: all attackers share one per-round attack seed,
    /// so e.g. their gaussian perturbations align instead of cancelling.
    pub collude: bool,
    /// Multiplier for [`AttackPersona::ScaledUpdate`] and the magnitude
    /// of [`AttackPersona::SignFlip`].
    pub scale: f32,
    /// Noise std for [`AttackPersona::GaussianNoise`].
    pub noise_std: f32,
    /// Importance/volume multiplier for [`AttackPersona::GateGaming`].
    pub inflation: f32,
}

impl AdversaryPlan {
    /// No adversary; runs are bit-identical to an adversary-free build.
    pub fn none() -> Self {
        Self {
            seed: 0,
            frac: 0.0,
            persona: AttackPersona::ScaledUpdate,
            collude: false,
            scale: 8.0,
            noise_std: 1.0,
            inflation: 100.0,
        }
    }

    /// Whether any device can be malicious.
    pub fn is_active(&self) -> bool {
        self.frac > 0.0
    }

    /// The persistent malicious role of `device`, if any. Drawn from a
    /// dedicated RNG keyed by `(seed, device)` — rounds never reshuffle
    /// who is compromised.
    pub fn malicious(&self, device: usize) -> Option<AttackPersona> {
        if self.frac <= 0.0 {
            return None;
        }
        let mut rng = NebulaRng::seed(fate_seed(self.seed ^ 0xBAD_F00D, 0, device as u64));
        rng.bernoulli(self.frac).then_some(self.persona)
    }

    /// The seed a malicious `device` perturbs with in `round`. Colluders
    /// share one seed per round (their perturbations align); lone wolves
    /// get independent ones.
    pub fn attack_seed(&self, round: u64, device: usize) -> u64 {
        let who = if self.collude { u64::MAX } else { device as u64 };
        fate_seed(self.seed ^ 0xAD5E_AD5E, round, who)
    }
}

impl Default for AdversaryPlan {
    fn default() -> Self {
        Self::none()
    }
}

/// Seeded description of the faults a population experiences.
///
/// All probabilities are per device per round. `none()` disables every
/// fault and is the default on a fresh world.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed of the fault process, independent of the world seed.
    pub seed: u64,
    /// P(device never starts the round).
    pub dropout_prob: f64,
    /// P(device trains but crashes before uploading).
    pub crash_prob: f64,
    /// P(device straggles this round).
    pub straggler_prob: f64,
    /// Max compute slowdown of a straggler (draws uniform in `[1, this]`).
    pub straggler_slowdown: f64,
    /// P(device's link flakes: transfers retried, bandwidth collapses).
    pub link_flake_prob: f64,
    /// Bandwidth divisor while a link is flaky (≥ 1).
    pub bandwidth_collapse: f64,
    /// P(device's uploaded update is corrupted).
    pub corrupt_prob: f64,
    /// What corruption looks like.
    pub corruption: CorruptionKind,
    /// Multiplier for [`CorruptionKind::Exploding`].
    pub explode_scale: f32,
    /// P(the device's upload frame is corrupted *in transit*). Unlike
    /// [`FaultPlan::corrupt_prob`] — which garbles tensor values inside a
    /// structurally valid message — this flips bytes on the encoded
    /// `nebula-wire` frame, so the CRC check rejects it and the round
    /// loop's retry path (not the sanitize gate) handles it.
    #[serde(default)]
    pub frame_corrupt_prob: f64,
    /// The adversarial cohort, if any (defaults to none, so plans
    /// serialized before adversaries existed still deserialize).
    #[serde(default)]
    pub adversary: AdversaryPlan,
}

impl FaultPlan {
    /// No faults at all; runs are bit-identical to a fault-free build.
    pub fn none() -> Self {
        Self {
            seed: 0,
            dropout_prob: 0.0,
            crash_prob: 0.0,
            straggler_prob: 0.0,
            straggler_slowdown: 1.0,
            link_flake_prob: 0.0,
            bandwidth_collapse: 1.0,
            corrupt_prob: 0.0,
            corruption: CorruptionKind::NanPoison,
            explode_scale: 1e4,
            frame_corrupt_prob: 0.0,
            adversary: AdversaryPlan::none(),
        }
    }

    /// Whether any fault can fire.
    pub fn is_active(&self) -> bool {
        self.dropout_prob > 0.0
            || self.crash_prob > 0.0
            || self.straggler_prob > 0.0
            || self.link_flake_prob > 0.0
            || self.corrupt_prob > 0.0
            || self.frame_corrupt_prob > 0.0
            || self.adversary.is_active()
    }

    /// The deterministic fate of `device` in `round`.
    ///
    /// Uses a private RNG keyed by `(seed, round, device)`; repeated calls
    /// return the same fate and nothing else observes the draw.
    pub fn fate(&self, round: u64, device: usize) -> DeviceFate {
        let mut rng = NebulaRng::seed(fate_seed(self.seed, round, device as u64));
        // Fixed draw order so adding a fault kind later never reshuffles
        // the fates of existing kinds.
        let dropped = rng.bernoulli(self.dropout_prob);
        let crashed = rng.bernoulli(self.crash_prob);
        let straggler = rng.bernoulli(self.straggler_prob);
        let slow_u = rng.uniform_f32(0.0, 1.0) as f64;
        let flaky_link = rng.bernoulli(self.link_flake_prob);
        let extra_attempts = rng.below(3) as u32 + 1;
        let corrupt = rng.bernoulli(self.corrupt_prob);
        // New draws go after the existing ones: adding frame corruption
        // must not reshuffle fates drawn by older plans.
        let frame_corrupt = rng.bernoulli(self.frame_corrupt_prob);
        DeviceFate {
            dropped,
            crashed,
            straggler,
            slowdown: if straggler { 1.0 + slow_u * (self.straggler_slowdown - 1.0).max(0.0) } else { 1.0 },
            flaky_link,
            bandwidth_factor: if flaky_link { 1.0 / self.bandwidth_collapse.max(1.0) } else { 1.0 },
            upload_attempts: if flaky_link { 1 + extra_attempts } else { 1 },
            corruption: if corrupt { Some(self.corruption) } else { None },
            frame_corrupt,
            // Drawn from the adversary's own RNG, not the fate RNG: the
            // fixed draw order above is untouched, and roles persist
            // across rounds.
            malicious: self.adversary.malicious(device),
        }
    }
}

/// SplitMix64-style mix of (plan seed, round, device) into a fate seed.
fn fate_seed(seed: u64, round: u64, device: u64) -> u64 {
    let mut z = seed ^ round.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ device.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One device's injected faults for one round.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DeviceFate {
    /// Never starts the round (offline / battery / opted out).
    pub dropped: bool,
    /// Trains but dies before the upload lands.
    pub crashed: bool,
    /// Compute slowed this round.
    pub straggler: bool,
    /// Compute slowdown factor (1.0 when not straggling).
    pub slowdown: f64,
    /// Link flaky this round: transfers retried, bandwidth collapsed.
    pub flaky_link: bool,
    /// Multiplier on the device's bandwidth (1.0 when the link is clean).
    pub bandwidth_factor: f64,
    /// Attempts each transfer needs before it succeeds (1 = clean link).
    pub upload_attempts: u32,
    /// Corruption applied to the device's update, if any.
    pub corruption: Option<CorruptionKind>,
    /// The upload frame arrives with flipped bytes (CRC rejects it; the
    /// resend is clean).
    pub frame_corrupt: bool,
    /// The device's persistent malicious role, if any.
    pub malicious: Option<AttackPersona>,
}

impl DeviceFate {
    /// A clean fate (what `FaultPlan::none()` always produces).
    pub fn clean() -> Self {
        Self {
            dropped: false,
            crashed: false,
            straggler: false,
            slowdown: 1.0,
            flaky_link: false,
            bandwidth_factor: 1.0,
            upload_attempts: 1,
            corruption: None,
            frame_corrupt: false,
            malicious: None,
        }
    }
}

/// Robust-orchestration knobs of the round loop (as opposed to the faults
/// themselves): how long the server waits, how often it retries, how much
/// it trusts late arrivals.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RoundPolicy {
    /// Round deadline as a multiple of the median predicted participant
    /// time (derived from the latency model). `None` waits forever —
    /// the seed behaviour.
    pub deadline_factor: Option<f64>,
    /// Upload/download retries before the server gives a device up.
    pub max_retries: u32,
    /// Importance multiplier for accepted-but-late (straggler) updates.
    pub staleness_discount: f32,
    /// Base of the exponential retry backoff, milliseconds.
    pub retry_backoff_base_ms: f64,
}

impl Default for RoundPolicy {
    fn default() -> Self {
        Self { deadline_factor: None, max_retries: 2, staleness_discount: 0.5, retry_backoff_base_ms: 50.0 }
    }
}

impl RoundPolicy {
    /// The policy's retry budget in the shared `core::retry` shape, used
    /// by the round paths and the socket transports alike.
    pub fn retry_policy(&self) -> nebula_core::RetryPolicy {
        nebula_core::RetryPolicy {
            max_retries: self.max_retries,
            backoff_base_ms: self.retry_backoff_base_ms,
        }
    }
}

/// Exponential backoff before retry `attempt` (0-based): `base · 2^attempt`.
/// Defined in `nebula-core::retry` (shared with the serving plane);
/// re-exported here for the fault-injection call sites.
pub use nebula_core::retry::backoff_ms;

/// Per-round robustness accounting, summed over a step/run. Defined in
/// `nebula-core::stats` (with [`CommTracker`](crate::network::CommTracker)
/// and `RoundStats`) so bench bins and telemetry sinks consume one shape;
/// re-exported here for the fault-injection call sites that fill it in.
pub use nebula_core::stats::RoundReport;

/// Fraction of elements a [`CorruptionKind::NanPoison`] event poisons —
/// partial corruption, as a torn write would leave.
const NAN_POISON_FRAC: f32 = 0.2;

/// The shared corruption core: applies `f` to `ceil(frac · len)` distinct
/// seeded-random elements of `params`. A nonzero fraction always corrupts
/// at least one element, even on slices short enough that the product
/// rounds to zero — a poisoned short tensor must not silently pass clean.
pub fn corrupt_elements(params: &mut [f32], frac: f32, rng: &mut NebulaRng, mut f: impl FnMut(&mut f32)) {
    if params.is_empty() || frac <= 0.0 {
        return;
    }
    let k = ((frac.clamp(0.0, 1.0) * params.len() as f32).ceil() as usize).clamp(1, params.len());
    for i in rng.sample_indices(params.len(), k) {
        f(&mut params[i]);
    }
}

/// Visits every parameter tensor of an update in a deterministic order
/// (module keys in `(layer, index)` order — `module_params` is a
/// `BTreeMap` — then the shared part): corruption and attacks that
/// consume RNG draws see a stable tensor sequence.
fn for_each_tensor(update: &mut ModuleUpdate, mut f: impl FnMut(&mut [f32])) {
    for params in update.module_params.values_mut() {
        f(params);
    }
    f(&mut update.shared_params);
}

/// Applies `kind` to a module update in place (what a corrupted upload
/// looks like when it reaches the cloud). Deterministic in `seed`: call
/// sites key it by (plan seed, round, device) so a replayed round
/// corrupts identically.
pub fn corrupt_module_update(update: &mut ModuleUpdate, kind: CorruptionKind, explode_scale: f32, seed: u64) {
    match kind {
        CorruptionKind::NanPoison => {
            let mut rng = NebulaRng::seed(seed ^ 0x0150_0150_0150_0150);
            for_each_tensor(update, |params| {
                corrupt_elements(params, NAN_POISON_FRAC, &mut rng, |p| *p = f32::NAN)
            });
        }
        CorruptionKind::Exploding => {
            for_each_tensor(update, |params| {
                for p in params.iter_mut() {
                    *p *= explode_scale;
                }
            });
        }
    }
}

/// Applies a malicious persona to a device's own update before upload.
///
/// `seed` comes from [`AdversaryPlan::attack_seed`], so colluding
/// attackers perturb identically within a round while lone attackers
/// draw independently.
pub fn apply_attack(update: &mut ModuleUpdate, plan: &AdversaryPlan, seed: u64) {
    match plan.persona {
        AttackPersona::SignFlip => {
            for_each_tensor(update, |params| {
                for p in params.iter_mut() {
                    *p *= -plan.scale;
                }
            });
        }
        AttackPersona::ScaledUpdate => {
            for_each_tensor(update, |params| {
                for p in params.iter_mut() {
                    *p *= plan.scale;
                }
            });
        }
        AttackPersona::GaussianNoise => {
            let mut rng = NebulaRng::seed(seed ^ 0x6A05_6A05_6A05_6A05);
            for_each_tensor(update, |params| {
                for p in params.iter_mut() {
                    *p += rng.normal_f32(0.0, plan.noise_std);
                }
            });
        }
        AttackPersona::GateGaming => {
            // Parameters stay honest-looking; the lie is in the weights
            // the importance-weighted average trusts.
            for row in &mut update.importance {
                for w in row.iter_mut() {
                    *w *= plan.inflation;
                }
            }
            update.data_volume =
                (((update.data_volume as f32) * plan.inflation).round() as usize).max(update.data_volume);
        }
    }
}

/// Flips 1–4 bytes of an encoded wire frame in place (deterministic in
/// `seed`), modelling transit corruption. Any flip is guaranteed to make
/// `FrameView::parse` fail its CRC check, because the flipped byte always
/// differs from the original.
pub fn corrupt_frame(frame: &mut [u8], seed: u64) {
    if frame.is_empty() {
        return;
    }
    let mut rng = NebulaRng::seed(seed ^ 0xF1A6_F1A6_F1A6_F1A6);
    let flips = rng.below(4) + 1;
    for _ in 0..flips {
        let i = rng.below(frame.len());
        // XOR with a nonzero mask so the byte always changes.
        frame[i] ^= (rng.below(255) as u8) + 1;
    }
}

/// Forge a frame the way a protocol-aware attacker would: flip one body
/// byte and *recompute the CRC trailer*, so the tamper sails through an
/// integrity-only check. Against unauthenticated v1 frames this forgery
/// can decode as legitimate data; only a keyed MAC
/// ([`nebula_wire::FrameKey`]) rejects it, which is exactly what the
/// `wire.rejects_auth` telemetry measures.
pub fn forge_frame(frame: &mut [u8], seed: u64) {
    use nebula_wire::frame::{FLAG_AUTH, HEADER_LEN, MAC_LEN, TRAILER_LEN};
    if frame.len() < HEADER_LEN + TRAILER_LEN {
        return;
    }
    let authed = frame[7] & FLAG_AUTH != 0;
    let body_end = frame.len() - TRAILER_LEN - if authed { MAC_LEN } else { 0 };
    let span = body_end.saturating_sub(HEADER_LEN);
    if span == 0 {
        return;
    }
    let mut rng = NebulaRng::seed(seed ^ 0xF063_F063_F063_F063);
    let i = HEADER_LEN + rng.below(span);
    frame[i] ^= (rng.below(255) as u8) + 1;
    let crc = nebula_wire::crc32(&frame[..body_end]).to_le_bytes();
    frame[body_end..body_end + TRAILER_LEN].copy_from_slice(&crc);
}

/// Folds `frac` corrupted contributions into an already-averaged dense
/// parameter vector (FedAvg/HeteroFL have no per-update gate; a poisoned
/// client poisons the mean itself). Deterministic in `seed` — key it by
/// (plan seed, round) so a resumed run poisons the same coordinates.
pub fn poison_dense_mean(
    params: &mut [f32],
    kind: CorruptionKind,
    explode_scale: f32,
    corrupt_frac: f32,
    seed: u64,
) {
    if corrupt_frac <= 0.0 {
        return;
    }
    match kind {
        // Torn-write NaNs in the corrupted clients' vectors surface as
        // NaN at those coordinates of the mean: seeded, sparse (≥ 1 even
        // on short slices), via the shared corruption core.
        CorruptionKind::NanPoison => {
            let mut rng = NebulaRng::seed(seed ^ 0x0150_0150_0150_0150);
            corrupt_elements(params, corrupt_frac, &mut rng, |p| *p = f32::NAN);
        }
        // Mean of (1-frac) honest + frac exploded copies of the weights.
        CorruptionKind::Exploding => {
            let m = 1.0 + corrupt_frac * (explode_scale - 1.0);
            for p in params.iter_mut() {
                *p *= m;
            }
        }
    }
}

/// Folds a malicious cohort of fraction `frac` into an already-averaged
/// dense parameter vector — the persona analogue of
/// [`poison_dense_mean`] for the flat-model baselines:
///
/// * `ScaledUpdate` — mean of `(1−frac)` honest + `frac` scaled copies.
/// * `SignFlip` — attackers contribute `−scale · params`.
/// * `GaussianNoise` — attackers' noise survives the average at weight
///   `frac` (colluding attackers add the *same* noise, so it does not
///   cancel; this models that worst case).
/// * `GateGaming` — no-op: dense baselines have no gates or importance
///   weights to game.
pub fn attack_dense_mean(params: &mut [f32], plan: &AdversaryPlan, frac: f32, seed: u64) {
    if frac <= 0.0 {
        return;
    }
    match plan.persona {
        AttackPersona::ScaledUpdate => {
            let m = 1.0 + frac * (plan.scale - 1.0);
            for p in params.iter_mut() {
                *p *= m;
            }
        }
        AttackPersona::SignFlip => {
            let m = 1.0 - frac * (1.0 + plan.scale);
            for p in params.iter_mut() {
                *p *= m;
            }
        }
        AttackPersona::GaussianNoise => {
            let mut rng = NebulaRng::seed(seed ^ 0x6A05_6A05_6A05_6A05);
            for p in params.iter_mut() {
                *p += frac * rng.normal_f32(0.0, plan.noise_std);
            }
        }
        AttackPersona::GateGaming => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn plan(p: f64) -> FaultPlan {
        FaultPlan {
            seed: 7,
            dropout_prob: p,
            crash_prob: p,
            straggler_prob: p,
            straggler_slowdown: 8.0,
            link_flake_prob: p,
            bandwidth_collapse: 10.0,
            corrupt_prob: p,
            corruption: CorruptionKind::NanPoison,
            explode_scale: 1e4,
            frame_corrupt_prob: p,
            adversary: AdversaryPlan::none(),
        }
    }

    fn toy_update(n: usize) -> ModuleUpdate {
        ModuleUpdate {
            spec: nebula_modular::SubModelSpec::new(vec![vec![0]]),
            module_params: BTreeMap::from([((0, 0), vec![1.0f32; n])]),
            shared_params: vec![2.0f32; n],
            importance: vec![vec![1.0]],
            data_volume: 10,
        }
    }

    #[test]
    fn none_plan_yields_clean_fates() {
        let p = FaultPlan::none();
        assert!(!p.is_active());
        for round in 0..5 {
            for dev in 0..20 {
                assert_eq!(p.fate(round, dev), DeviceFate::clean());
            }
        }
    }

    #[test]
    fn fates_are_deterministic_and_vary_by_key() {
        let p = plan(0.5);
        assert_eq!(p.fate(3, 4), p.fate(3, 4));
        let fates: Vec<DeviceFate> = (0..40).map(|d| p.fate(0, d)).collect();
        // 40 devices at 50% rates: some of each outcome, not all equal.
        assert!(fates.iter().any(|f| f.dropped));
        assert!(fates.iter().any(|f| !f.dropped));
        assert!(fates.iter().any(|f| f.corruption.is_some()));
        // Different rounds reshuffle the fates.
        let other: Vec<DeviceFate> = (0..40).map(|d| p.fate(1, d)).collect();
        assert_ne!(fates, other);
    }

    #[test]
    fn straggler_slowdown_in_range() {
        let p = plan(1.0);
        for d in 0..30 {
            let f = p.fate(0, d);
            assert!(f.straggler);
            assert!(f.slowdown >= 1.0 && f.slowdown <= 8.0, "slowdown {}", f.slowdown);
            assert!(f.upload_attempts >= 2 && f.upload_attempts <= 4);
            assert!((f.bandwidth_factor - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn backoff_doubles() {
        assert_eq!(backoff_ms(50.0, 0), 50.0);
        assert_eq!(backoff_ms(50.0, 1), 100.0);
        assert_eq!(backoff_ms(50.0, 3), 400.0);
    }

    #[test]
    fn corruption_kinds_do_what_they_say() {
        let mut u = toy_update(10);
        let mut exploded = u.clone();
        corrupt_module_update(&mut u, CorruptionKind::NanPoison, 1e4, 99);
        assert!(u.module_params[&(0, 0)].iter().any(|p| p.is_nan()));
        assert!(u.shared_params.iter().any(|p| p.is_nan()));
        // Sparse, not total: honest values survive alongside the NaNs.
        assert!(u.shared_params.iter().any(|p| p.is_finite()));
        // Deterministic in the seed, different across seeds.
        let mut again = toy_update(10);
        corrupt_module_update(&mut again, CorruptionKind::NanPoison, 1e4, 99);
        let nan_mask =
            |u: &ModuleUpdate| -> Vec<bool> { u.shared_params.iter().map(|p| p.is_nan()).collect() };
        assert_eq!(nan_mask(&u), nan_mask(&again));
        corrupt_module_update(&mut exploded, CorruptionKind::Exploding, 1e4, 99);
        assert!(exploded.shared_params.iter().all(|p| (*p - 2e4).abs() < 1.0));
    }

    #[test]
    fn dense_poisoning_models_a_poisoned_mean() {
        let mut p = vec![1.0f32; 8];
        poison_dense_mean(&mut p, CorruptionKind::Exploding, 100.0, 0.0, 5);
        assert!(p.iter().all(|v| *v == 1.0), "zero fraction must be a no-op");
        poison_dense_mean(&mut p, CorruptionKind::Exploding, 100.0, 0.5, 5);
        assert!(p.iter().all(|v| (*v - 50.5).abs() < 1e-3));
        poison_dense_mean(&mut p, CorruptionKind::NanPoison, 100.0, 0.25, 5);
        assert_eq!(p.iter().filter(|v| v.is_nan()).count(), 2, "ceil(0.25·8) coordinates");
        assert!(p.iter().any(|v| v.is_finite()), "sparse poison leaves honest coordinates");
        // Determinism: same seed poisons the same coordinates.
        let mut q = vec![1.0f32; 8];
        poison_dense_mean(&mut q, CorruptionKind::Exploding, 100.0, 0.5, 5);
        poison_dense_mean(&mut q, CorruptionKind::NanPoison, 100.0, 0.25, 5);
        let mask = |v: &[f32]| -> Vec<bool> { v.iter().map(|x| x.is_nan()).collect() };
        assert_eq!(mask(&p), mask(&q));
    }

    #[test]
    fn short_slice_nonzero_fraction_still_corrupts() {
        // The edge case: 0.1 of 3 elements rounds to 0.3 → used to be
        // able to corrupt nothing; the core guarantees at least one.
        let mut p = vec![1.0f32; 3];
        poison_dense_mean(&mut p, CorruptionKind::NanPoison, 1.0, 0.1, 7);
        assert_eq!(p.iter().filter(|v| v.is_nan()).count(), 1);
        let mut rng = NebulaRng::seed(1);
        let mut single = vec![1.0f32];
        corrupt_elements(&mut single, 0.01, &mut rng, |v| *v = 0.0);
        assert_eq!(single, vec![0.0]);
    }

    // --- attack personas --------------------------------------------------

    fn adversary(persona: AttackPersona) -> AdversaryPlan {
        AdversaryPlan { frac: 0.3, persona, seed: 11, ..AdversaryPlan::none() }
    }

    #[test]
    fn malicious_roles_are_persistent_and_proportional() {
        let adv = adversary(AttackPersona::SignFlip);
        let roles: Vec<Option<AttackPersona>> = (0..200).map(|d| adv.malicious(d)).collect();
        let evil = roles.iter().filter(|r| r.is_some()).count();
        assert!((30..90).contains(&evil), "≈30% of 200 expected, got {evil}");
        // Role is per device, not per round: fate() reports the same
        // persona in every round.
        let plan = FaultPlan { adversary: adv, ..FaultPlan::none() };
        for d in 0..20 {
            assert_eq!(plan.fate(0, d).malicious, plan.fate(5, d).malicious);
            assert_eq!(plan.fate(0, d).malicious, adv.malicious(d));
        }
        assert!(plan.is_active());
    }

    #[test]
    fn personas_perturb_as_documented() {
        let mut flip = toy_update(6);
        apply_attack(&mut flip, &adversary(AttackPersona::SignFlip), 3);
        assert!(flip.shared_params.iter().all(|p| (*p + 16.0).abs() < 1e-5), "2 · −8 = −16");

        let mut scaled = toy_update(6);
        apply_attack(&mut scaled, &adversary(AttackPersona::ScaledUpdate), 3);
        assert!(scaled.shared_params.iter().all(|p| (*p - 16.0).abs() < 1e-5), "2 · 8 = 16");

        let mut noisy = toy_update(6);
        apply_attack(&mut noisy, &adversary(AttackPersona::GaussianNoise), 3);
        assert!(noisy.shared_params.iter().any(|p| (*p - 2.0).abs() > 1e-6));
        assert!(noisy.shared_params.iter().all(|p| p.is_finite()));
        let mut noisy2 = toy_update(6);
        apply_attack(&mut noisy2, &adversary(AttackPersona::GaussianNoise), 3);
        assert_eq!(noisy.shared_params, noisy2.shared_params, "same attack seed, same noise");

        let mut gamed = toy_update(6);
        apply_attack(&mut gamed, &adversary(AttackPersona::GateGaming), 3);
        assert_eq!(gamed.shared_params, toy_update(6).shared_params, "params stay honest");
        assert!((gamed.importance[0][0] - 100.0).abs() < 1e-5);
        assert_eq!(gamed.data_volume, 1000);
    }

    #[test]
    fn colluders_share_attack_seeds_and_lone_wolves_do_not() {
        let collusive = AdversaryPlan { collude: true, ..adversary(AttackPersona::GaussianNoise) };
        assert_eq!(collusive.attack_seed(4, 1), collusive.attack_seed(4, 2));
        assert_ne!(collusive.attack_seed(4, 1), collusive.attack_seed(5, 1), "seeds rotate per round");
        let lone = adversary(AttackPersona::GaussianNoise);
        assert_ne!(lone.attack_seed(4, 1), lone.attack_seed(4, 2));
    }

    #[test]
    fn plans_without_adversary_field_deserialize_to_none() {
        // Strip the (last-serialized) adversary field to simulate a plan
        // written before adversaries existed.
        let full = serde_json::to_string(&FaultPlan::none()).unwrap();
        let at = full.find(",\"adversary\"").expect("adversary field serialized last");
        let stripped = format!("{}}}", &full[..at]);
        let plan: FaultPlan = serde_json::from_str(&stripped).unwrap();
        assert_eq!(plan.adversary, AdversaryPlan::none());
        assert_eq!(plan, FaultPlan::none());
    }

    #[test]
    fn frame_corruption_is_deterministic_and_changes_bytes() {
        let original: Vec<u8> = (0..64).map(|i| i as u8).collect();
        let mut a = original.clone();
        let mut b = original.clone();
        corrupt_frame(&mut a, 42);
        corrupt_frame(&mut b, 42);
        assert_eq!(a, b, "same seed must corrupt identically");
        assert_ne!(a, original, "corruption must change at least one byte");
        let mut c = original.clone();
        corrupt_frame(&mut c, 43);
        // Different seeds almost surely corrupt differently (fixed seeds
        // here, so this is deterministic, not flaky).
        assert_ne!(a, c);
        // Empty frames are a no-op, not a panic.
        corrupt_frame(&mut [], 1);
    }

    #[test]
    fn frame_corrupt_fates_fire_independently_of_value_corruption() {
        let p = FaultPlan { frame_corrupt_prob: 1.0, ..FaultPlan::none() };
        for d in 0..10 {
            let f = p.fate(0, d);
            assert!(f.frame_corrupt);
            assert!(f.corruption.is_none());
        }
        assert!(p.is_active());
    }
}
