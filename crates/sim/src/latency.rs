//! Latency estimation for on-device training and inference.
//!
//! The paper's Fig. 2(c) and Fig. 9 report per-batch training latency and
//! peak memory. We estimate both from the cost model: a training step
//! costs roughly `3×` the forward MACs (forward + input-grad + weight-grad
//! products), scaled by the device's throughput and its contention
//! multiplier.

use crate::contention::contention_multiplier;
use crate::resources::DeviceResources;

/// Forward-to-training flops multiplier (fwd + two backward GEMMs).
pub const TRAIN_FLOPS_FACTOR: f64 = 3.0;

/// Per-batch training latency in milliseconds.
pub fn training_batch_latency_ms(dev: &DeviceResources, forward_flops_per_sample: u64, batch: usize) -> f64 {
    let flops = forward_flops_per_sample as f64 * batch as f64 * TRAIN_FLOPS_FACTOR;
    flops / dev.flops_per_sec * 1e3 * contention_multiplier(dev.background_procs)
}

/// Per-sample inference latency in milliseconds.
pub fn inference_latency_ms(dev: &DeviceResources, forward_flops_per_sample: u64) -> f64 {
    forward_flops_per_sample as f64 / dev.flops_per_sec * 1e3 * contention_multiplier(dev.background_procs)
}

/// Wall-clock for an adaptation: `epochs` over `samples` local samples in
/// batches of `batch`, in milliseconds.
pub fn adaptation_latency_ms(
    dev: &DeviceResources,
    forward_flops_per_sample: u64,
    samples: usize,
    epochs: usize,
    batch: usize,
) -> f64 {
    let batches_per_epoch = samples.div_ceil(batch.max(1));
    training_batch_latency_ms(dev, forward_flops_per_sample, batch) * (batches_per_epoch * epochs) as f64
}

/// One participant's share of a synchronous communication round.
#[derive(Clone, Copy, Debug)]
pub struct RoundParticipant {
    /// Forward MACs per sample of the model this device trains.
    pub forward_flops_per_sample: u64,
    /// Bytes exchanged with the cloud (download + upload).
    pub exchange_bytes: u64,
    /// Local samples and epochs.
    pub samples: usize,
    pub epochs: usize,
    pub batch: usize,
}

/// Wall-clock of a synchronous round: the server waits for the **slowest**
/// participant (straggler effect), each of whom pays transfer + local
/// training. Returns `(round_ms, straggler_index)`.
pub fn synchronous_round_ms(devices: &[&DeviceResources], work: &[RoundParticipant]) -> (f64, usize) {
    assert_eq!(devices.len(), work.len(), "device/work length mismatch");
    assert!(!devices.is_empty(), "round with no participants");
    let mut worst = (0.0f64, 0usize);
    for (i, (dev, w)) in devices.iter().zip(work).enumerate() {
        let t = adaptation_latency_ms(dev, w.forward_flops_per_sample, w.samples, w.epochs, w.batch)
            + crate::network::transfer_time_ms(w.exchange_bytes, dev.bandwidth_bps);
        if t > worst.0 {
            worst = (t, i);
        }
    }
    (worst.0, worst.1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::{DeviceClass, DeviceResources};

    fn dev(flops_per_sec: f64, procs: usize) -> DeviceResources {
        DeviceResources {
            class: DeviceClass::MobileSoc,
            ram_bytes: 4_000_000_000,
            flops_per_sec,
            bandwidth_bps: 2e7,
            budget_ratio: 0.5,
            background_procs: procs,
        }
    }

    #[test]
    fn training_costs_three_times_inference() {
        let d = dev(1e9, 0);
        let inf = inference_latency_ms(&d, 1_000_000);
        let train = training_batch_latency_ms(&d, 1_000_000, 1);
        assert!((train / inf - 3.0).abs() < 1e-9);
    }

    #[test]
    fn adaptation_scales_with_epochs_and_samples() {
        let d = dev(1e9, 0);
        let one = adaptation_latency_ms(&d, 1_000_000, 100, 1, 10);
        let three = adaptation_latency_ms(&d, 1_000_000, 100, 3, 10);
        assert!((three / one - 3.0).abs() < 1e-9);
        let more_data = adaptation_latency_ms(&d, 1_000_000, 200, 1, 10);
        assert!(more_data > one);
    }

    #[test]
    fn contention_inflates_latency() {
        let calm = inference_latency_ms(&dev(1e9, 0), 1_000_000);
        let busy = inference_latency_ms(&dev(1e9, 3), 1_000_000);
        assert!((busy / calm - 5.06).abs() < 0.01);
    }

    #[test]
    fn faster_device_is_faster() {
        let slow = training_batch_latency_ms(&dev(1e8, 0), 1_000_000, 16);
        let fast = training_batch_latency_ms(&dev(1e10, 0), 1_000_000, 16);
        assert!(fast < slow / 50.0);
    }

    #[test]
    fn synchronous_round_waits_for_the_straggler() {
        let fast = dev(1e10, 0);
        let slow = dev(1e8, 3); // slow hardware + contention
        let work = RoundParticipant {
            forward_flops_per_sample: 1_000_000,
            exchange_bytes: 1_000_000,
            samples: 100,
            epochs: 3,
            batch: 16,
        };
        let (round_ms, straggler) = synchronous_round_ms(&[&fast, &slow], &[work, work]);
        assert_eq!(straggler, 1, "the slow device must be the straggler");
        let slow_alone = adaptation_latency_ms(&slow, 1_000_000, 100, 3, 16)
            + crate::network::transfer_time_ms(1_000_000, slow.bandwidth_bps);
        assert!((round_ms - slow_alone).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "no participants")]
    fn synchronous_round_rejects_empty() {
        synchronous_round_ms(&[], &[]);
    }
}
