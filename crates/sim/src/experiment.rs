//! Experiment drivers shared by the bench binaries.
//!
//! Three shapes cover the paper's evaluation:
//! * [`run_adaptation_step`] — Table 1 / Figs 8–9: offline pre-train, one
//!   adaptation step, per-device evaluation;
//! * `Runner::target(..)` — Fig. 7: communication rounds until a target
//!   accuracy (comm bytes at target);
//! * `Runner::continuous(..)` — Figs 10–11: many drift slots, accuracy per
//!   slot ([`crate::runner::Runner`] is the single driver for both; the
//!   deprecated free-function wrappers were removed after one release).

use crate::faults::RoundReport;
use crate::network::CommTracker;
use crate::strategy::AdaptStrategy;
use crate::world::SimWorld;
use nebula_tensor::NebulaRng;
use serde::Serialize;

pub use crate::durability::{
    ChaosControl, DurabilityConfig, DurableOptions, KillSpot, RoundRecord, RunError, RunState,
};

/// Shared experiment-scale knobs.
#[derive(Clone, Copy, Debug)]
pub struct ExperimentConfig {
    /// Devices evaluated per measurement.
    pub eval_devices: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self { eval_devices: 20, seed: 1 }
    }
}

/// What one adaptation-step experiment produced.
#[derive(Clone, Debug, Serialize)]
pub struct AdaptationOutcome {
    pub strategy: String,
    /// Mean per-device accuracy before the adaptation step (pre-trained
    /// model only).
    pub accuracy_before: f32,
    /// Mean per-device accuracy after the step.
    pub accuracy_after: f32,
    /// Communication during the step.
    #[serde(skip)]
    pub comm: CommTracker,
    pub comm_total_bytes: u64,
    /// Mean on-device adaptation time, ms.
    pub adapt_time_ms: f64,
    /// Mean footprint across evaluated devices.
    pub mean_params: f64,
    pub mean_train_mem_bytes: f64,
    /// Robustness accounting summed over the step's rounds.
    pub faults: RoundReport,
}

/// Offline pre-train, one adaptation step, evaluate `eval_devices`.
pub fn run_adaptation_step(
    strategy: &mut dyn AdaptStrategy,
    world: &mut SimWorld,
    cfg: &ExperimentConfig,
) -> AdaptationOutcome {
    let mut rng = NebulaRng::seed(cfg.seed ^ 0x57EB);
    let eval_ids: Vec<usize> = pick_eval_ids(world, cfg.eval_devices);
    strategy.track(&eval_ids);
    strategy.offline(world, &mut rng);

    let before = mean_accuracy(strategy, world, &eval_ids);
    let report = strategy.adaptation_step(world, &mut rng);
    let after = mean_accuracy(strategy, world, &eval_ids);

    let (mut params, mut mem) = (0.0f64, 0.0f64);
    for &id in &eval_ids {
        let fp = strategy.footprint(world, id);
        params += fp.params as f64;
        mem += fp.train_mem_bytes as f64;
    }
    let n = eval_ids.len().max(1) as f64;

    AdaptationOutcome {
        strategy: strategy.name().to_string(),
        accuracy_before: before,
        accuracy_after: after,
        comm: report.comm,
        comm_total_bytes: report.comm.total_bytes(),
        adapt_time_ms: report.adapt_time_ms,
        mean_params: params / n,
        mean_train_mem_bytes: mem / n,
        faults: report.faults,
    }
}

/// Evenly-spaced evaluation devices (stable across strategies so every
/// system sees the same local tasks).
pub fn pick_eval_ids(world: &SimWorld, n: usize) -> Vec<usize> {
    let total = world.num_devices();
    let n = n.min(total);
    (0..n).map(|i| i * total / n).collect()
}

/// Mean tracked-device accuracy.
pub fn mean_accuracy(strategy: &mut dyn AdaptStrategy, world: &mut SimWorld, ids: &[usize]) -> f32 {
    let mut sum = 0.0;
    for &id in ids {
        sum += strategy.device_accuracy(world, id);
    }
    sum / ids.len().max(1) as f32
}

/// Mean and sample standard deviation of a per-seed metric.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct MeanStd {
    pub mean: f64,
    pub std: f64,
    pub n: usize,
}

impl MeanStd {
    /// Computes mean/std over samples (std = 0 for n < 2).
    pub fn of(samples: &[f64]) -> MeanStd {
        let n = samples.len();
        assert!(n > 0, "MeanStd of empty sample set");
        let mean = samples.iter().sum::<f64>() / n as f64;
        let std = if n < 2 {
            0.0
        } else {
            (samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n - 1) as f64).sqrt()
        };
        MeanStd { mean, std, n }
    }
}

/// Runs [`run_adaptation_step`] under several seeds with freshly-built
/// strategies and worlds, reporting accuracy mean ± std. `build` receives
/// the seed and must construct both.
pub fn run_adaptation_step_multi(
    seeds: &[u64],
    eval_devices: usize,
    mut build: impl FnMut(u64) -> (Box<dyn AdaptStrategy>, SimWorld),
) -> MeanStd {
    assert!(!seeds.is_empty(), "need at least one seed");
    let accs: Vec<f64> = seeds
        .iter()
        .map(|&seed| {
            let (mut s, mut world) = build(seed);
            let out = run_adaptation_step(s.as_mut(), &mut world, &ExperimentConfig { eval_devices, seed });
            out.accuracy_after as f64
        })
        .collect();
    MeanStd::of(&accs)
}

/// Result of a rounds-to-target run.
#[derive(Clone, Debug, Serialize)]
pub struct TargetOutcome {
    pub strategy: String,
    pub reached: bool,
    pub rounds: usize,
    pub comm_total_bytes: u64,
    pub final_accuracy: f32,
    /// Robustness accounting summed over all rounds.
    pub faults: RoundReport,
}

/// Result of a continuous (multi-slot) adaptation run.
#[derive(Clone, Debug, Serialize)]
pub struct ContinuousOutcome {
    pub strategy: String,
    /// Mean tracked-device accuracy after each slot's adaptation.
    pub accuracy_per_slot: Vec<f32>,
    /// Mean on-device adaptation time per slot, ms.
    pub mean_adapt_time_ms: f64,
    /// Robustness accounting summed over all slots.
    pub faults: RoundReport,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::ResourceSampler;
    use crate::runner::Runner;
    use crate::strategy::{NebulaStrategy, NoAdaptStrategy, StrategyConfig};
    use nebula_data::drift::DriftKind;
    use nebula_data::{DriftModel, PartitionSpec, Partitioner, SynthSpec, Synthesizer};
    use nebula_modular::ModularConfig;

    fn toy_world(drift: bool) -> SimWorld {
        let synth = Synthesizer::new(SynthSpec::toy(), 1);
        let spec = PartitionSpec::new(8, Partitioner::LabelSkew { m: 2 });
        let d = drift.then(|| DriftModel::new(0.5, DriftKind::ClassShift { m: 2, group_seed: 9 }));
        SimWorld::new(synth, spec, 9, d, &ResourceSampler::default(), 5)
    }

    fn toy_cfg() -> StrategyConfig {
        let mut modular = ModularConfig::toy(16, 4);
        modular.gate_noise_std = 0.3;
        let mut cfg = StrategyConfig::new(modular);
        cfg.devices_per_round = 4;
        cfg.rounds_per_step = 2;
        cfg.pretrain_epochs = 6;
        cfg.proxy_samples = 300;
        cfg
    }

    #[test]
    fn eval_ids_are_stable_and_distinct() {
        let world = toy_world(false);
        let ids = pick_eval_ids(&world, 4);
        assert_eq!(ids, pick_eval_ids(&world, 4));
        let mut sorted = ids.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), 4);
    }

    #[test]
    fn adaptation_step_outcome_is_sane() {
        let mut world = toy_world(false);
        let mut s = NebulaStrategy::new(toy_cfg(), 1);
        let cfg = ExperimentConfig { eval_devices: 3, seed: 1 };
        let out = run_adaptation_step(&mut s, &mut world, &cfg);
        assert!(out.accuracy_after > 0.3, "accuracy {out:?}");
        assert!(out.comm_total_bytes > 0);
        assert!(out.mean_params > 0.0);
    }

    #[test]
    fn no_adapt_step_has_no_comm() {
        let mut world = toy_world(false);
        let mut s = NoAdaptStrategy::new(toy_cfg(), 1);
        let cfg = ExperimentConfig { eval_devices: 3, seed: 1 };
        let out = run_adaptation_step(&mut s, &mut world, &cfg);
        assert_eq!(out.comm_total_bytes, 0);
        // NA's accuracy does not change across the step.
        nebula_tensor::assert_close(out.accuracy_before, out.accuracy_after, 1e-6);
    }

    #[test]
    fn continuous_run_covers_all_slots() {
        let mut world = toy_world(true);
        let mut s = NoAdaptStrategy::new(toy_cfg(), 1);
        let cfg = ExperimentConfig { eval_devices: 2, seed: 2 };
        let out = Runner::new(&mut world, &mut s).config(cfg).continuous(4).run().expect("valid config");
        assert_eq!(out.accuracy_per_slot.len(), 4);
        assert!(out.accuracy_per_slot.iter().all(|a| (0.0..=1.0).contains(a)));
    }

    #[test]
    fn invalid_configs_are_structured_errors_not_panics() {
        let mut world = toy_world(false);
        let mut s = NoAdaptStrategy::new(toy_cfg(), 1);
        let no_eval = ExperimentConfig { eval_devices: 0, seed: 1 };
        assert!(matches!(
            Runner::new(&mut world, &mut s).config(no_eval).continuous(2).run(),
            Err(RunError::InvalidConfig(_))
        ));
        let cfg = ExperimentConfig { eval_devices: 2, seed: 1 };
        assert!(matches!(
            Runner::new(&mut world, &mut s).config(cfg).target(f32::NAN, 3, 1).run(),
            Err(RunError::InvalidConfig(_))
        ));
        assert!(matches!(
            Runner::new(&mut world, &mut s).config(cfg).target(0.9, 3, 0).run(),
            Err(RunError::InvalidConfig(_))
        ));
        // A Runner without a mode is itself an invalid configuration.
        assert!(matches!(Runner::new(&mut world, &mut s).config(cfg).run(), Err(RunError::InvalidConfig(_))));
    }

    #[test]
    fn mean_std_arithmetic() {
        let ms = MeanStd::of(&[1.0, 2.0, 3.0]);
        assert!((ms.mean - 2.0).abs() < 1e-12);
        assert!((ms.std - 1.0).abs() < 1e-12);
        assert_eq!(ms.n, 3);
        let single = MeanStd::of(&[5.0]);
        assert_eq!(single.std, 0.0);
    }

    #[test]
    fn multi_seed_runs_vary_but_average_sanely() {
        let ms = run_adaptation_step_multi(&[1, 2, 3], 2, |seed| {
            (Box::new(NoAdaptStrategy::new(toy_cfg(), seed)) as Box<dyn AdaptStrategy>, toy_world(false))
        });
        assert_eq!(ms.n, 3);
        assert!((0.0..=1.0).contains(&ms.mean));
        assert!(ms.std >= 0.0);
    }

    #[test]
    fn until_target_stops_at_max_rounds() {
        let mut world = toy_world(false);
        let mut cfg_s = toy_cfg();
        cfg_s.rounds_per_step = 1;
        let mut s = NoAdaptStrategy::new(cfg_s, 1);
        let cfg = ExperimentConfig { eval_devices: 2, seed: 3 };
        // NA never reaches 1.01 accuracy → must stop at max_rounds.
        let out = Runner::new(&mut world, &mut s).config(cfg).target(1.01, 3, 1).run().expect("valid config");
        assert!(!out.reached);
        assert_eq!(out.rounds, 3);
    }
}
