//! Sharded round engine for 10^5–10^6-device populations (DESIGN.md §14).
//!
//! [`crate::world::SimWorld`] materializes every device up front — right
//! for the paper's 500-device population, hopeless at a million. Here the
//! population is *virtual*: a device's hardware, sub-task and data volume
//! are a pure function of `(world seed, device id)`, materialized only for
//! the devices a round actually samples. Peak memory is therefore flat in
//! the population size and linear in the sampled cohort.
//!
//! ## Topology
//!
//! The id space is split into fixed-size **cells**; contiguous runs of
//! cells form **shards**, one simulated edge server each. A round samples
//! a per-cell quota with a per-`(seed, round, cell)` RNG, so *which*
//! devices participate never depends on the shard count. Each shard
//! refreshes an [`EdgeServer`] replica from the cloud, derives/dispatches
//! sub-models locally, folds the device updates into a streaming
//! accumulator, and ships one partial over the backhaul; the cloud merges
//! partials in shard order ([`NebulaCloud::absorb_partials`]).
//!
//! ## Determinism
//!
//! Floating-point addition does not associate, so *where* accumulator
//! groups are sealed decides which trajectories are bit-reproducible:
//!
//! * [`FoldPlan::PerCell`] (default) seals one group per cell and the
//!   cloud merges groups in global cell order — shard-order concatenation
//!   of per-shard groups *is* cell order because shards are contiguous
//!   cell ranges. Trajectories are bit-identical for every shard count.
//! * [`FoldPlan::PerShard`] seals one group per shard: the least memory
//!   and backhaul, but sums fold in shard-sized blocks, so bits are
//!   reproducible only for a fixed shard count.
//!
//! ## Simulated time
//!
//! The round clock is the synchronous-round model, not host wall-clock:
//! devices compute and use their own links in parallel, but every
//! aggregation point serializes the uploads crossing its ingress. Flat
//! (`shards == 1`) puts all sampled uploads through one device-facing
//! ingress; hierarchical puts `1/S` of them through each edge's ingress in
//! parallel and ships model-sized partials up a fast backhaul — which is
//! where the near-linear round-time speedup in `S` comes from. Host
//! wall-clock on an N-core machine additionally benefits from shard
//! parallelism ([`rayon`]), which this module also exploits but does not
//! model.

use crate::durability::RunError;
use crate::latency::adaptation_latency_ms;
use crate::network::transfer_time_ms;
use crate::resources::{DeviceResources, ResourceSampler};
use nebula_core::edge::update_bytes;
use nebula_core::{
    EdgeClient, EdgePartial, EdgeServer, EdgeUpdate, NebulaCloud, NebulaParams, ResourceProfile,
    RobustAggregator, SanitizePolicy,
};
use nebula_data::{SynthSpec, Synthesizer};
use nebula_modular::cost::CostModel;
use nebula_modular::ModularConfig;
use nebula_tensor::NebulaRng;
use rayon::prelude::*;
use serde::Serialize;

/// Fixed-size block of device ids: the unit of canonical sampling and of
/// [`FoldPlan::PerCell`] sealing. Cell layout depends only on
/// `(population, cell_size)`, never on the shard count.
pub const DEFAULT_CELL_SIZE: usize = 256;

/// How devices map onto edge shards.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct ShardSpec {
    /// Edge servers (parallel aggregation points). `1` = flat
    /// direct-to-cloud.
    pub shards: usize,
    /// Devices per cell (see [`DEFAULT_CELL_SIZE`]).
    pub cell_size: usize,
}

impl ShardSpec {
    pub fn new(shards: usize) -> Self {
        Self { shards, cell_size: DEFAULT_CELL_SIZE }
    }
}

/// Where accumulator groups are sealed (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum FoldPlan {
    /// One group per cell: bit-identical trajectories across shard
    /// counts, at ~`sampled/cell_quota` groups of backhaul per shard.
    PerCell,
    /// One group per shard: minimal memory and backhaul, bits stable
    /// only for a fixed shard count.
    PerShard,
}

/// What the sampled devices actually do locally.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum RoundMode {
    /// Real local SGD ([`EdgeClient::adapt`]) on per-device synthesized
    /// data — the full Nebula round, tractable to ~10^4 sampled devices.
    Train,
    /// Engine benchmark: importance comes from the device's RNG and the
    /// "update" is the dispatched sub-model plus a small deterministic
    /// perturbation. Exercises derive → dispatch → fold → absorb and all
    /// byte/latency accounting without data synthesis or SGD, so rounds
    /// over 10^5–10^6-device populations fit a laptop. Not a learning
    /// simulation.
    Synthetic,
}

/// Bandwidths of the simulated aggregation network.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct LinkModel {
    /// Device-facing ingress of one aggregation point (flat cloud or one
    /// edge server), bits/sec. 100 Mbps — WiFi-AP/MEC class, the shared
    /// hop above the paper's ~20 Mbps per-device WiFi links.
    pub ingress_bps: f64,
    /// Dedicated per-edge backhaul to the cloud, bits/sec (1 Gbps).
    pub backhaul_bps: f64,
    /// Cloud ingress absorbing edge partials, bits/sec (10 Gbps).
    pub cloud_ingress_bps: f64,
}

impl Default for LinkModel {
    fn default() -> Self {
        Self { ingress_bps: 100e6, backhaul_bps: 1e9, cloud_ingress_bps: 10e9 }
    }
}

/// Configuration of a sharded population run.
#[derive(Clone, Debug)]
pub struct ShardConfig {
    /// Total virtual devices.
    pub population: usize,
    /// Devices sampled per round (spread over cells).
    pub devices_per_round: usize,
    pub spec: ShardSpec,
    pub fold: FoldPlan,
    pub mode: RoundMode,
    /// Combine rule. `WeightedMean` streams in constant memory; robust
    /// rules buffer per shard and re-run the full gate at the cloud.
    pub aggregator: RobustAggregator,
    pub sanitize: SanitizePolicy,
    pub links: LinkModel,
    pub local_epochs: usize,
    pub batch_size: usize,
    pub local_lr: f32,
}

impl ShardConfig {
    /// Defaults for a population of `population` devices sampled
    /// `devices_per_round` at a time across `shards` edges.
    pub fn new(population: usize, devices_per_round: usize, shards: usize) -> Self {
        Self {
            population,
            devices_per_round,
            spec: ShardSpec::new(shards),
            fold: FoldPlan::PerCell,
            mode: RoundMode::Synthetic,
            aggregator: RobustAggregator::WeightedMean,
            sanitize: SanitizePolicy::default(),
            links: LinkModel::default(),
            local_epochs: 1,
            batch_size: 16,
            local_lr: 0.02,
        }
    }
}

/// One materialized virtual device (only ever built for sampled ids).
#[derive(Clone, Debug)]
pub struct VirtualDevice {
    pub id: usize,
    pub resources: DeviceResources,
    /// Classes of the device's sub-task (label-skew pair).
    pub classes: Vec<usize>,
    /// Sensing context the device observes.
    pub context: usize,
    /// Local data volume it reports (and, in [`RoundMode::Train`], the
    /// samples it synthesizes).
    pub volume: usize,
}

/// What one sharded round did: aggregation accounting plus the simulated
/// synchronous-round clock.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct ShardRound {
    pub round: u64,
    pub population: usize,
    pub shards: usize,
    /// Devices the round sampled (per-cell quotas; always equals the
    /// configured `devices_per_round`).
    pub sampled: usize,
    /// Updates the sanitize gate accepted.
    pub accepted: usize,
    /// Updates it rejected (non-finite or norm outlier).
    pub rejected: usize,
    /// Accepted updates that bypassed an enabled norm-outlier check —
    /// streaming folds cannot run it (see
    /// [`SanitizePolicy::norm_outlier_ratio`]), so a zero `rejected`
    /// with this non-zero is absence of evidence, not a clean round.
    pub outlier_check_skipped: usize,
    /// Modules that received at least one accepted contribution.
    pub touched: usize,
    /// Simulated synchronous round wall-clock, ms.
    pub sim_round_ms: f64,
    /// Slowest device's local compute + own-link transfer, ms.
    pub sim_max_device_ms: f64,
    /// Slowest aggregation point's upload-serialization time, ms.
    pub sim_ingress_ms: f64,
    /// Slowest edge's backhaul + the cloud's partial-ingress time, ms
    /// (zero when flat).
    pub sim_backhaul_ms: f64,
    /// Device→edge (or device→cloud when flat) upload bytes.
    pub device_upload_bytes: u64,
    /// Edge→cloud partial bytes (zero when flat).
    pub partial_upload_bytes: u64,
}

impl ShardRound {
    /// Simulated round throughput.
    pub fn devices_per_sec(&self) -> f64 {
        if self.sim_round_ms <= 0.0 {
            return 0.0;
        }
        self.sampled as f64 / (self.sim_round_ms / 1e3)
    }
}

/// What one shard's worker produced.
struct ShardResult {
    partial: EdgePartial,
    devices: usize,
    max_device_ms: f64,
    ingress_bytes: u64,
}

/// splitmix64-style finalizer over a seed, a stream tag and a value:
/// every virtual-device and per-round stream is a pure function of its
/// coordinates, so materialization order can never leak into the draw.
fn mix(seed: u64, tag: u64, v: u64) -> u64 {
    let mut x = seed ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ v.wrapping_mul(0xD1B5_4A32_D192_ED03);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

const TAG_DEVICE: u64 = 0xDE;
const TAG_CELL: u64 = 0xCE11;
const TAG_LOCAL: u64 = 0x10CA;

/// A virtual device population sharded across simulated edge servers.
pub struct ShardedWorld {
    cfg: ShardConfig,
    modular: ModularConfig,
    cloud: NebulaCloud,
    synth: Synthesizer,
    sampler: ResourceSampler,
    num_classes: usize,
    num_contexts: usize,
    seed: u64,
    round: u64,
}

impl ShardedWorld {
    /// Builds the world. The cloud model starts at its seeded
    /// initialization; callers wanting a pre-trained cloud can train via
    /// [`ShardedWorld::cloud_mut`] first.
    pub fn new(modular: ModularConfig, cfg: ShardConfig, seed: u64) -> Result<Self, RunError> {
        Self::with_synth(modular, cfg, SynthSpec::toy(), seed)
    }

    /// [`ShardedWorld::new`] with an explicit data-universe spec.
    pub fn with_synth(
        modular: ModularConfig,
        cfg: ShardConfig,
        synth_spec: SynthSpec,
        seed: u64,
    ) -> Result<Self, RunError> {
        if cfg.population == 0 {
            return Err(RunError::InvalidConfig("population must be at least 1".into()));
        }
        if cfg.devices_per_round == 0 || cfg.devices_per_round > cfg.population {
            return Err(RunError::InvalidConfig(format!(
                "devices_per_round {} must be in 1..={} (the population)",
                cfg.devices_per_round, cfg.population
            )));
        }
        if cfg.spec.shards == 0 {
            return Err(RunError::InvalidConfig("shard count must be at least 1".into()));
        }
        if cfg.spec.cell_size == 0 {
            return Err(RunError::InvalidConfig("cell size must be at least 1".into()));
        }
        let (num_classes, num_contexts) = (synth_spec.classes, synth_spec.contexts);
        let cloud = NebulaCloud::new(modular.clone(), NebulaParams::default(), seed);
        let synth = Synthesizer::new(synth_spec, seed ^ 0x5EED);
        Ok(Self {
            cfg,
            modular,
            cloud,
            synth,
            sampler: ResourceSampler::default(),
            num_classes,
            num_contexts,
            seed,
            round: 0,
        })
    }

    pub fn cloud(&self) -> &NebulaCloud {
        &self.cloud
    }

    pub fn cloud_mut(&mut self) -> &mut NebulaCloud {
        &mut self.cloud
    }

    pub fn config(&self) -> &ShardConfig {
        &self.cfg
    }

    /// Cells in the id space (last one may be short).
    pub fn cells(&self) -> usize {
        self.cfg.population.div_ceil(self.cfg.spec.cell_size)
    }

    fn cell_bounds(&self, cell: usize) -> (usize, usize) {
        let start = cell * self.cfg.spec.cell_size;
        (start, (start + self.cfg.spec.cell_size).min(self.cfg.population))
    }

    /// Sampling quota of `cell` this round: `devices_per_round` spread as
    /// evenly as the cell grid allows, independent of the shard count.
    /// When the even spread would overrun the trailing short cell, that
    /// cell saturates and the remainder respreads over the full-width
    /// cells, so the quotas always sum to exactly `devices_per_round`
    /// (config validation guarantees the grid has the capacity).
    fn cell_quota(&self, cell: usize) -> usize {
        let cells = self.cells();
        let base = self.cfg.devices_per_round / cells;
        // Only the trailing cell can be narrower than `cell_size`, so at
        // most one saturation is ever needed, and the respread over the
        // equal-width rest cannot overrun them (their combined capacity
        // covers anything the validated `devices_per_round` leaves over).
        let last_width = self.cfg.population - (cells - 1) * self.cfg.spec.cell_size;
        if base <= last_width {
            // The even spread fits as-is: the last cell never takes a
            // remainder unit (its index is never below the remainder),
            // and a full cell's `base + 1` is at most `cell_size`.
            base + usize::from(cell < self.cfg.devices_per_round % cells)
        } else if cell == cells - 1 {
            last_width
        } else {
            let rest = self.cfg.devices_per_round - last_width;
            let full = cells - 1;
            rest / full + usize::from(cell < rest % full)
        }
    }

    /// Materializes device `id` from its seed. Pure in `(world seed, id)`.
    pub fn materialize(&self, id: usize) -> VirtualDevice {
        let mut rng = NebulaRng::seed(mix(self.seed, TAG_DEVICE, id as u64));
        let resources = self.sampler.sample(&mut rng);
        // Label-skew sub-task: a co-occurrence pair of classes.
        let a = rng.below(self.num_classes);
        let classes = if self.num_classes > 1 {
            let b = (a + 1 + rng.below(self.num_classes - 1)) % self.num_classes;
            vec![a, b]
        } else {
            vec![a]
        };
        let context = rng.below(self.num_contexts.max(1));
        let volume = match self.cfg.mode {
            // Kept small so real SGD over 10^4+ sampled devices stays
            // tractable; the volume is still the aggregation weight.
            RoundMode::Train => 16 + rng.below(48),
            RoundMode::Synthetic => 50 + rng.below(150),
        };
        VirtualDevice { id, resources, classes, context, volume }
    }

    fn profile(dev: &DeviceResources, cost: &CostModel) -> ResourceProfile {
        let full = cost.full_model();
        let r = dev.budget_ratio as f64;
        ResourceProfile {
            mem_bytes: ((full.training_mem_bytes as f64) * r) as u64,
            flops: ((full.flops as f64) * r) as u64,
            comm_bytes: ((full.comm_bytes as f64) * r) as u64,
        }
    }

    /// One device's round on its shard's edge replica: derive, dispatch,
    /// local step, and the update + its cost terms.
    fn device_round(&self, edge: &mut EdgeServer, id: usize, round: u64) -> (EdgeUpdate, f64) {
        let dev = self.materialize(id);
        let profile = Self::profile(&dev.resources, edge.cost_model());
        let mut drng = NebulaRng::seed(mix(self.seed ^ round.rotate_left(17), TAG_LOCAL, id as u64));
        let (update, local_samples) = match self.cfg.mode {
            RoundMode::Train => {
                let local = self.synth.sample_classes(dev.volume, &dev.classes, dev.context, &mut drng);
                let outcome = edge.derive_for_data(&local, &profile, None);
                let payload = edge.dispatch(&outcome.spec);
                let mut client = EdgeClient::from_payload(self.modular.clone(), &payload);
                client.adapt(
                    &local,
                    self.cfg.local_epochs,
                    self.cfg.batch_size,
                    self.cfg.local_lr,
                    &mut drng,
                );
                (client.make_update(&local), dev.volume)
            }
            RoundMode::Synthetic => {
                let imp: Vec<Vec<f32>> = (0..self.modular.num_layers)
                    .map(|_| {
                        (0..self.modular.modules_per_layer).map(|_| drng.uniform_f32(0.05, 1.0)).collect()
                    })
                    .collect();
                let outcome = edge.derive_for_importance(&imp, &profile, None);
                let payload = edge.dispatch(&outcome.spec);
                let mut module_params = payload.module_params;
                for params in module_params.values_mut() {
                    for v in params.iter_mut() {
                        *v += drng.normal_f32(0.0, 1e-3);
                    }
                }
                let mut shared_params = payload.shared_params;
                for v in shared_params.iter_mut() {
                    *v += drng.normal_f32(0.0, 1e-3);
                }
                let update = EdgeUpdate {
                    spec: outcome.spec,
                    module_params,
                    shared_params,
                    importance: imp,
                    data_volume: dev.volume,
                };
                (update, dev.volume)
            }
        };
        let flops = edge.cost_model().submodel(&update.spec).flops;
        // Down + up: the dispatched sub-model and the update are the same
        // tensors, so the exchange is twice the update's wire size.
        let exchange = 2 * update_bytes(&update);
        let device_ms = adaptation_latency_ms(
            &dev.resources,
            flops,
            local_samples,
            self.cfg.local_epochs,
            self.cfg.batch_size,
        ) + transfer_time_ms(exchange, dev.resources.bandwidth_bps);
        (update, device_ms)
    }

    /// Runs shard `s` of `round`: refresh the edge replica, walk the
    /// shard's cells in order, fold sampled devices, seal per the plan.
    fn run_shard(&self, s: usize, round: u64, cells_per_shard: usize) -> ShardResult {
        let mut edge = EdgeServer::new(&self.cloud, self.cfg.aggregator, self.cfg.sanitize);
        let cells = self.cells();
        let lo = s * cells_per_shard;
        let hi = ((s + 1) * cells_per_shard).min(cells);
        let mut max_device_ms = 0.0f64;
        let mut devices = 0usize;
        for cell in lo..hi {
            let quota = self.cell_quota(cell);
            if quota == 0 {
                continue;
            }
            let (start, end) = self.cell_bounds(cell);
            let mut cell_rng = NebulaRng::seed(mix(self.seed ^ round, TAG_CELL, cell as u64));
            let mut offsets = cell_rng.sample_indices(end - start, quota);
            // Canonical fold order within the cell: ascending device id.
            offsets.sort_unstable();
            for off in offsets {
                let (update, device_ms) = self.device_round(&mut edge, start + off, round);
                max_device_ms = max_device_ms.max(device_ms);
                devices += 1;
                edge.ingest(update);
            }
            if self.cfg.fold == FoldPlan::PerCell {
                edge.seal(cell as u64);
            }
        }
        let ingress_bytes = edge.ingest_bytes();
        // PerShard seals the open accumulator here; PerCell already sealed
        // every cell, so the group id is moot.
        let partial = edge.finish(s as u64);
        ShardResult { partial, devices, max_device_ms, ingress_bytes }
    }

    /// Runs one round over the sharded population and folds the result
    /// into the cloud model. Shards run in parallel (rayon) with inner
    /// tensor kernels pinned sequential; partials merge in shard order.
    pub fn run_round(&mut self) -> ShardRound {
        let round = self.round;
        self.round += 1;
        let shards = self.cfg.spec.shards;
        let cells = self.cells();
        let cells_per_shard = cells.div_ceil(shards);
        let results: Vec<ShardResult> = (0..shards)
            .into_par_iter()
            .map(|s| {
                // Shard-level parallelism owns the pool; keep per-device
                // tensor work sequential (see nebula_tensor::par).
                nebula_tensor::par::sequential(|| self.run_shard(s, round, cells_per_shard))
            })
            .collect();

        let links = self.cfg.links;
        let sampled: usize = results.iter().map(|r| r.devices).sum();
        let device_upload_bytes: u64 = results.iter().map(|r| r.ingress_bytes).sum();
        let max_device_ms = results.iter().map(|r| r.max_device_ms).fold(0.0f64, f64::max);
        let (sim_ingress_ms, sim_backhaul_ms, partial_upload_bytes);
        if shards == 1 {
            // Flat: every sampled upload crosses the cloud's device-facing
            // ingress; there is no backhaul hop.
            sim_ingress_ms = transfer_time_ms(device_upload_bytes, links.ingress_bps);
            sim_backhaul_ms = 0.0;
            partial_upload_bytes = 0;
        } else {
            sim_ingress_ms = results
                .iter()
                .map(|r| transfer_time_ms(r.ingress_bytes, links.ingress_bps))
                .fold(0.0f64, f64::max);
            let max_backhaul = results
                .iter()
                .map(|r| transfer_time_ms(r.partial.wire_bytes(), links.backhaul_bps))
                .fold(0.0f64, f64::max);
            partial_upload_bytes = results.iter().map(|r| r.partial.wire_bytes()).sum();
            sim_backhaul_ms = max_backhaul + transfer_time_ms(partial_upload_bytes, links.cloud_ingress_bps);
        }
        let sim_round_ms = max_device_ms + sim_ingress_ms + sim_backhaul_ms;

        let partials: Vec<EdgePartial> = results.into_iter().map(|r| r.partial).collect();
        let outcome = self.cloud.absorb_partials(&partials, &self.cfg.sanitize, self.cfg.aggregator);
        ShardRound {
            round,
            population: self.cfg.population,
            shards,
            sampled,
            accepted: outcome.sanitize.accepted,
            rejected: outcome.sanitize.rejected(),
            outlier_check_skipped: outcome.sanitize.outlier_check_skipped,
            touched: outcome.touched,
            sim_round_ms,
            sim_max_device_ms: max_device_ms,
            sim_ingress_ms,
            sim_backhaul_ms,
            device_upload_bytes,
            partial_upload_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nebula_nn::Layer;

    fn toy_world(population: usize, k: usize, shards: usize, fold: FoldPlan) -> ShardedWorld {
        let mut modular = ModularConfig::toy(8, 3);
        modular.gate_noise_std = 0.0;
        let mut cfg = ShardConfig::new(population, k, shards);
        cfg.spec.cell_size = 64;
        cfg.fold = fold;
        ShardedWorld::new(modular, cfg, 42).expect("valid config")
    }

    #[test]
    fn materialization_is_pure_in_seed_and_id() {
        let w = toy_world(512, 32, 2, FoldPlan::PerCell);
        let a = w.materialize(137);
        let b = w.materialize(137);
        assert_eq!(a.resources.ram_bytes, b.resources.ram_bytes);
        assert_eq!(a.classes, b.classes);
        assert_eq!(a.volume, b.volume);
        // Neighbouring ids draw different devices.
        let c = w.materialize(138);
        assert!(a.resources.ram_bytes != c.resources.ram_bytes || a.volume != c.volume);
    }

    #[test]
    fn quotas_cover_devices_per_round() {
        let w = toy_world(1000, 100, 4, FoldPlan::PerCell);
        let total: usize = (0..w.cells()).map(|c| w.cell_quota(c)).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn quotas_respread_around_a_saturated_short_cell() {
        // population=70, cell_size=64 → widths {64, 6}. The even spread
        // (30, 30) would overrun the short cell; it saturates at 6 and
        // the rest moves to the full cell instead of being dropped.
        let w = toy_world(70, 60, 2, FoldPlan::PerCell);
        let quotas: Vec<usize> = (0..w.cells()).map(|c| w.cell_quota(c)).collect();
        assert_eq!(quotas, vec![54, 6]);
    }

    #[test]
    fn quotas_sum_exactly_and_fit_cell_widths() {
        // Sweep the regimes: short trailing cell (saturated and not),
        // full-capacity rounds, grid-aligned populations, one cell.
        for &(pop, dpr) in &[
            (70usize, 60usize),
            (70, 70),
            (129, 128),
            (129, 129),
            (133, 133),
            (1000, 100),
            (65, 64),
            (128, 128),
            (63, 63),
            (1, 1),
        ] {
            let w = toy_world(pop, dpr, 1, FoldPlan::PerCell);
            let mut total = 0;
            for c in 0..w.cells() {
                let q = w.cell_quota(c);
                let (start, end) = w.cell_bounds(c);
                assert!(
                    q <= end - start,
                    "pop={pop} dpr={dpr} cell={c}: quota {q} exceeds width {}",
                    end - start
                );
                total += q;
            }
            assert_eq!(total, dpr, "pop={pop} dpr={dpr}: quotas must cover the round");
        }
    }

    #[test]
    fn per_cell_fold_is_shard_count_invariant() {
        let mut a = toy_world(512, 64, 1, FoldPlan::PerCell);
        let mut b = toy_world(512, 64, 8, FoldPlan::PerCell);
        for _ in 0..3 {
            let ra = a.run_round();
            let rb = b.run_round();
            assert_eq!(ra.sampled, rb.sampled);
        }
        let pa = a.cloud().model().param_vector();
        let pb = b.cloud().model().param_vector();
        for (x, y) in pa.iter().zip(&pb) {
            assert_eq!(x.to_bits(), y.to_bits(), "trajectory depends on the shard count");
        }
    }

    #[test]
    fn hierarchical_round_is_simulated_faster_than_flat() {
        let mut flat = toy_world(4096, 512, 1, FoldPlan::PerCell);
        let mut hier = toy_world(4096, 512, 8, FoldPlan::PerCell);
        let rf = flat.run_round();
        let rh = hier.run_round();
        assert_eq!(rf.sampled, rh.sampled);
        assert!(
            rh.sim_round_ms < rf.sim_round_ms,
            "hierarchical {} ms should beat flat {} ms",
            rh.sim_round_ms,
            rf.sim_round_ms
        );
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let modular = ModularConfig::toy(8, 3);
        let bad = ShardConfig::new(0, 1, 1);
        assert!(matches!(ShardedWorld::new(modular.clone(), bad, 1), Err(RunError::InvalidConfig(_))));
        let mut bad = ShardConfig::new(10, 20, 1);
        bad.devices_per_round = 20;
        assert!(matches!(ShardedWorld::new(modular.clone(), bad, 1), Err(RunError::InvalidConfig(_))));
        let mut bad = ShardConfig::new(10, 5, 1);
        bad.spec.shards = 0;
        assert!(matches!(ShardedWorld::new(modular, bad, 1), Err(RunError::InvalidConfig(_))));
    }

    #[test]
    fn sanitize_accounting_matches_sampled() {
        let mut w = toy_world(512, 50, 4, FoldPlan::PerShard);
        let r = w.run_round();
        assert_eq!(r.sampled, 50);
        assert_eq!(r.accepted + r.rejected, 50, "every sampled device is accounted");
        assert!(r.touched > 0, "a clean round must touch modules");
    }
}
