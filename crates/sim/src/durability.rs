//! Crash-safe experiment drivers: atomic run snapshots, a write-ahead
//! round journal, and deterministic resume.
//!
//! The durability layer underpins `Runner::durable(..)` (and
//! `.resume()`) in [`crate::runner`], so that a run killed at any
//! instant — including mid-write — can be restarted and produce the
//! **bit-identical** accuracy and communication trajectory the
//! uninterrupted run would have produced.
//!
//! ## Protocol
//!
//! * After the offline stage a **snapshot** (sequence 0) is persisted, so
//!   there is always at least one valid recovery point.
//! * Every completed round appends one CRC-framed [`RoundRecord`] to an
//!   append-only **journal** (`rounds.nblj`), fsynced before the round is
//!   considered durable.
//! * Every `snapshot_every` rounds a full [`RunState`] snapshot is written
//!   with write-temp-then-rename atomicity and a CRC trailer; older
//!   snapshots beyond `keep_snapshots` are pruned (always keeping ≥ 2 so a
//!   torn newest file leaves a fallback).
//! * Resume loads the newest *valid* snapshot (torn or bit-flipped files
//!   are detected by CRC and skipped), truncates any torn journal tail,
//!   re-executes the journal tail deterministically — verifying each
//!   re-executed round against its journal record — and continues.
//!
//! ## Determinism contract
//!
//! Bit-identical resume requires every random draw after the recovery
//! point to replay. The snapshot therefore captures the harness RNG, the
//! world RNG, the fault-plan round cursor, all outcome accumulators, and
//! the full strategy state ([`StrategyState`]). Strategies whose wire
//! codec keeps cross-round compression state (delta / int8 baselines)
//! refuse to export ([`AdaptStrategy::export_state`] returns `None`) and
//! the durable drivers report [`RunError::UnsupportedStrategy`] up front
//! rather than silently producing a divergent resume.

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

use crate::experiment::{mean_accuracy, pick_eval_ids, ExperimentConfig};
use crate::faults::{FaultPlan, RoundPolicy, RoundReport};
use crate::network::CommTracker;
use crate::strategy::{AdaptStrategy, StrategyState};
use crate::world::SimWorld;
use nebula_core::{DurabilityError, JournalWriter, SnapshotStore};
use nebula_telemetry::Telemetry;
use nebula_tensor::NebulaRng;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Version tag inside every serialized [`RunState`].
pub const RUN_STATE_FORMAT: u32 = 1;

/// Journal file name inside the durability directory.
pub const JOURNAL_FILE: &str = "rounds.nblj";

pub(crate) const MODE_TARGET: &str = "target";
pub(crate) const MODE_CONTINUOUS: &str = "continuous";

/// Everything that can go wrong while driving a durable run.
#[derive(Clone, Debug, PartialEq)]
pub enum RunError {
    /// The caller-supplied configuration cannot produce a meaningful run.
    InvalidConfig(String),
    /// Snapshot/journal I/O or integrity failure.
    Durability(DurabilityError),
    /// The strategy cannot export/import deterministic state (e.g. a
    /// lossy wire codec with cross-round baselines).
    UnsupportedStrategy(String),
    /// The persisted state disagrees with the caller's reconstruction
    /// (different seed, mode, strategy, or eval set).
    StateMismatch(String),
    /// A re-executed round did not reproduce its journal record.
    ReplayDivergence { round: u64, detail: String },
    /// Chaos harness: the injected kill point was reached.
    Killed { round: u64 },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::InvalidConfig(msg) => write!(f, "invalid experiment config: {msg}"),
            RunError::Durability(e) => write!(f, "durability failure: {e}"),
            RunError::UnsupportedStrategy(msg) => {
                write!(f, "strategy does not support durable runs: {msg}")
            }
            RunError::StateMismatch(msg) => write!(f, "persisted state mismatch: {msg}"),
            RunError::ReplayDivergence { round, detail } => {
                write!(f, "replay diverged at round {round}: {detail}")
            }
            RunError::Killed { round } => write!(f, "injected kill after round {round}"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<DurabilityError> for RunError {
    fn from(e: DurabilityError) -> Self {
        RunError::Durability(e)
    }
}

impl From<serde::Error> for RunError {
    fn from(e: serde::Error) -> Self {
        RunError::Durability(DurabilityError::Malformed(format!("state serialization: {e}")))
    }
}

/// Where, relative to a round's durability writes, an injected kill fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KillSpot {
    /// Round computed but its journal record not yet appended — resume
    /// must re-execute the round.
    BeforeAppend,
    /// Record appended, snapshot (if due) not yet written — resume
    /// replays from the previous snapshot through the journal tail.
    AfterAppend,
    /// All durability writes for the round finished.
    AfterSnapshot,
}

/// Chaos-harness hooks threaded through the durable drivers.
#[derive(Clone, Copy, Debug, Default)]
pub struct ChaosControl {
    /// Abort with [`RunError::Killed`] when round `.0` reaches `.1`.
    pub kill: Option<(u64, KillSpot)>,
}

impl ChaosControl {
    fn wants_kill(&self, round: u64, spot: KillSpot) -> bool {
        self.kill == Some((round, spot))
    }

    /// Whether any chaos hook is armed.
    pub fn is_armed(&self) -> bool {
        self.kill.is_some()
    }
}

/// Where and how often durable state is persisted.
#[derive(Clone, Debug)]
pub struct DurabilityConfig {
    /// Directory holding snapshots and the round journal.
    pub dir: PathBuf,
    /// Full snapshot cadence, in completed rounds (≥ 1).
    pub snapshot_every: usize,
    /// Snapshots retained after pruning (≥ 1; ≥ 2 keeps a fallback for a
    /// torn newest file).
    pub keep_snapshots: usize,
}

impl DurabilityConfig {
    /// Snapshot every 5 rounds, keep the 3 newest.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into(), snapshot_every: 5, keep_snapshots: 3 }
    }

    pub(crate) fn validate(&self) -> Result<(), RunError> {
        if self.snapshot_every == 0 {
            return Err(RunError::InvalidConfig("snapshot_every must be ≥ 1".into()));
        }
        if self.keep_snapshots == 0 {
            return Err(RunError::InvalidConfig("keep_snapshots must be ≥ 1".into()));
        }
        Ok(())
    }

    pub(crate) fn journal_path(&self) -> PathBuf {
        self.dir.join(JOURNAL_FILE)
    }
}

/// Durable-driver options: persistence knobs plus chaos hooks.
#[derive(Clone, Debug)]
pub struct DurableOptions {
    pub durability: DurabilityConfig,
    pub chaos: ChaosControl,
}

impl DurableOptions {
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self { durability: DurabilityConfig::new(dir), chaos: ChaosControl::default() }
    }
}

/// One write-ahead journal record: what a single completed round produced.
///
/// Floats are stored as IEEE-754 bit patterns so the JSON round-trip is
/// exact and replay verification can compare for bit equality.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RoundRecord {
    /// 1-based round (or slot) index within the run.
    pub index: u64,
    /// The round's communication.
    pub comm: CommTracker,
    /// The round's robustness accounting.
    pub faults: RoundReport,
    /// Bits of the mean eval accuracy *after* this round (unchanged since
    /// the previous probe on non-probe rounds).
    pub acc_bits: u32,
    /// Bits of the round's mean on-device adaptation time (ms, `f64`).
    pub time_bits: u64,
}

/// Full recovery point: everything needed to continue a run
/// bit-identically from the end of round `rounds`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunState {
    /// [`RUN_STATE_FORMAT`] at write time.
    pub format: u32,
    /// Run identity derived from the experiment seed and mode; resume
    /// refuses state from a different run.
    pub run_id: u64,
    /// `"target"` or `"continuous"`.
    pub mode: String,
    /// Completed rounds (target mode) or slots (continuous mode).
    pub rounds: u64,
    /// World drift slots advanced (continuous mode; 0 for target mode).
    pub slot: u64,
    /// Fault-plan cursor: rounds the world has started.
    pub rounds_started: u64,
    /// xoshiro256** state of the harness RNG (4 words).
    pub harness_rng: Vec<u64>,
    /// xoshiro256** state of the world RNG (4 words).
    pub world_rng: Vec<u64>,
    /// Communication accumulated so far (target mode).
    pub comm: CommTracker,
    /// Fault accounting accumulated so far.
    pub faults: RoundReport,
    /// Bits of the latest probed mean eval accuracy.
    pub acc_bits: u32,
    /// Bits of the accumulated adaptation-time sum (ms, `f64`).
    pub time_sum_bits: u64,
    /// Bits of per-slot accuracies so far (continuous mode).
    pub acc_per_slot_bits: Vec<u32>,
    /// The world's fault plan at capture time.
    pub plan: FaultPlan,
    /// The world's round policy at capture time.
    pub policy: RoundPolicy,
    /// Tracked evaluation devices.
    pub eval_ids: Vec<usize>,
    /// `strategy.name()` at capture time.
    pub strategy_name: String,
    /// Full strategy state (models, clients, selector).
    pub strategy: StrategyState,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

pub(crate) fn derive_run_id(seed: u64, mode: &str) -> u64 {
    let salt = match mode {
        MODE_TARGET => 0x7A6C_E77A_6CE7_0001,
        _ => 0xC0C0_17D5_C0C0_0002,
    };
    splitmix64(seed ^ salt)
}

fn arr4(words: &[u64], what: &str) -> Result<[u64; 4], RunError> {
    if words.len() != 4 {
        return Err(DurabilityError::Malformed(format!(
            "{what}: expected 4 rng state words, got {}",
            words.len()
        ))
        .into());
    }
    Ok([words[0], words[1], words[2], words[3]])
}

fn rng_from_state(words: &[u64], what: &str) -> Result<NebulaRng, RunError> {
    NebulaRng::from_state(arr4(words, what)?)
        .ok_or_else(|| DurabilityError::Malformed(format!("{what}: all-zero rng state")).into())
}

fn encode_state(state: &RunState) -> Result<Vec<u8>, RunError> {
    Ok(serde_json::to_vec(state)?)
}

fn decode_state(bytes: &[u8]) -> Result<RunState, RunError> {
    let state: RunState =
        serde_json::from_slice(bytes).map_err(|e| DurabilityError::Malformed(format!("run state: {e}")))?;
    if state.format != RUN_STATE_FORMAT {
        return Err(DurabilityError::UnsupportedVersion(state.format).into());
    }
    Ok(state)
}

fn encode_record(rec: &RoundRecord) -> Result<Vec<u8>, RunError> {
    Ok(serde_json::to_vec(rec)?)
}

fn decode_record(bytes: &[u8]) -> Result<RoundRecord, RunError> {
    Ok(serde_json::from_slice(bytes).map_err(|e| DurabilityError::Malformed(format!("round record: {e}")))?)
}

/// Shared validation for the experiment drivers (plain and durable).
pub(crate) fn validate_common(world: &SimWorld, cfg: &ExperimentConfig) -> Result<(), RunError> {
    if world.num_devices() == 0 {
        return Err(RunError::InvalidConfig("world has no devices".into()));
    }
    if cfg.eval_devices == 0 {
        return Err(RunError::InvalidConfig("eval_devices must be ≥ 1".into()));
    }
    Ok(())
}

pub(crate) fn validate_target(
    world: &SimWorld,
    cfg: &ExperimentConfig,
    target: f32,
    probe_every: usize,
) -> Result<(), RunError> {
    validate_common(world, cfg)?;
    if !target.is_finite() {
        return Err(RunError::InvalidConfig(format!("target accuracy must be finite, got {target}")));
    }
    if probe_every == 0 {
        return Err(RunError::InvalidConfig("probe_every must be ≥ 1".into()));
    }
    Ok(())
}

/// Mutable accumulators a run threads through execute/replay. Shared by
/// the durable drivers and the plain [`crate::runner::Runner`] loops so
/// both paths accumulate — and therefore probe — identically.
pub(crate) struct Accum {
    pub(crate) rng: NebulaRng,
    pub(crate) comm: CommTracker,
    pub(crate) faults: RoundReport,
    pub(crate) rounds: u64,
    pub(crate) slot: u64,
    pub(crate) acc: f32,
    pub(crate) time_sum: f64,
    pub(crate) acc_per_slot: Vec<f32>,
}

impl Accum {
    pub(crate) fn fresh(rng: NebulaRng, acc: f32) -> Self {
        Self {
            rng,
            comm: CommTracker::new(),
            faults: RoundReport::default(),
            rounds: 0,
            slot: 0,
            acc,
            time_sum: 0.0,
            acc_per_slot: Vec::new(),
        }
    }
}

pub(crate) struct Engine {
    pub(crate) store: SnapshotStore,
    pub(crate) journal: JournalWriter,
    pub(crate) opts: DurableOptions,
    pub(crate) run_id: u64,
    pub(crate) mode: &'static str,
    pub(crate) eval_ids: Vec<usize>,
    /// Observes `journal.append_ms` / `snapshot.save_ms` latencies; the
    /// disarmed default costs one branch per durability write.
    pub(crate) telemetry: Telemetry,
}

impl Engine {
    fn capture(
        &self,
        strategy: &dyn AdaptStrategy,
        world: &SimWorld,
        acc: &Accum,
    ) -> Result<RunState, RunError> {
        let strategy_state = strategy.export_state().ok_or_else(|| {
            RunError::UnsupportedStrategy(format!(
                "{} cannot export deterministic state (lossy wire codec?)",
                strategy.name()
            ))
        })?;
        Ok(RunState {
            format: RUN_STATE_FORMAT,
            run_id: self.run_id,
            mode: self.mode.to_string(),
            rounds: acc.rounds,
            slot: acc.slot,
            rounds_started: world.rounds_started(),
            harness_rng: acc.rng.state().to_vec(),
            world_rng: world.rng_state().to_vec(),
            comm: acc.comm,
            faults: acc.faults,
            acc_bits: acc.acc.to_bits(),
            time_sum_bits: acc.time_sum.to_bits(),
            acc_per_slot_bits: acc.acc_per_slot.iter().map(|a| a.to_bits()).collect(),
            plan: world.faults,
            policy: world.policy,
            eval_ids: self.eval_ids.clone(),
            strategy_name: strategy.name().to_string(),
            strategy: strategy_state,
        })
    }

    pub(crate) fn save_snapshot(
        &self,
        strategy: &dyn AdaptStrategy,
        world: &SimWorld,
        acc: &Accum,
    ) -> Result<(), RunError> {
        let started = self.telemetry.enabled().then(Instant::now);
        let state = self.capture(strategy, world, acc)?;
        self.store.save(acc.rounds, &encode_state(&state)?)?;
        self.store.prune(self.opts.durability.keep_snapshots)?;
        if let Some(t0) = started {
            self.telemetry.counter_add("snapshot.saves", 1);
            self.telemetry.observe("snapshot.save_ms", t0.elapsed().as_secs_f64() * 1e3);
        }
        Ok(())
    }

    /// Journals a completed round, snapshots when due, and honours
    /// injected kill points. Returns `Err(Killed)` at a chaos kill.
    pub(crate) fn finish_round(
        &mut self,
        rec: &RoundRecord,
        strategy: &dyn AdaptStrategy,
        world: &SimWorld,
        acc: &Accum,
    ) -> Result<(), RunError> {
        let chaos = self.opts.chaos;
        if chaos.wants_kill(rec.index, KillSpot::BeforeAppend) {
            return Err(RunError::Killed { round: rec.index });
        }
        let started = self.telemetry.enabled().then(Instant::now);
        self.journal.append(&encode_record(rec)?)?;
        if let Some(t0) = started {
            self.telemetry.counter_add("journal.appends", 1);
            self.telemetry.observe("journal.append_ms", t0.elapsed().as_secs_f64() * 1e3);
        }
        if chaos.wants_kill(rec.index, KillSpot::AfterAppend) {
            return Err(RunError::Killed { round: rec.index });
        }
        if (acc.rounds as usize).is_multiple_of(self.opts.durability.snapshot_every) {
            self.save_snapshot(strategy, world, acc)?;
        }
        if chaos.wants_kill(rec.index, KillSpot::AfterSnapshot) {
            return Err(RunError::Killed { round: rec.index });
        }
        Ok(())
    }
}

pub(crate) fn verify_replay(rec: &RoundRecord, executed: &RoundRecord) -> Result<(), RunError> {
    if rec != executed {
        return Err(RunError::ReplayDivergence {
            round: rec.index,
            detail: format!("journal {rec:?} vs re-executed {executed:?}"),
        });
    }
    Ok(())
}

fn open_or_create_journal(
    path: &Path,
    run_id: u64,
) -> Result<(JournalWriter, BTreeMap<u64, RoundRecord>), RunError> {
    if path.exists() {
        let (writer, contents) = JournalWriter::open_append(path, run_id)?;
        let mut records = BTreeMap::new();
        for bytes in &contents.records {
            let rec = decode_record(bytes)?;
            records.insert(rec.index, rec);
        }
        Ok((writer, records))
    } else {
        Ok((JournalWriter::create(path, run_id)?, BTreeMap::new()))
    }
}

/// One until-target round: execute, accumulate, probe. Returns the
/// round's journal record.
pub(crate) fn target_round(
    strategy: &mut dyn AdaptStrategy,
    world: &mut SimWorld,
    eval_ids: &[usize],
    acc: &mut Accum,
    max_rounds: usize,
    probe_every: usize,
) -> RoundRecord {
    let report = strategy.adaptation_step(world, &mut acc.rng);
    acc.comm.merge(&report.comm);
    acc.faults.merge(&report.faults);
    acc.time_sum += report.adapt_time_ms;
    acc.rounds += 1;
    if (acc.rounds as usize).is_multiple_of(probe_every) || acc.rounds as usize == max_rounds {
        acc.acc = mean_accuracy(strategy, world, eval_ids);
    }
    RoundRecord {
        index: acc.rounds,
        comm: report.comm,
        faults: report.faults,
        acc_bits: acc.acc.to_bits(),
        time_bits: report.adapt_time_ms.to_bits(),
    }
}

/// One continuous slot: drift, adapt, evaluate. Returns the record.
pub(crate) fn continuous_slot(
    strategy: &mut dyn AdaptStrategy,
    world: &mut SimWorld,
    eval_ids: &[usize],
    acc: &mut Accum,
) -> RoundRecord {
    world.advance_slot();
    acc.slot += 1;
    let report = strategy.adaptation_step(world, &mut acc.rng);
    acc.comm.merge(&report.comm);
    acc.faults.merge(&report.faults);
    acc.time_sum += report.adapt_time_ms;
    acc.rounds += 1;
    acc.acc = mean_accuracy(strategy, world, eval_ids);
    acc.acc_per_slot.push(acc.acc);
    RoundRecord {
        index: acc.rounds,
        comm: report.comm,
        faults: report.faults,
        acc_bits: acc.acc.to_bits(),
        time_bits: report.adapt_time_ms.to_bits(),
    }
}

pub(crate) type EngineParts = (SnapshotStore, JournalWriter, Vec<usize>, BTreeMap<u64, RoundRecord>);

/// Loads the newest valid snapshot, validates it against the caller's
/// reconstruction, restores strategy/world/accumulators, and opens the
/// journal (truncating any torn tail). Returns the engine pieces plus
/// the journal records newer than the snapshot.
pub(crate) fn restore(
    strategy: &mut dyn AdaptStrategy,
    world: &mut SimWorld,
    cfg: &ExperimentConfig,
    run_id: u64,
    mode: &'static str,
    opts: &DurableOptions,
    world_prep: impl FnOnce(&mut SimWorld, &RunState) -> Result<(), RunError>,
) -> Result<(EngineParts, Accum), RunError> {
    let store = SnapshotStore::open(&opts.durability.dir)?;
    let loaded = store.load_newest_valid()?;
    let state = decode_state(&loaded.payload)?;

    if state.run_id != run_id {
        return Err(RunError::StateMismatch(format!(
            "snapshot belongs to run {:#x}, caller reconstructs run {:#x} (seed/mode differ?)",
            state.run_id, run_id
        )));
    }
    if state.mode != mode {
        return Err(RunError::StateMismatch(format!("snapshot mode {:?} vs requested {mode:?}", state.mode)));
    }
    if state.strategy_name != strategy.name() {
        return Err(RunError::StateMismatch(format!(
            "snapshot strategy {:?} vs caller strategy {:?}",
            state.strategy_name,
            strategy.name()
        )));
    }
    let eval_ids = pick_eval_ids(world, cfg.eval_devices);
    if eval_ids != state.eval_ids {
        return Err(RunError::StateMismatch(format!(
            "eval set changed: snapshot {:?} vs reconstruction {:?}",
            state.eval_ids, eval_ids
        )));
    }
    if state.rounds != loaded.seq {
        return Err(RunError::StateMismatch(format!(
            "snapshot file seq {} disagrees with embedded round count {}",
            loaded.seq, state.rounds
        )));
    }

    world_prep(world, &state)?;
    strategy.track(&eval_ids);
    strategy.import_state(&state.strategy).map_err(RunError::StateMismatch)?;
    world.set_fault_plan(state.plan);
    world.set_round_policy(state.policy);
    world
        .restore_rng_state(arr4(&state.world_rng, "world rng")?)
        .ok_or_else(|| RunError::from(DurabilityError::Malformed("world rng: all-zero state".into())))?;
    world.set_rounds_started(state.rounds_started);

    let rng = rng_from_state(&state.harness_rng, "harness rng")?;
    let acc = Accum {
        rng,
        comm: state.comm,
        faults: state.faults,
        rounds: state.rounds,
        slot: state.slot,
        acc: f32::from_bits(state.acc_bits),
        time_sum: f64::from_bits(state.time_sum_bits),
        acc_per_slot: state.acc_per_slot_bits.iter().map(|&b| f32::from_bits(b)).collect(),
    };

    let (journal, mut records) = open_or_create_journal(&opts.durability.journal_path(), run_id)?;
    records.retain(|&idx, _| idx > state.rounds);
    Ok(((store, journal, eval_ids, records), acc))
}
