//! # nebula-nn
//!
//! Feed-forward neural-network building blocks with **manual backprop**,
//! replacing PyTorch for the Nebula reproduction.
//!
//! The crate is organised around the [`Layer`] trait: each layer caches what
//! its backward pass needs during `forward`, and `backward` consumes the
//! cache, accumulates parameter gradients, and returns the input gradient.
//! Composite models (the paper's modular model among them) orchestrate
//! layers by hand — there is no tape/autograd, every gradient is written
//! out explicitly and checked against finite differences in the tests.
//!
//! Contents:
//! * [`layer`] — the `Layer` trait, parameter visitors, flat (de)serialisation
//!   of parameters (needed by federated aggregation).
//! * [`linear`] — fully-connected layer (`out×in` row-major weights).
//! * [`activation`] — ReLU / LeakyReLU / Tanh / Sigmoid.
//! * [`norm`] — BatchNorm1d with running statistics.
//! * [`dropout`] — inverted dropout.
//! * [`sequential`] — ordered container of boxed layers.
//! * [`loss`] — softmax cross-entropy, KL-to-target (gate distillation), MSE.
//! * [`optim`] — SGD (+momentum, +weight-decay) and Adam.
//! * [`qlinear`] — inference-only int8 linear layer in the wire's
//!   `QuantInt8` format (end-cloud low-tier serving path).
//! * [`gradcheck`] — finite-difference gradient checking used by tests.
//! * [`workspace`] — reusable scratch-buffer pool backing the zero-alloc
//!   forward/backward hot paths of the conv and MoE layers.

pub mod activation;
pub mod conv;
pub mod conv2d;
pub mod dropout;
pub mod gradcheck;
pub mod layer;
pub mod linear;
pub mod loss;
pub mod norm;
pub mod optim;
pub mod qlinear;
pub mod schedule;
pub mod sequential;
pub mod workspace;

pub use activation::{Activation, ActivationKind};
pub use conv::{Conv1d, GlobalAvgPool1d, MaxPool1d};
pub use conv2d::{Conv2d, MaxPool2d};
pub use dropout::Dropout;
pub use layer::{Layer, Mode};
pub use linear::Linear;
pub use loss::{cross_entropy, kl_to_target, mse, CrossEntropyLoss};
pub use norm::BatchNorm1d;
pub use optim::{Adam, Optimizer, Sgd};
pub use schedule::LrSchedule;
pub use sequential::Sequential;
pub use workspace::Workspace;
