//! Inverted dropout.
//!
//! Training mode zeroes each element with probability `p` and scales the
//! survivors by `1/(1−p)` so eval mode needs no rescaling. The layer owns
//! its RNG (seeded at construction) to keep the `Layer` trait signature
//! clean while preserving determinism.

use crate::layer::{Layer, Mode};
use nebula_tensor::{NebulaRng, Tensor};

/// Inverted dropout layer.
#[derive(Clone, Debug)]
pub struct Dropout {
    p: f32,
    rng: NebulaRng,
    mask: Option<Tensor>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p ∈ [0, 1)`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout p must be in [0,1): got {p}");
        Self { p, rng: NebulaRng::seed(seed), mask: None }
    }

    /// The drop probability.
    pub fn p(&self) -> f32 {
        self.p
    }
}

impl Layer for Dropout {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        if mode == Mode::Eval || self.p == 0.0 {
            self.mask = None;
            return x.clone();
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mask_data: Vec<f32> =
            (0..x.len()).map(|_| if self.rng.bernoulli(keep as f64) { scale } else { 0.0 }).collect();
        let mask = Tensor::from_vec(mask_data, x.shape());
        let y = x.mul(&mask);
        self.mask = Some(mask);
        y
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        match &self.mask {
            Some(mask) => grad.mul(mask),
            None => grad.clone(),
        }
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {}

    fn visit_params_ref(&self, _f: &mut dyn FnMut(&Tensor)) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_mode_is_identity() {
        let mut d = Dropout::new(0.5, 1);
        let x = Tensor::vector(&[1.0, 2.0, 3.0]).reshape(&[1, 3]);
        let y = d.forward(&x, Mode::Eval);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn train_mode_drops_roughly_p_fraction() {
        let mut d = Dropout::new(0.3, 2);
        let x = Tensor::ones(&[100, 100]);
        let y = d.forward(&x, Mode::Train);
        let dropped = y.data().iter().filter(|&&v| v == 0.0).count();
        let frac = dropped as f32 / 10_000.0;
        assert!((frac - 0.3).abs() < 0.03, "dropped fraction {frac}");
    }

    #[test]
    fn survivors_are_scaled_to_preserve_expectation() {
        let mut d = Dropout::new(0.5, 3);
        let x = Tensor::ones(&[64, 64]);
        let y = d.forward(&x, Mode::Train);
        // E[y] = 1 because survivors carry 1/keep.
        assert!((y.mean() - 1.0).abs() < 0.06, "mean {}", y.mean());
        for &v in y.data() {
            assert!(v == 0.0 || (v - 2.0).abs() < 1e-6);
        }
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut d = Dropout::new(0.5, 4);
        let x = Tensor::ones(&[1, 32]);
        let y = d.forward(&x, Mode::Train);
        let dx = d.backward(&Tensor::ones(&[1, 32]));
        // Gradient flows exactly where activations survived.
        for (&yo, &go) in y.data().iter().zip(dx.data()) {
            assert_eq!(yo == 0.0, go == 0.0);
        }
    }

    #[test]
    fn zero_probability_is_identity_even_in_train() {
        let mut d = Dropout::new(0.0, 5);
        let x = Tensor::vector(&[1.0, -2.0]).reshape(&[1, 2]);
        assert_eq!(d.forward(&x, Mode::Train).data(), x.data());
    }

    #[test]
    #[should_panic(expected = "must be in [0,1)")]
    fn rejects_p_of_one() {
        Dropout::new(1.0, 6);
    }
}
