//! Optimisers: SGD (with momentum and weight decay) and Adam.
//!
//! Optimiser state (momentum buffers, Adam moments) is keyed by the visit
//! order of [`Layer::visit_params`], which is fixed per architecture. State
//! buffers are allocated lazily on the first step so an optimiser can be
//! constructed before the model.

use crate::layer::Layer;
use nebula_tensor::Tensor;

/// A gradient-descent optimiser over a [`Layer`]'s parameters.
pub trait Optimizer {
    /// Applies one update step using the layer's accumulated gradients.
    /// Does **not** zero the gradients — callers do that explicitly.
    fn step(&mut self, model: &mut dyn Layer);

    /// The current learning rate.
    fn learning_rate(&self) -> f32;

    /// Replaces the learning rate (for schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with optional momentum and L2 weight decay.
#[derive(Clone, Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Plain SGD.
    pub fn new(lr: f32) -> Self {
        Self { lr, momentum: 0.0, weight_decay: 0.0, velocity: Vec::new() }
    }

    /// SGD with momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        Self { lr, momentum, weight_decay: 0.0, velocity: Vec::new() }
    }

    /// Adds L2 weight decay (builder style).
    pub fn weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, model: &mut dyn Layer) {
        let mut idx = 0;
        let lr = self.lr;
        let momentum = self.momentum;
        let wd = self.weight_decay;
        let velocity = &mut self.velocity;
        model.visit_params(&mut |p, g| {
            if momentum == 0.0 {
                if wd > 0.0 {
                    p.scale_assign(1.0 - lr * wd);
                }
                p.axpy(-lr, g);
            } else {
                if velocity.len() <= idx {
                    velocity.push(Tensor::zeros(p.shape()));
                }
                let v = &mut velocity[idx];
                // v ← μ·v + (g + wd·p); p ← p − lr·v
                v.scale_assign(momentum);
                v.add_assign(g);
                if wd > 0.0 {
                    v.axpy(wd, p);
                }
                p.axpy(-lr, v);
            }
            idx += 1;
        });
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba) with bias correction.
#[derive(Clone, Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Adam with the standard (0.9, 0.999) betas.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Adds L2 weight decay (builder style).
    pub fn weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }
}

impl Optimizer for Adam {
    fn step(&mut self, model: &mut dyn Layer) {
        self.t += 1;
        let t = self.t as f32;
        let bc1 = 1.0 - self.beta1.powf(t);
        let bc2 = 1.0 - self.beta2.powf(t);
        let (lr, b1, b2, eps, wd) = (self.lr, self.beta1, self.beta2, self.eps, self.weight_decay);
        let (mbuf, vbuf) = (&mut self.m, &mut self.v);
        let mut idx = 0;
        model.visit_params(&mut |p, g| {
            if mbuf.len() <= idx {
                mbuf.push(Tensor::zeros(p.shape()));
                vbuf.push(Tensor::zeros(p.shape()));
            }
            let m = &mut mbuf[idx];
            let v = &mut vbuf[idx];
            for i in 0..p.len() {
                let mut gi = g.data()[i];
                if wd > 0.0 {
                    gi += wd * p.data()[i];
                }
                let mi = b1 * m.data()[i] + (1.0 - b1) * gi;
                let vi = b2 * v.data()[i] + (1.0 - b2) * gi * gi;
                m.data_mut()[i] = mi;
                v.data_mut()[i] = vi;
                let m_hat = mi / bc1;
                let v_hat = vi / bc2;
                p.data_mut()[i] -= lr * m_hat / (v_hat.sqrt() + eps);
            }
            idx += 1;
        });
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Mode;
    use crate::linear::Linear;
    use crate::loss::mse;
    use nebula_tensor::{NebulaRng, Tensor};

    /// Trains `y = 2x` with a 1×1 linear layer; any sane optimiser converges.
    fn train_scalar(optimizer: &mut dyn Optimizer, steps: usize) -> f32 {
        let mut rng = NebulaRng::seed(1);
        let mut model = Linear::new(1, 1, &mut rng);
        let x = Tensor::matrix(&[&[1.0], &[2.0], &[-1.0], &[0.5]]);
        let target = x.scale(2.0);
        let mut last = f32::INFINITY;
        for _ in 0..steps {
            model.zero_grad();
            let y = model.forward(&x, Mode::Train);
            let (loss, grad) = mse(&y, &target);
            model.backward(&grad);
            optimizer.step(&mut model);
            last = loss;
        }
        last
    }

    #[test]
    fn sgd_converges_on_linear_regression() {
        let mut opt = Sgd::new(0.1);
        assert!(train_scalar(&mut opt, 200) < 1e-4);
    }

    #[test]
    fn sgd_momentum_converges_faster_than_plain() {
        let mut plain = Sgd::new(0.02);
        let mut mom = Sgd::with_momentum(0.02, 0.9);
        let loss_plain = train_scalar(&mut plain, 50);
        let loss_mom = train_scalar(&mut mom, 50);
        assert!(loss_mom < loss_plain, "momentum {loss_mom} vs plain {loss_plain}");
    }

    #[test]
    fn adam_converges_on_linear_regression() {
        let mut opt = Adam::new(0.05);
        assert!(train_scalar(&mut opt, 300) < 1e-3);
    }

    #[test]
    fn weight_decay_shrinks_parameters() {
        let mut rng = NebulaRng::seed(2);
        let mut model = Linear::new(4, 4, &mut rng);
        let before = model.param_vector().iter().map(|v| v * v).sum::<f32>();
        let mut opt = Sgd::new(0.1).weight_decay(0.5);
        // Zero gradients: the only force is decay.
        for _ in 0..10 {
            model.zero_grad();
            opt.step(&mut model);
        }
        let after = model.param_vector().iter().map(|v| v * v).sum::<f32>();
        assert!(after < before * 0.8, "decay had no effect: {before} -> {after}");
    }

    #[test]
    fn set_learning_rate_takes_effect() {
        let mut opt = Sgd::new(0.1);
        opt.set_learning_rate(0.0);
        assert_eq!(opt.learning_rate(), 0.0);
        let mut rng = NebulaRng::seed(3);
        let mut model = Linear::new(2, 2, &mut rng);
        let before = model.param_vector();
        let x = Tensor::ones(&[1, 2]);
        model.forward(&x, Mode::Train);
        model.backward(&Tensor::ones(&[1, 2]));
        opt.step(&mut model);
        assert_eq!(model.param_vector(), before, "lr=0 must not move params");
    }
}
