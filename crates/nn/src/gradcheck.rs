//! Finite-difference gradient checking.
//!
//! Used by the test suites of `nebula-nn` and `nebula-modular` to validate
//! every hand-written backward pass. The check perturbs each parameter and
//! each input coordinate, compares the numerical derivative of a scalar
//! probe loss against the analytic gradient, and panics with coordinates on
//! the first mismatch.

use crate::layer::{Layer, Mode};
use nebula_tensor::{NebulaRng, Tensor};

/// Scalar probe loss: a fixed random linear functional of the output.
/// Linear probes keep the finite-difference error purely second-order.
fn probe_loss(y: &Tensor, probe: &Tensor) -> f32 {
    y.dot(probe)
}

/// Checks analytic gradients of `layer` against central finite differences.
///
/// * `in_features` — input width; a `batch × in_features` random input is
///   drawn from the seeded RNG.
/// * Checks both ∂loss/∂input and ∂loss/∂θ for every parameter scalar.
///
/// Panics on mismatch. Layers with internal stochasticity (dropout) or
/// batch statistics must behave deterministically across repeated forwards
/// for this to be valid — the check runs everything in `Mode::Train` but
/// re-runs forward for each perturbation, so such layers should be checked
/// with their stochasticity disabled.
pub fn check_layer_gradients(layer: Box<dyn Layer>, in_features: usize, batch: usize, seed: u64) {
    check_layer_gradients_with(layer, in_features, batch, seed, 1e-2, 2e-2)
}

/// [`check_layer_gradients`] with explicit perturbation size and relative
/// tolerance. ReLU-heavy composites need a smaller `eps` (to lower the
/// odds of stepping across an activation kink) and a looser `tol` (f32
/// noise grows as `eps` shrinks).
pub fn check_layer_gradients_with(
    mut layer: Box<dyn Layer>,
    in_features: usize,
    batch: usize,
    seed: u64,
    eps: f32,
    tol: f32,
) {
    let mut rng = NebulaRng::seed(seed);
    let x = Tensor::from_vec(
        (0..batch * in_features).map(|_| rng.normal_f32(0.0, 1.0)).collect(),
        &[batch, in_features],
    );

    // Jitter all parameters away from their initial values. Zero-initialised
    // biases otherwise place ReLU pre-activations *exactly* on the kink for
    // any dead input row (the derivative is then one-sided and the check
    // produces false positives).
    {
        let mut theta = layer.param_vector();
        for v in &mut theta {
            *v += rng.uniform_f32(-0.05, 0.05);
        }
        layer.load_param_vector(&theta);
    }

    // Analytic pass.
    layer.zero_grad();
    let y = layer.forward(&x, Mode::Train);
    let probe = Tensor::from_vec((0..y.len()).map(|_| rng.normal_f32(0.0, 1.0)).collect(), y.shape());
    let dx = layer.backward(&probe);
    let analytic_param_grads = layer.grad_vector();

    // Input gradient check.
    for i in 0..x.len() {
        let mut xp = x.clone();
        xp.data_mut()[i] += eps;
        let mut xm = x.clone();
        xm.data_mut()[i] -= eps;
        let lp = probe_loss(&layer.forward(&xp, Mode::Train), &probe);
        let lm = probe_loss(&layer.forward(&xm, Mode::Train), &probe);
        let fd = (lp - lm) / (2.0 * eps);
        let an = dx.data()[i];
        let denom = 1.0f32.max(fd.abs()).max(an.abs());
        assert!((fd - an).abs() / denom < tol, "input grad mismatch at {i}: fd {fd} vs analytic {an}");
    }

    // Parameter gradient check: perturb each scalar through the flat vector.
    let theta = layer.param_vector();
    for i in 0..theta.len() {
        let mut tp = theta.clone();
        tp[i] += eps;
        layer.load_param_vector(&tp);
        let lp = probe_loss(&layer.forward(&x, Mode::Train), &probe);
        let mut tm = theta.clone();
        tm[i] -= eps;
        layer.load_param_vector(&tm);
        let lm = probe_loss(&layer.forward(&x, Mode::Train), &probe);
        let fd = (lp - lm) / (2.0 * eps);
        let an = analytic_param_grads[i];
        let denom = 1.0f32.max(fd.abs()).max(an.abs());
        assert!((fd - an).abs() / denom < tol, "param grad mismatch at {i}: fd {fd} vs analytic {an}");
    }
    layer.load_param_vector(&theta);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::Linear;

    #[test]
    fn gradcheck_accepts_correct_layer() {
        let mut rng = NebulaRng::seed(1);
        check_layer_gradients(Box::new(Linear::new(3, 2, &mut rng)), 3, 2, 7);
    }

    /// A deliberately broken layer: backward returns a wrongly-scaled input
    /// gradient. The checker must catch it.
    struct BrokenLinear(Linear);
    impl Layer for BrokenLinear {
        fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
            self.0.forward(x, mode)
        }
        fn backward(&mut self, grad: &Tensor) -> Tensor {
            self.0.backward(grad).scale(0.5) // wrong on purpose
        }
        fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
            self.0.visit_params(f)
        }
        fn visit_params_ref(&self, f: &mut dyn FnMut(&Tensor)) {
            self.0.visit_params_ref(f)
        }
    }

    #[test]
    #[should_panic(expected = "input grad mismatch")]
    fn gradcheck_rejects_broken_layer() {
        let mut rng = NebulaRng::seed(2);
        check_layer_gradients(Box::new(BrokenLinear(Linear::new(3, 2, &mut rng))), 3, 2, 8);
    }
}
