//! Parameter-free activation layers.

use crate::layer::{Layer, Mode};
use nebula_tensor::Tensor;

/// Which nonlinearity an [`Activation`] layer applies.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ActivationKind {
    Relu,
    LeakyRelu(f32),
    Tanh,
    Sigmoid,
}

impl ActivationKind {
    fn apply(self, v: f32) -> f32 {
        match self {
            ActivationKind::Relu => v.max(0.0),
            ActivationKind::LeakyRelu(a) => {
                if v > 0.0 {
                    v
                } else {
                    a * v
                }
            }
            ActivationKind::Tanh => v.tanh(),
            ActivationKind::Sigmoid => 1.0 / (1.0 + (-v).exp()),
        }
    }

    /// Derivative expressed in terms of input `x` and output `y = f(x)`.
    fn derivative(self, x: f32, y: f32) -> f32 {
        match self {
            ActivationKind::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            ActivationKind::LeakyRelu(a) => {
                if x > 0.0 {
                    1.0
                } else {
                    a
                }
            }
            ActivationKind::Tanh => 1.0 - y * y,
            ActivationKind::Sigmoid => y * (1.0 - y),
        }
    }
}

/// Element-wise activation layer caching both input and output.
#[derive(Clone, Debug)]
pub struct Activation {
    kind: ActivationKind,
    cached_x: Option<Tensor>,
    cached_y: Option<Tensor>,
}

impl Activation {
    pub fn new(kind: ActivationKind) -> Self {
        Self { kind, cached_x: None, cached_y: None }
    }

    pub fn relu() -> Self {
        Self::new(ActivationKind::Relu)
    }

    pub fn tanh() -> Self {
        Self::new(ActivationKind::Tanh)
    }

    pub fn sigmoid() -> Self {
        Self::new(ActivationKind::Sigmoid)
    }

    pub fn leaky_relu(slope: f32) -> Self {
        Self::new(ActivationKind::LeakyRelu(slope))
    }
}

impl Layer for Activation {
    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        let y = x.map(|v| self.kind.apply(v));
        self.cached_x = Some(x.clone());
        self.cached_y = Some(y.clone());
        y
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let x = self.cached_x.as_ref().expect("Activation::backward before forward");
        let y = self.cached_y.as_ref().expect("Activation::backward before forward");
        assert_eq!(grad.shape(), x.shape(), "Activation grad shape mismatch");
        let mut out = grad.clone();
        for ((o, &xi), &yi) in out.data_mut().iter_mut().zip(x.data()).zip(y.data()) {
            *o *= self.kind.derivative(xi, yi);
        }
        out
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {}

    fn visit_params_ref(&self, _f: &mut dyn FnMut(&Tensor)) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use nebula_tensor::assert_close;

    #[test]
    fn relu_forward_backward() {
        let mut a = Activation::relu();
        let x = Tensor::vector(&[-1.0, 0.5, 2.0]).reshape(&[1, 3]);
        let y = a.forward(&x, Mode::Train);
        assert_eq!(y.data(), &[0.0, 0.5, 2.0]);
        let dx = a.backward(&Tensor::ones(&[1, 3]));
        assert_eq!(dx.data(), &[0.0, 1.0, 1.0]);
    }

    #[test]
    fn leaky_relu_keeps_negative_slope() {
        let mut a = Activation::leaky_relu(0.1);
        let x = Tensor::vector(&[-2.0, 3.0]).reshape(&[1, 2]);
        let y = a.forward(&x, Mode::Train);
        assert_close(y.data()[0], -0.2, 1e-6);
        let dx = a.backward(&Tensor::ones(&[1, 2]));
        assert_close(dx.data()[0], 0.1, 1e-6);
        assert_close(dx.data()[1], 1.0, 1e-6);
    }

    #[test]
    fn sigmoid_saturates_and_derivative_peaks_at_zero() {
        let mut a = Activation::sigmoid();
        let x = Tensor::vector(&[0.0, 10.0, -10.0]).reshape(&[1, 3]);
        let y = a.forward(&x, Mode::Eval);
        assert_close(y.data()[0], 0.5, 1e-6);
        assert!(y.data()[1] > 0.9999);
        assert!(y.data()[2] < 0.0001);
        let dx = a.backward(&Tensor::ones(&[1, 3]));
        assert_close(dx.data()[0], 0.25, 1e-6);
        assert!(dx.data()[1] < 1e-3);
    }

    #[test]
    fn tanh_derivative_matches_identity() {
        let mut a = Activation::tanh();
        let x = Tensor::vector(&[0.7]).reshape(&[1, 1]);
        let y = a.forward(&x, Mode::Eval);
        let dx = a.backward(&Tensor::ones(&[1, 1]));
        assert_close(dx.data()[0], 1.0 - y.data()[0] * y.data()[0], 1e-6);
    }

    #[test]
    fn activation_has_no_params() {
        let a = Activation::relu();
        assert_eq!(a.param_count(), 0);
    }
}
