//! Fully-connected layer.
//!
//! Weights are stored row-major as `out_features × in_features` so the
//! forward pass is a single [`Tensor::matmul_nt`] over contiguous rows.

use crate::layer::{Layer, Mode};
use crate::workspace::Workspace;
use nebula_tensor::{Init, NebulaRng, Tensor};

/// `y = x · Wᵀ + b` with `W: out×in`, `b: out`.
#[derive(Clone, Debug)]
pub struct Linear {
    w: Tensor,
    b: Tensor,
    dw: Tensor,
    db: Tensor,
    cached_x: Option<Tensor>,
    ws: Workspace,
}

impl Linear {
    /// Kaiming-initialised linear layer (the default for ReLU stacks).
    pub fn new(in_features: usize, out_features: usize, rng: &mut NebulaRng) -> Self {
        Self::with_init(in_features, out_features, Init::KaimingNormal, rng)
    }

    /// Linear layer with an explicit weight-init scheme; bias starts at zero.
    pub fn with_init(in_features: usize, out_features: usize, init: Init, rng: &mut NebulaRng) -> Self {
        Self {
            w: init.weight(out_features, in_features, rng),
            b: Tensor::zeros(&[out_features]),
            dw: Tensor::zeros(&[out_features, in_features]),
            db: Tensor::zeros(&[out_features]),
            cached_x: None,
            ws: Workspace::new(),
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.w.shape()[1]
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.w.shape()[0]
    }

    /// Immutable weight access (for tests and cost models).
    pub fn weight(&self) -> &Tensor {
        &self.w
    }

    /// Immutable bias access.
    pub fn bias(&self) -> &Tensor {
        &self.b
    }

    /// Mutable weight access (used by width-scaled HeteroFL extraction).
    pub fn weight_mut(&mut self) -> &mut Tensor {
        &mut self.w
    }

    /// Mutable bias access.
    pub fn bias_mut(&mut self) -> &mut Tensor {
        &mut self.b
    }
}

impl Layer for Linear {
    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        assert_eq!(x.cols(), self.in_features(), "Linear input width mismatch");
        // Reuse the activation cache buffer when the batch shape repeats
        // (always true inside a training loop).
        match self.cached_x.as_mut() {
            Some(c) if c.shape() == x.shape() => c.data_mut().copy_from_slice(x.data()),
            _ => self.cached_x = Some(x.clone()),
        }
        let mut y = self.ws.zeroed(&[x.rows(), self.out_features()]);
        x.matmul_nt_into(&self.w, &mut y);
        y.add_row_broadcast_assign(&self.b);
        y
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let x = self.cached_x.as_ref().expect("Linear::backward before forward");
        // dW = gradᵀ · x  (out×batch · batch×in), accumulated via scratch.
        let mut dw = self.ws.zeroed(&[self.out_features(), self.in_features()]);
        grad.matmul_tn_into(x, &mut dw);
        self.dw.add_assign(&dw);
        self.ws.recycle(dw);
        self.db.add_assign(&grad.sum_rows());
        // dx = grad · W  (batch×out · out×in).
        grad.matmul(&self.w)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        f(&mut self.w, &mut self.dw);
        f(&mut self.b, &mut self.db);
    }

    fn visit_params_ref(&self, f: &mut dyn FnMut(&Tensor)) {
        f(&self.w);
        f(&self.b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer_gradients;
    use nebula_tensor::{assert_tensor_close, NebulaRng};

    #[test]
    fn forward_matches_manual() {
        let mut rng = NebulaRng::seed(1);
        let mut l = Linear::new(2, 3, &mut rng);
        l.weight_mut().data_mut().copy_from_slice(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]); // rows: [1,2],[3,4],[5,6]
        l.bias_mut().data_mut().copy_from_slice(&[0.1, 0.2, 0.3]);
        let x = Tensor::matrix(&[&[1.0, 1.0]]);
        let y = l.forward(&x, Mode::Eval);
        assert_tensor_close(&y, &Tensor::matrix(&[&[3.1, 7.2, 11.3]]), 1e-5);
    }

    #[test]
    fn gradients_pass_finite_difference_check() {
        let mut rng = NebulaRng::seed(2);
        let layer = Linear::new(5, 4, &mut rng);
        check_layer_gradients(Box::new(layer), 5, 3, 42);
    }

    #[test]
    fn backward_accumulates_across_calls() {
        let mut rng = NebulaRng::seed(3);
        let mut l = Linear::new(2, 2, &mut rng);
        let x = Tensor::ones(&[1, 2]);
        let g = Tensor::ones(&[1, 2]);
        l.forward(&x, Mode::Train);
        l.backward(&g);
        let g1 = l.grad_vector();
        l.forward(&x, Mode::Train);
        l.backward(&g);
        let g2 = l.grad_vector();
        for (a, b) in g1.iter().zip(&g2) {
            assert!((b - 2.0 * a).abs() < 1e-5, "grad not accumulated: {a} vs {b}");
        }
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn forward_rejects_wrong_width() {
        let mut rng = NebulaRng::seed(4);
        let mut l = Linear::new(3, 2, &mut rng);
        l.forward(&Tensor::zeros(&[1, 5]), Mode::Eval);
    }

    #[test]
    fn param_count_is_w_plus_b() {
        let mut rng = NebulaRng::seed(5);
        let l = Linear::new(7, 4, &mut rng);
        assert_eq!(l.param_count(), 7 * 4 + 4);
    }
}
