//! Loss functions.
//!
//! Each loss returns `(scalar_loss, grad_wrt_input)` so callers can chain
//! straight into `Layer::backward`. The softmax cross-entropy is fused
//! (computed from logits) for numerical stability; its gradient is the
//! classic `softmax(logits) − one_hot(y)` averaged over the batch.

use nebula_tensor::Tensor;

/// Mean softmax cross-entropy from logits.
///
/// `logits: batch × classes`, `labels: batch` (class indices).
/// Returns `(loss, dlogits)` with the gradient already averaged over the
/// batch.
pub fn cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    assert_eq!(logits.rank(), 2, "cross_entropy expects rank-2 logits");
    assert_eq!(logits.rows(), labels.len(), "labels/batch mismatch");
    let batch = logits.rows();
    assert!(batch > 0, "cross_entropy on empty batch");
    let classes = logits.cols();

    let log_probs = logits.log_softmax_rows();
    let mut loss = 0.0f32;
    let mut grad = log_probs.map(f32::exp); // softmax probabilities
    for (i, &y) in labels.iter().enumerate() {
        assert!(y < classes, "label {y} out of range for {classes} classes");
        loss -= log_probs.at(i, y);
        *grad.at_mut(i, y) -= 1.0;
    }
    let scale = 1.0 / batch as f32;
    grad.scale_assign(scale);
    (loss * scale, grad)
}

/// Mean KL divergence `KL(target ‖ softmax(logits))` plus its gradient
/// w.r.t. the logits.
///
/// Used by the module ability-enhancing fine-tuning (§4.3): the gate is
/// pulled toward the recommended activation distribution `g_label`.
/// `target` rows must be probability distributions.
pub fn kl_to_target(logits: &Tensor, target: &Tensor) -> (f32, Tensor) {
    assert_eq!(logits.shape(), target.shape(), "kl_to_target shape mismatch");
    let batch = logits.rows();
    assert!(batch > 0, "kl_to_target on empty batch");

    let log_probs = logits.log_softmax_rows();
    let probs = log_probs.map(f32::exp);

    // KL(t ‖ p) = Σ t (ln t − ln p); the ln t term is constant in logits.
    let mut loss = 0.0f32;
    for i in 0..batch {
        for j in 0..logits.cols() {
            let t = target.at(i, j);
            if t > 0.0 {
                loss += t * (t.ln() - log_probs.at(i, j));
            }
        }
    }
    // d/dlogits = softmax(logits) − target, averaged over batch.
    let mut grad = probs.sub(target);
    let scale = 1.0 / batch as f32;
    grad.scale_assign(scale);
    (loss * scale, grad)
}

/// Mean squared error and its gradient w.r.t. predictions.
pub fn mse(pred: &Tensor, target: &Tensor) -> (f32, Tensor) {
    assert_eq!(pred.shape(), target.shape(), "mse shape mismatch");
    let n = pred.len().max(1) as f32;
    let diff = pred.sub(target);
    let loss = diff.norm_sq() / n;
    let grad = diff.scale(2.0 / n);
    (loss, grad)
}

/// Convenience struct bundling cross-entropy with accuracy bookkeeping.
#[derive(Default, Clone, Debug)]
pub struct CrossEntropyLoss {
    total_loss: f64,
    total_correct: usize,
    total_seen: usize,
}

impl CrossEntropyLoss {
    pub fn new() -> Self {
        Self::default()
    }

    /// Computes loss+grad for one batch and updates running statistics.
    pub fn forward(&mut self, logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
        let (loss, grad) = cross_entropy(logits, labels);
        let preds = logits.argmax_rows();
        self.total_correct += preds.iter().zip(labels).filter(|(p, y)| p == y).count();
        self.total_seen += labels.len();
        self.total_loss += loss as f64 * labels.len() as f64;
        (loss, grad)
    }

    /// Mean loss over everything seen so far.
    pub fn mean_loss(&self) -> f32 {
        if self.total_seen == 0 {
            0.0
        } else {
            (self.total_loss / self.total_seen as f64) as f32
        }
    }

    /// Accuracy over everything seen so far.
    pub fn accuracy(&self) -> f32 {
        if self.total_seen == 0 {
            0.0
        } else {
            self.total_correct as f32 / self.total_seen as f32
        }
    }

    /// Resets running statistics.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nebula_tensor::{assert_close, Tensor};

    #[test]
    fn cross_entropy_of_perfect_prediction_is_small() {
        let logits = Tensor::matrix(&[&[10.0, -10.0], &[-10.0, 10.0]]);
        let (loss, _) = cross_entropy(&logits, &[0, 1]);
        assert!(loss < 1e-3, "loss {loss}");
    }

    #[test]
    fn cross_entropy_of_uniform_logits_is_ln_classes() {
        let logits = Tensor::zeros(&[3, 4]);
        let (loss, _) = cross_entropy(&logits, &[0, 1, 2]);
        assert_close(loss, (4.0f32).ln(), 1e-5);
    }

    #[test]
    fn cross_entropy_grad_is_softmax_minus_onehot() {
        let logits = Tensor::matrix(&[&[1.0, 2.0, 3.0]]);
        let (_, grad) = cross_entropy(&logits, &[2]);
        let probs = logits.softmax_rows();
        assert_close(grad.at(0, 0), probs.at(0, 0), 1e-5);
        assert_close(grad.at(0, 2), probs.at(0, 2) - 1.0, 1e-5);
        // Gradient rows of CE always sum to zero.
        assert_close(grad.row(0).iter().sum::<f32>(), 0.0, 1e-5);
    }

    #[test]
    fn cross_entropy_grad_matches_finite_difference() {
        let logits = Tensor::matrix(&[&[0.3, -0.7, 1.2], &[2.0, 0.1, -0.4]]);
        let labels = [1usize, 0];
        let (_, grad) = cross_entropy(&logits, &labels);
        let eps = 1e-3;
        for i in 0..2 {
            for j in 0..3 {
                let mut plus = logits.clone();
                *plus.at_mut(i, j) += eps;
                let mut minus = logits.clone();
                *minus.at_mut(i, j) -= eps;
                let (lp, _) = cross_entropy(&plus, &labels);
                let (lm, _) = cross_entropy(&minus, &labels);
                let fd = (lp - lm) / (2.0 * eps);
                assert!((fd - grad.at(i, j)).abs() < 1e-3, "({i},{j}): fd {fd} vs {}", grad.at(i, j));
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cross_entropy_rejects_bad_label() {
        cross_entropy(&Tensor::zeros(&[1, 3]), &[5]);
    }

    #[test]
    fn kl_is_zero_when_matching_target() {
        let logits = Tensor::matrix(&[&[1.0, 2.0, 0.5]]);
        let target = logits.softmax_rows();
        let (loss, grad) = kl_to_target(&logits, &target);
        assert_close(loss, 0.0, 1e-5);
        assert!(grad.data().iter().all(|&g| g.abs() < 1e-5));
    }

    #[test]
    fn kl_grad_matches_finite_difference() {
        let logits = Tensor::matrix(&[&[0.2, -1.0, 0.7]]);
        let target = Tensor::matrix(&[&[0.7, 0.2, 0.1]]);
        let (_, grad) = kl_to_target(&logits, &target);
        let eps = 1e-3;
        for j in 0..3 {
            let mut plus = logits.clone();
            *plus.at_mut(0, j) += eps;
            let mut minus = logits.clone();
            *minus.at_mut(0, j) -= eps;
            let fd = (kl_to_target(&plus, &target).0 - kl_to_target(&minus, &target).0) / (2.0 * eps);
            assert!((fd - grad.at(0, j)).abs() < 1e-3, "j={j}: fd {fd} vs {}", grad.at(0, j));
        }
    }

    #[test]
    fn mse_basics() {
        let pred = Tensor::vector(&[1.0, 2.0]);
        let target = Tensor::vector(&[0.0, 0.0]);
        let (loss, grad) = mse(&pred, &target);
        assert_close(loss, 2.5, 1e-6);
        assert_eq!(grad.data(), &[1.0, 2.0]);
    }

    #[test]
    fn running_accuracy_tracks_batches() {
        let mut ce = CrossEntropyLoss::new();
        let logits = Tensor::matrix(&[&[5.0, 0.0], &[0.0, 5.0]]);
        ce.forward(&logits, &[0, 0]); // one right, one wrong
        assert_close(ce.accuracy(), 0.5, 1e-6);
        ce.forward(&logits, &[0, 1]); // both right
        assert_close(ce.accuracy(), 0.75, 1e-6);
        ce.reset();
        assert_eq!(ce.accuracy(), 0.0);
    }
}
