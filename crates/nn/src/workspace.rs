//! Reusable scratch buffers for layer hot paths.
//!
//! Every forward/backward through a conv or MoE layer needs short-lived
//! rank-2 temporaries (im2col matrices, GEMM products, gathered row
//! batches, gradient scratch). Allocating them per call puts the
//! allocator on the per-sample critical path of the simulated round loop
//! — hundreds of thousands of calls per experiment. A [`Workspace`] is a
//! small free-list of `Vec<f32>` buffers owned by the layer itself:
//! [`Workspace::zeroed`] hands out a tensor backed by a recycled buffer
//! (or a fresh one on first use), and [`Workspace::recycle`] returns the
//! buffer once the temporary dies. After layer warm-up the hot path
//! performs no heap allocation for scratch.
//!
//! The pool is intentionally dumb: layers cycle through a fixed, small
//! set of shapes (batch sizes change only between pretraining and round
//! phases), so best-fit scanning over ≤ [`MAX_POOLED`] buffers is cheaper
//! than any keyed map.

use nebula_tensor::Tensor;
use std::sync::atomic::{AtomicU64, Ordering};

/// Cap on pooled buffers so a workspace cannot hoard memory if a caller
/// recycles more shapes than it ever reuses.
const MAX_POOLED: usize = 8;

static POOL_HITS: AtomicU64 = AtomicU64::new(0);
static POOL_MISSES: AtomicU64 = AtomicU64::new(0);

/// Process-wide workspace pool effectiveness: `(hits, misses)` where a
/// hit is a [`Workspace::zeroed`] served from a pooled buffer of
/// sufficient capacity and a miss required (re)allocation. Counters are
/// monotonic across all workspaces; telemetry consumers diff two
/// readings to attribute a window of work.
pub fn pool_stats() -> (u64, u64) {
    (POOL_HITS.load(Ordering::Relaxed), POOL_MISSES.load(Ordering::Relaxed))
}

/// A free-list buffer pool for layer-internal scratch tensors.
#[derive(Default)]
pub struct Workspace {
    pool: Vec<Vec<f32>>,
}

impl Workspace {
    /// An empty workspace; buffers are acquired lazily.
    pub const fn new() -> Self {
        Self { pool: Vec::new() }
    }

    /// Returns an all-zeros tensor of `shape`, reusing a pooled buffer
    /// when one with sufficient capacity exists (best fit).
    pub fn zeroed(&mut self, shape: &[usize]) -> Tensor {
        let n: usize = shape.iter().product();
        // Best fit: smallest pooled capacity that still avoids a realloc.
        let mut pick: Option<usize> = None;
        for (i, buf) in self.pool.iter().enumerate() {
            if buf.capacity() >= n && pick.is_none_or(|p| buf.capacity() < self.pool[p].capacity()) {
                pick = Some(i);
            }
        }
        let mut buf = match pick {
            Some(i) => {
                POOL_HITS.fetch_add(1, Ordering::Relaxed);
                self.pool.swap_remove(i)
            }
            None => {
                POOL_MISSES.fetch_add(1, Ordering::Relaxed);
                self.pool.pop().unwrap_or_default()
            }
        };
        buf.clear();
        buf.resize(n, 0.0);
        Tensor::from_vec(buf, shape)
    }

    /// Returns a tensor's buffer to the pool for a later [`zeroed`].
    ///
    /// [`zeroed`]: Workspace::zeroed
    pub fn recycle(&mut self, t: Tensor) {
        if self.pool.len() < MAX_POOLED {
            self.pool.push(t.into_vec());
        }
    }

    /// Number of buffers currently pooled (test hook).
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }
}

/// Scratch is not layer state: a cloned layer starts with an empty pool.
impl Clone for Workspace {
    fn clone(&self) -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Workspace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Workspace({} pooled)", self.pool.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycled_buffer_is_reused_and_zeroed() {
        let mut ws = Workspace::new();
        let mut t = ws.zeroed(&[4, 8]);
        t.data_mut().iter_mut().for_each(|v| *v = 7.0);
        let ptr = t.data().as_ptr();
        ws.recycle(t);
        let again = ws.zeroed(&[8, 4]); // same element count, new shape
        assert_eq!(again.data().as_ptr(), ptr, "buffer was not reused");
        assert!(again.data().iter().all(|&v| v == 0.0), "stale data leaked");
        assert_eq!(ws.pooled(), 0);
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient_buffer() {
        let mut ws = Workspace::new();
        let big = ws.zeroed(&[100]);
        let small = ws.zeroed(&[10]);
        let small_ptr = small.data().as_ptr();
        ws.recycle(big);
        ws.recycle(small);
        let t = ws.zeroed(&[10]);
        assert_eq!(t.data().as_ptr(), small_ptr, "best fit should pick the 10-cap buffer");
    }

    #[test]
    fn pool_is_bounded() {
        let mut ws = Workspace::new();
        let tensors: Vec<Tensor> = (0..2 * MAX_POOLED).map(|_| ws.zeroed(&[3])).collect();
        for t in tensors {
            ws.recycle(t);
        }
        assert_eq!(ws.pooled(), MAX_POOLED);
    }

    #[test]
    fn clone_starts_empty() {
        let mut ws = Workspace::new();
        let t = ws.zeroed(&[5]);
        ws.recycle(t);
        assert_eq!(ws.clone().pooled(), 0);
    }
}
