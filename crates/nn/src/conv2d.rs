//! 2-D convolution and pooling — the substrate of the paper's image
//! models (ResNet18/VGG16 over CIFAR).
//!
//! Images ride in the workspace's rank-2 layout as
//! `batch × (channels · height · width)`, channel-major then row-major
//! per sample (PyTorch's contiguous NCHW flattened). As with [`crate::Conv1d`],
//! the convolution lowers to a GEMM via im2col / col2im.

use crate::layer::{Layer, Mode};
use crate::workspace::Workspace;
use nebula_tensor::{Init, NebulaRng, Tensor};

/// 2-D convolution with square kernels, zero padding and unit stride
/// option.
pub struct Conv2d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
    in_h: usize,
    in_w: usize,
    /// Weights `out_channels × (in_channels · kernel²)`.
    w: Tensor,
    b: Tensor,
    dw: Tensor,
    db: Tensor,
    cols: Option<Tensor>,
    last_batch: usize,
    ws: Workspace,
}

impl Conv2d {
    /// Builds a convolution over `in_h × in_w` feature maps.
    // Eight scalars mirror the conv hyper-parameter list; a builder would obscure it.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        in_h: usize,
        in_w: usize,
        rng: &mut NebulaRng,
    ) -> Self {
        assert!(kernel >= 1 && stride >= 1, "kernel/stride must be ≥ 1");
        assert!(in_h + 2 * pad >= kernel && in_w + 2 * pad >= kernel, "kernel larger than padded input");
        Self {
            in_channels,
            out_channels,
            kernel,
            stride,
            pad,
            in_h,
            in_w,
            w: Init::KaimingNormal.weight(out_channels, in_channels * kernel * kernel, rng),
            b: Tensor::zeros(&[out_channels]),
            dw: Tensor::zeros(&[out_channels, in_channels * kernel * kernel]),
            db: Tensor::zeros(&[out_channels]),
            cols: None,
            last_batch: 0,
            ws: Workspace::new(),
        }
    }

    /// Output height.
    pub fn out_h(&self) -> usize {
        (self.in_h + 2 * self.pad - self.kernel) / self.stride + 1
    }

    /// Output width.
    pub fn out_w(&self) -> usize {
        (self.in_w + 2 * self.pad - self.kernel) / self.stride + 1
    }

    /// Flattened output feature count.
    pub fn out_features(&self) -> usize {
        self.out_channels * self.out_h() * self.out_w()
    }

    /// Flattened input feature count.
    pub fn in_features(&self) -> usize {
        self.in_channels * self.in_h * self.in_w
    }

    /// Fills a pre-zeroed `cols` matrix (`(batch·oh·ow) × krows`); the
    /// zero background doubles as the padding values, which is what lets
    /// the caller hand in a recycled buffer.
    fn im2col_into(&self, x: &Tensor, cols: &mut Tensor) {
        let batch = x.rows();
        let (oh, ow) = (self.out_h(), self.out_w());
        let plane = self.in_h * self.in_w;
        for bs in 0..batch {
            let xrow = x.row(bs);
            for oy in 0..oh {
                for ox in 0..ow {
                    let crow = cols.row_mut(bs * oh * ow + oy * ow + ox);
                    let y0 = (oy * self.stride) as isize - self.pad as isize;
                    let x0 = (ox * self.stride) as isize - self.pad as isize;
                    for c in 0..self.in_channels {
                        for ky in 0..self.kernel {
                            let yy = y0 + ky as isize;
                            if yy < 0 || yy as usize >= self.in_h {
                                continue;
                            }
                            for kx in 0..self.kernel {
                                let xx = x0 + kx as isize;
                                if xx < 0 || xx as usize >= self.in_w {
                                    continue;
                                }
                                crow[c * self.kernel * self.kernel + ky * self.kernel + kx] =
                                    xrow[c * plane + yy as usize * self.in_w + xx as usize];
                            }
                        }
                    }
                }
            }
        }
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        assert_eq!(x.cols(), self.in_features(), "Conv2d input width mismatch");
        let batch = x.rows();
        let (oh, ow) = (self.out_h(), self.out_w());
        let krows = self.in_channels * self.kernel * self.kernel;
        let col_shape = [batch * oh * ow, krows];
        // Reuse the cached im2col matrix across calls; batch shape is
        // stable inside a training loop so this allocates once.
        let mut cols = match self.cols.take() {
            Some(mut c) if c.shape() == col_shape => {
                c.zero_();
                c
            }
            _ => Tensor::zeros(&col_shape),
        };
        self.im2col_into(x, &mut cols);
        let mut prod = self.ws.zeroed(&[batch * oh * ow, self.out_channels]);
        cols.matmul_nt_into(&self.w, &mut prod);
        let mut y = Tensor::zeros(&[batch, self.out_features()]);
        let oplane = oh * ow;
        for bs in 0..batch {
            for p in 0..oplane {
                let prow = prod.row(bs * oplane + p);
                let yrow = y.row_mut(bs);
                for (oc, &v) in prow.iter().enumerate() {
                    yrow[oc * oplane + p] = v + self.b.data()[oc];
                }
            }
        }
        self.ws.recycle(prod);
        self.cols = Some(cols);
        self.last_batch = batch;
        y
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let cols = self.cols.take().expect("Conv2d::backward before forward");
        let batch = self.last_batch;
        let (oh, ow) = (self.out_h(), self.out_w());
        let oplane = oh * ow;
        assert_eq!(grad.cols(), self.out_features(), "Conv2d grad width mismatch");

        // Unpack grad into (batch·oh·ow) × out_channels.
        let mut gprod = self.ws.zeroed(&[batch * oplane, self.out_channels]);
        for bs in 0..batch {
            let grow = grad.row(bs);
            for p in 0..oplane {
                let gp = gprod.row_mut(bs * oplane + p);
                for oc in 0..self.out_channels {
                    gp[oc] = grow[oc * oplane + p];
                }
            }
        }

        let mut dw = self.ws.zeroed(&[self.out_channels, self.in_channels * self.kernel * self.kernel]);
        gprod.matmul_tn_into(&cols, &mut dw);
        self.dw.add_assign(&dw);
        self.ws.recycle(dw);
        self.db.add_assign(&gprod.sum_rows());
        self.cols = Some(cols);

        // col2im scatter.
        let mut dcols = self.ws.zeroed(&[batch * oplane, self.in_channels * self.kernel * self.kernel]);
        gprod.matmul_into(&self.w, &mut dcols);
        self.ws.recycle(gprod);
        let plane = self.in_h * self.in_w;
        let mut dx = Tensor::zeros(&[batch, self.in_features()]);
        for bs in 0..batch {
            for oy in 0..oh {
                for ox in 0..ow {
                    let drow = dcols.row(bs * oplane + oy * ow + ox);
                    let xrow = dx.row_mut(bs);
                    let y0 = (oy * self.stride) as isize - self.pad as isize;
                    let x0 = (ox * self.stride) as isize - self.pad as isize;
                    for c in 0..self.in_channels {
                        for ky in 0..self.kernel {
                            let yy = y0 + ky as isize;
                            if yy < 0 || yy as usize >= self.in_h {
                                continue;
                            }
                            for kx in 0..self.kernel {
                                let xx = x0 + kx as isize;
                                if xx < 0 || xx as usize >= self.in_w {
                                    continue;
                                }
                                xrow[c * plane + yy as usize * self.in_w + xx as usize] +=
                                    drow[c * self.kernel * self.kernel + ky * self.kernel + kx];
                            }
                        }
                    }
                }
            }
        }
        self.ws.recycle(dcols);
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        f(&mut self.w, &mut self.dw);
        f(&mut self.b, &mut self.db);
    }

    fn visit_params_ref(&self, f: &mut dyn FnMut(&Tensor)) {
        f(&self.w);
        f(&self.b);
    }
}

/// Non-overlapping 2-D max pooling.
pub struct MaxPool2d {
    channels: usize,
    in_h: usize,
    in_w: usize,
    window: usize,
    argmax: Option<Vec<usize>>,
    last_batch: usize,
}

impl MaxPool2d {
    pub fn new(channels: usize, in_h: usize, in_w: usize, window: usize) -> Self {
        assert!(
            window >= 1 && in_h.is_multiple_of(window) && in_w.is_multiple_of(window),
            "window must tile the plane"
        );
        Self { channels, in_h, in_w, window, argmax: None, last_batch: 0 }
    }

    pub fn out_h(&self) -> usize {
        self.in_h / self.window
    }

    pub fn out_w(&self) -> usize {
        self.in_w / self.window
    }

    pub fn out_features(&self) -> usize {
        self.channels * self.out_h() * self.out_w()
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        assert_eq!(x.cols(), self.channels * self.in_h * self.in_w, "MaxPool2d width mismatch");
        let batch = x.rows();
        let (oh, ow) = (self.out_h(), self.out_w());
        let plane = self.in_h * self.in_w;
        let mut y = Tensor::zeros(&[batch, self.out_features()]);
        let mut argmax = vec![0usize; batch * self.out_features()];
        for bs in 0..batch {
            let xrow = x.row(bs);
            for c in 0..self.channels {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = c * plane + (oy * self.window) * self.in_w + ox * self.window;
                        for wy in 0..self.window {
                            for wx in 0..self.window {
                                let idx =
                                    c * plane + (oy * self.window + wy) * self.in_w + ox * self.window + wx;
                                if xrow[idx] > xrow[best] {
                                    best = idx;
                                }
                            }
                        }
                        let oidx = c * oh * ow + oy * ow + ox;
                        y.row_mut(bs)[oidx] = xrow[best];
                        argmax[bs * self.out_features() + oidx] = best;
                    }
                }
            }
        }
        self.argmax = Some(argmax);
        self.last_batch = batch;
        y
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let argmax = self.argmax.as_ref().expect("MaxPool2d::backward before forward");
        let batch = self.last_batch;
        let mut dx = Tensor::zeros(&[batch, self.channels * self.in_h * self.in_w]);
        for bs in 0..batch {
            let grow = grad.row(bs);
            let xrow = dx.row_mut(bs);
            for (j, &g) in grow.iter().enumerate() {
                xrow[argmax[bs * grad.cols() + j]] += g;
            }
        }
        dx
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {}
    fn visit_params_ref(&self, _f: &mut dyn FnMut(&Tensor)) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer_gradients_with;

    #[test]
    fn conv2d_shapes() {
        let mut rng = NebulaRng::seed(1);
        let c = Conv2d::new(3, 8, 3, 1, 1, 8, 8, &mut rng);
        assert_eq!((c.out_h(), c.out_w()), (8, 8)); // same padding
        assert_eq!(c.out_features(), 8 * 64);
        let s = Conv2d::new(3, 8, 3, 2, 0, 9, 9, &mut rng);
        assert_eq!((s.out_h(), s.out_w()), (4, 4));
    }

    #[test]
    fn conv2d_matches_manual_cross_correlation() {
        let mut rng = NebulaRng::seed(2);
        let mut c = Conv2d::new(1, 1, 2, 1, 0, 3, 3, &mut rng);
        c.w.data_mut().copy_from_slice(&[1.0, 0.0, 0.0, -1.0]); // diag difference
        c.b.data_mut()[0] = 0.0;
        #[rustfmt::skip]
        let x = Tensor::matrix(&[&[
            1.0, 2.0, 3.0,
            4.0, 5.0, 6.0,
            7.0, 8.0, 9.0,
        ]]);
        let y = c.forward(&x, Mode::Eval);
        // y[oy][ox] = x[oy][ox] − x[oy+1][ox+1]
        assert_eq!(y.data(), &[1.0 - 5.0, 2.0 - 6.0, 4.0 - 8.0, 5.0 - 9.0]);
    }

    #[test]
    fn conv2d_gradcheck() {
        let mut rng = NebulaRng::seed(3);
        let c = Conv2d::new(2, 3, 3, 1, 1, 4, 4, &mut rng);
        check_layer_gradients_with(Box::new(c), 2 * 16, 2, 11, 1e-3, 5e-2);
    }

    #[test]
    fn conv2d_gradcheck_strided() {
        let mut rng = NebulaRng::seed(4);
        let c = Conv2d::new(1, 2, 3, 2, 0, 5, 5, &mut rng);
        check_layer_gradients_with(Box::new(c), 25, 2, 12, 1e-3, 5e-2);
    }

    #[test]
    fn maxpool2d_selects_and_routes() {
        let mut p = MaxPool2d::new(1, 4, 4, 2);
        #[rustfmt::skip]
        let x = Tensor::matrix(&[&[
            1.0, 2.0,  3.0, 4.0,
            5.0, 6.0,  7.0, 8.0,
            9.0, 1.0,  1.0, 1.0,
            1.0, 1.0,  1.0, 2.0,
        ]]);
        let y = p.forward(&x, Mode::Eval);
        assert_eq!(y.data(), &[6.0, 8.0, 9.0, 2.0]);
        let dx = p.backward(&Tensor::matrix(&[&[1.0, 2.0, 3.0, 4.0]]));
        // Gradient lands exactly on the argmax cells.
        assert_eq!(dx.row(0)[5], 1.0); // 6.0 at (1,1)
        assert_eq!(dx.row(0)[7], 2.0); // 8.0 at (1,3)
        assert_eq!(dx.row(0)[8], 3.0); // 9.0 at (2,0)
        assert_eq!(dx.row(0)[15], 4.0); // 2.0 at (3,3)
        assert_eq!(dx.data().iter().filter(|&&v| v != 0.0).count(), 4);
    }

    #[test]
    fn tiny_cnn_trains_on_2d_patterns() {
        use crate::loss::cross_entropy;
        use crate::optim::{Optimizer, Sgd};
        use crate::{Activation, Linear, Sequential};
        // Class 0: bright top-left quadrant; class 1: bright bottom-right.
        let mut rng = NebulaRng::seed(5);
        let make = |n: usize, rng: &mut NebulaRng| -> (Tensor, Vec<usize>) {
            let mut xs = Vec::with_capacity(n * 36);
            let mut ys = Vec::with_capacity(n);
            for _ in 0..n {
                let class = rng.below(2);
                for y in 0..6 {
                    for x in 0..6 {
                        let hot = if class == 0 { y < 3 && x < 3 } else { y >= 3 && x >= 3 };
                        xs.push(if hot { 1.0 } else { 0.0 } + rng.normal_f32(0.0, 0.3));
                    }
                }
                ys.push(class);
            }
            (Tensor::from_vec(xs, &[n, 36]), ys)
        };
        let (tx, ty) = make(200, &mut rng);
        let (vx, vy) = make(100, &mut rng);

        let conv = Conv2d::new(1, 4, 3, 1, 1, 6, 6, &mut rng);
        let pool = MaxPool2d::new(4, 6, 6, 3);
        let mut model = Sequential::new()
            .with(conv)
            .with(Activation::relu())
            .with(pool)
            .with(Linear::new(16, 2, &mut rng));
        let mut opt = Sgd::with_momentum(0.05, 0.9);
        for _ in 0..8 {
            let mut order: Vec<usize> = (0..ty.len()).collect();
            rng.shuffle(&mut order);
            for chunk in order.chunks(16) {
                let x = tx.gather_rows(chunk);
                let y: Vec<usize> = chunk.iter().map(|&i| ty[i]).collect();
                model.zero_grad();
                let logits = model.forward(&x, Mode::Train);
                let (_, grad) = cross_entropy(&logits, &y);
                model.backward(&grad);
                opt.step(&mut model);
            }
        }
        let preds = model.forward(&vx, Mode::Eval).argmax_rows();
        let acc = preds.iter().zip(&vy).filter(|(p, y)| p == y).count() as f32 / vy.len() as f32;
        assert!(acc > 0.95, "2D CNN accuracy only {acc}");
    }
}
