//! Quantized fully-connected layer for low-tier device inference.
//!
//! [`QuantizedLinear`] is the end-cloud inference counterpart of
//! [`Linear`](crate::linear::Linear): weights are stored as per-tensor
//! symmetric int8 in `nebula-wire`'s `QuantInt8` format (one f32 scale,
//! `zero_point = 0`), so a model shipped over the wire in quantized form
//! can be served without re-materialising f32 weights — 4× smaller
//! resident weights, and the `i8×i8→i32` kernel
//! ([`nebula_tensor::gemm::int8`]) runs on the integer units.
//!
//! The forward pass quantizes the activation batch once per call (per
//! tensor, same scheme), runs the exact integer GEMM, and dequantizes
//! with `sa·sw` while adding the (f32) bias. Inference only — there is no
//! backward pass; training always runs in f32 and quantization happens at
//! the serving boundary, matching the paper's end-cloud split where
//! low-tier devices only ever execute the forwarded submodel.
//!
//! Accuracy contract: the integer accumulation is exact, so the only
//! error versus the f32 layer is quantization itself — per output element
//! at most `k · sa · sw · 127.25` (see the int8 module docs), pinned by
//! the tests below and by `nebula-tensor`'s equivalence suite.

use crate::linear::Linear;
use nebula_tensor::gemm::int8;
use nebula_tensor::Tensor;

/// `y = dequant(quant(x) · Wqᵀ) + b` with `Wq: out×in` int8, `b: out` f32.
#[derive(Clone, Debug)]
pub struct QuantizedLinear {
    wq: Vec<i8>,
    sw: f32,
    b: Tensor,
    in_features: usize,
    out_features: usize,
}

impl QuantizedLinear {
    /// Quantizes an f32 layer's weights into an inference-only layer.
    pub fn from_linear(layer: &Linear) -> Self {
        let (wq, sw) = int8::quantize(layer.weight().data());
        Self {
            wq,
            sw,
            b: layer.bias().clone(),
            in_features: layer.in_features(),
            out_features: layer.out_features(),
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Weight scale (`max_abs / 127`), as it would appear on the wire.
    pub fn weight_scale(&self) -> f32 {
        self.sw
    }

    /// Quantized weights, row-major `out×in` (wire payload order).
    pub fn weight_q(&self) -> &[i8] {
        &self.wq
    }

    /// Resident bytes of the weight matrix (the 4× footprint win over
    /// f32; bias stays f32 and is negligible).
    pub fn weight_bytes(&self) -> usize {
        self.wq.len() + std::mem::size_of::<f32>()
    }

    /// Inference forward pass over a `batch×in` activation tensor.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.cols(), self.in_features, "QuantizedLinear input width mismatch");
        let m = x.rows();
        let (xq, sx) = int8::quantize(x.data());
        let mut y = Tensor::zeros(&[m, self.out_features]);
        int8::matmul_nt_dequant(
            y.data_mut(),
            m,
            self.out_features,
            self.in_features,
            &xq,
            sx,
            &self.wq,
            self.sw,
        );
        for i in 0..m {
            let row = &mut y.data_mut()[i * self.out_features..(i + 1) * self.out_features];
            for (o, &bv) in row.iter_mut().zip(self.b.data()) {
                *o += bv;
            }
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Layer, Mode};
    use nebula_tensor::NebulaRng;

    fn random_tensor(rng: &mut NebulaRng, r: usize, c: usize) -> Tensor {
        Tensor::from_vec((0..r * c).map(|_| rng.normal_f32(0.0, 1.0)).collect(), &[r, c])
    }

    #[test]
    fn tracks_f32_linear_within_quantization_error() {
        let mut rng = NebulaRng::seed(77);
        let (batch, fin, fout) = (8, 61, 17);
        let mut layer = Linear::new(fin, fout, &mut rng);
        for bv in layer.bias_mut().data_mut() {
            *bv = rng.normal_f32(0.0, 0.5);
        }
        let q = QuantizedLinear::from_linear(&layer);
        let x = random_tensor(&mut rng, batch, fin);

        let want = layer.forward(&x, Mode::Eval);
        let got = q.forward(&x);
        assert_eq!(got.shape(), want.shape());

        let (_, sx) = int8::quantize(x.data());
        let tol = fin as f32 * sx * q.weight_scale() * 127.25 + 1e-5;
        for (g, w) in got.data().iter().zip(want.data()) {
            assert!((g - w).abs() <= tol, "{g} vs {w} (tol {tol})");
        }

        // Exact integer path: repeated forwards are bit-identical.
        assert_eq!(got.data(), q.forward(&x).data());
        // Footprint: 1 byte per weight plus the scale.
        assert_eq!(q.weight_bytes(), fin * fout + 4);
    }
}
