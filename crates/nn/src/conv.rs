//! 1-D convolution and pooling.
//!
//! The paper's speech model (ResNet34 over audio) and HAR models consume
//! sequence data; these layers provide the convolutional substrate. A
//! sequence batch is carried in the workspace's rank-2 layout as
//! `batch × (channels · length)`, channel-major per sample (channel 0's
//! samples first) — [`Conv1d::new`] records `(in_channels, length)` so
//! the layer can address the layout without a rank-3 tensor type.
//!
//! The convolution lowers to a GEMM through im2col (forward) / col2im
//! (input gradient), the standard CPU implementation strategy.

use crate::layer::{Layer, Mode};
use crate::workspace::Workspace;
use nebula_tensor::{Init, NebulaRng, Tensor};

/// 1-D convolution with zero padding.
pub struct Conv1d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
    in_len: usize,
    /// Weights `out_channels × (in_channels · kernel)`.
    w: Tensor,
    b: Tensor,
    dw: Tensor,
    db: Tensor,
    /// im2col of the last input: `(batch · out_len) × (in_channels · kernel)`.
    cols: Option<Tensor>,
    last_batch: usize,
    ws: Workspace,
}

impl Conv1d {
    /// Builds a convolution over length-`in_len` sequences of
    /// `in_channels` channels.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        in_len: usize,
        rng: &mut NebulaRng,
    ) -> Self {
        assert!(kernel >= 1 && stride >= 1, "kernel/stride must be ≥ 1");
        assert!(in_len + 2 * pad >= kernel, "kernel larger than padded input");
        Self {
            in_channels,
            out_channels,
            kernel,
            stride,
            pad,
            in_len,
            w: Init::KaimingNormal.weight(out_channels, in_channels * kernel, rng),
            b: Tensor::zeros(&[out_channels]),
            dw: Tensor::zeros(&[out_channels, in_channels * kernel]),
            db: Tensor::zeros(&[out_channels]),
            cols: None,
            last_batch: 0,
            ws: Workspace::new(),
        }
    }

    /// Output sequence length.
    pub fn out_len(&self) -> usize {
        (self.in_len + 2 * self.pad - self.kernel) / self.stride + 1
    }

    /// Output feature width in the flattened layout
    /// (`out_channels · out_len`).
    pub fn out_features(&self) -> usize {
        self.out_channels * self.out_len()
    }

    /// Input feature width (`in_channels · in_len`).
    pub fn in_features(&self) -> usize {
        self.in_channels * self.in_len
    }

    /// im2col: one row per (sample, output position). `cols` must come in
    /// zeroed — the zero background doubles as the padding values.
    fn im2col_into(&self, x: &Tensor, cols: &mut Tensor) {
        let batch = x.rows();
        let out_len = self.out_len();
        for bsample in 0..batch {
            let xrow = x.row(bsample);
            for o in 0..out_len {
                let crow = cols.row_mut(bsample * out_len + o);
                let start = (o * self.stride) as isize - self.pad as isize;
                for c in 0..self.in_channels {
                    for k in 0..self.kernel {
                        let t = start + k as isize;
                        if t >= 0 && (t as usize) < self.in_len {
                            crow[c * self.kernel + k] = xrow[c * self.in_len + t as usize];
                        }
                    }
                }
            }
        }
    }
}

impl Layer for Conv1d {
    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        assert_eq!(x.cols(), self.in_features(), "Conv1d input width mismatch");
        let batch = x.rows();
        let out_len = self.out_len();
        let krows = self.in_channels * self.kernel;
        let col_shape = [batch * out_len, krows];
        // Reuse the cached im2col matrix when the batch shape repeats.
        let mut cols = match self.cols.take() {
            Some(mut c) if c.shape() == col_shape => {
                c.zero_();
                c
            }
            _ => Tensor::zeros(&col_shape),
        };
        self.im2col_into(x, &mut cols);
        // (batch·out_len) × krows · krowsᵀ → (batch·out_len) × out_channels
        let mut prod = self.ws.zeroed(&[batch * out_len, self.out_channels]);
        cols.matmul_nt_into(&self.w, &mut prod);
        // Re-pack into batch × (out_channels · out_len), channel-major.
        let mut y = Tensor::zeros(&[batch, self.out_features()]);
        for bsample in 0..batch {
            for o in 0..out_len {
                let prow = prod.row(bsample * out_len + o);
                let yrow = y.row_mut(bsample);
                for (oc, &v) in prow.iter().enumerate() {
                    yrow[oc * out_len + o] = v + self.b.data()[oc];
                }
            }
        }
        self.ws.recycle(prod);
        self.cols = Some(cols);
        self.last_batch = batch;
        y
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let cols = self.cols.take().expect("Conv1d::backward before forward");
        let batch = self.last_batch;
        let out_len = self.out_len();
        assert_eq!(grad.cols(), self.out_features(), "Conv1d grad width mismatch");

        // Unpack grad into (batch·out_len) × out_channels.
        let mut gprod = self.ws.zeroed(&[batch * out_len, self.out_channels]);
        for bsample in 0..batch {
            let grow = grad.row(bsample);
            for o in 0..out_len {
                let gp = gprod.row_mut(bsample * out_len + o);
                for oc in 0..self.out_channels {
                    gp[oc] = grow[oc * out_len + o];
                }
            }
        }

        // dW = gprodᵀ · cols ; db = Σ gprod rows.
        let mut dw = self.ws.zeroed(&[self.out_channels, self.in_channels * self.kernel]);
        gprod.matmul_tn_into(&cols, &mut dw);
        self.dw.add_assign(&dw);
        self.ws.recycle(dw);
        self.db.add_assign(&gprod.sum_rows());
        self.cols = Some(cols);

        // dcols = gprod · W, then col2im scatter back to dx.
        let mut dcols = self.ws.zeroed(&[batch * out_len, self.in_channels * self.kernel]);
        gprod.matmul_into(&self.w, &mut dcols);
        self.ws.recycle(gprod);
        let mut dx = Tensor::zeros(&[batch, self.in_features()]);
        for bsample in 0..batch {
            for o in 0..out_len {
                let drow = dcols.row(bsample * out_len + o);
                let xrow = dx.row_mut(bsample);
                let start = (o * self.stride) as isize - self.pad as isize;
                for c in 0..self.in_channels {
                    for k in 0..self.kernel {
                        let t = start + k as isize;
                        if t >= 0 && (t as usize) < self.in_len {
                            xrow[c * self.in_len + t as usize] += drow[c * self.kernel + k];
                        }
                    }
                }
            }
        }
        self.ws.recycle(dcols);
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        f(&mut self.w, &mut self.dw);
        f(&mut self.b, &mut self.db);
    }

    fn visit_params_ref(&self, f: &mut dyn FnMut(&Tensor)) {
        f(&self.w);
        f(&self.b);
    }
}

/// Non-overlapping-window max pooling over the sequence axis.
pub struct MaxPool1d {
    channels: usize,
    in_len: usize,
    window: usize,
    /// Flat argmax index (into the input row) per output element.
    argmax: Option<Vec<usize>>,
    last_batch: usize,
}

impl MaxPool1d {
    pub fn new(channels: usize, in_len: usize, window: usize) -> Self {
        assert!(window >= 1 && window <= in_len, "bad pooling window");
        Self { channels, in_len, window, argmax: None, last_batch: 0 }
    }

    pub fn out_len(&self) -> usize {
        self.in_len / self.window
    }

    pub fn out_features(&self) -> usize {
        self.channels * self.out_len()
    }
}

impl Layer for MaxPool1d {
    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        assert_eq!(x.cols(), self.channels * self.in_len, "MaxPool1d width mismatch");
        let batch = x.rows();
        let out_len = self.out_len();
        let mut y = Tensor::zeros(&[batch, self.out_features()]);
        let mut argmax = vec![0usize; batch * self.out_features()];
        for bsample in 0..batch {
            let xrow = x.row(bsample);
            for c in 0..self.channels {
                for o in 0..out_len {
                    let base = c * self.in_len + o * self.window;
                    let mut best = base;
                    for t in base + 1..base + self.window {
                        if xrow[t] > xrow[best] {
                            best = t;
                        }
                    }
                    y.row_mut(bsample)[c * out_len + o] = xrow[best];
                    argmax[bsample * self.out_features() + c * out_len + o] = best;
                }
            }
        }
        self.argmax = Some(argmax);
        self.last_batch = batch;
        y
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let argmax = self.argmax.as_ref().expect("MaxPool1d::backward before forward");
        let batch = self.last_batch;
        let mut dx = Tensor::zeros(&[batch, self.channels * self.in_len]);
        for bsample in 0..batch {
            let grow = grad.row(bsample);
            let xrow = dx.row_mut(bsample);
            for (j, &g) in grow.iter().enumerate() {
                xrow[argmax[bsample * grad.cols() + j]] += g;
            }
        }
        dx
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {}
    fn visit_params_ref(&self, _f: &mut dyn FnMut(&Tensor)) {}
}

/// Mean over the sequence axis (global average pooling): `channels·len →
/// channels`.
pub struct GlobalAvgPool1d {
    channels: usize,
    in_len: usize,
    last_batch: usize,
}

impl GlobalAvgPool1d {
    pub fn new(channels: usize, in_len: usize) -> Self {
        assert!(in_len >= 1);
        Self { channels, in_len, last_batch: 0 }
    }
}

impl Layer for GlobalAvgPool1d {
    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        assert_eq!(x.cols(), self.channels * self.in_len, "GlobalAvgPool1d width mismatch");
        let batch = x.rows();
        self.last_batch = batch;
        let mut y = Tensor::zeros(&[batch, self.channels]);
        for bsample in 0..batch {
            let xrow = x.row(bsample);
            for c in 0..self.channels {
                let s: f32 = xrow[c * self.in_len..(c + 1) * self.in_len].iter().sum();
                y.row_mut(bsample)[c] = s / self.in_len as f32;
            }
        }
        y
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let batch = self.last_batch;
        let mut dx = Tensor::zeros(&[batch, self.channels * self.in_len]);
        let scale = 1.0 / self.in_len as f32;
        for bsample in 0..batch {
            let grow = grad.row(bsample);
            let xrow = dx.row_mut(bsample);
            for c in 0..self.channels {
                for t in 0..self.in_len {
                    xrow[c * self.in_len + t] = grow[c] * scale;
                }
            }
        }
        dx
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {}
    fn visit_params_ref(&self, _f: &mut dyn FnMut(&Tensor)) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer_gradients_with;
    use crate::{Activation, Sequential};

    #[test]
    fn conv_shapes_follow_the_formula() {
        let mut rng = NebulaRng::seed(1);
        let c = Conv1d::new(2, 4, 3, 1, 1, 8, &mut rng);
        assert_eq!(c.out_len(), 8); // same-padding with k=3, s=1, p=1
        assert_eq!(c.out_features(), 32);
        let strided = Conv1d::new(2, 4, 3, 2, 0, 8, &mut rng);
        assert_eq!(strided.out_len(), 3);
    }

    #[test]
    fn conv_matches_manual_computation() {
        // 1 channel, length 4, kernel 2, stride 1, no pad; known weights.
        let mut rng = NebulaRng::seed(2);
        let mut c = Conv1d::new(1, 1, 2, 1, 0, 4, &mut rng);
        c.w.data_mut().copy_from_slice(&[1.0, -1.0]); // difference filter
        c.b.data_mut()[0] = 0.5;
        let x = Tensor::matrix(&[&[1.0, 3.0, 2.0, 5.0]]);
        let y = c.forward(&x, Mode::Eval);
        // y[o] = x[o]·1 + x[o+1]·(−1) + 0.5
        assert_eq!(y.data(), &[1.0 - 3.0 + 0.5, 3.0 - 2.0 + 0.5, 2.0 - 5.0 + 0.5]);
    }

    #[test]
    fn conv_gradcheck() {
        let mut rng = NebulaRng::seed(3);
        let c = Conv1d::new(2, 3, 3, 1, 1, 6, &mut rng);
        check_layer_gradients_with(Box::new(c), 12, 2, 11, 1e-3, 5e-2);
    }

    #[test]
    fn conv_gradcheck_strided_unpadded() {
        let mut rng = NebulaRng::seed(4);
        let c = Conv1d::new(1, 2, 3, 2, 0, 9, &mut rng);
        check_layer_gradients_with(Box::new(c), 9, 2, 12, 1e-3, 5e-2);
    }

    #[test]
    fn maxpool_selects_window_maxima() {
        let mut p = MaxPool1d::new(1, 6, 2);
        let x = Tensor::matrix(&[&[1.0, 5.0, 2.0, 2.0, -3.0, 0.0]]);
        let y = p.forward(&x, Mode::Eval);
        assert_eq!(y.data(), &[5.0, 2.0, 0.0]);
        // Gradient routes to the argmax positions only.
        let dx = p.backward(&Tensor::matrix(&[&[1.0, 1.0, 1.0]]));
        assert_eq!(dx.data(), &[0.0, 1.0, 1.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn global_avg_pool_and_backward() {
        let mut g = GlobalAvgPool1d::new(2, 3);
        let x = Tensor::matrix(&[&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]]);
        let y = g.forward(&x, Mode::Eval);
        assert_eq!(y.data(), &[2.0, 5.0]);
        let dx = g.backward(&Tensor::matrix(&[&[3.0, 6.0]]));
        assert_eq!(dx.data(), &[1.0, 1.0, 1.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn small_convnet_trains_on_synthetic_sequences() {
        use crate::loss::cross_entropy;
        use crate::optim::{Optimizer, Sgd};
        // Two classes distinguished by where a bump sits in the sequence.
        let mut rng = NebulaRng::seed(5);
        let make = |n: usize, rng: &mut NebulaRng| -> (Tensor, Vec<usize>) {
            let mut xs = Vec::with_capacity(n * 16);
            let mut ys = Vec::with_capacity(n);
            for _ in 0..n {
                let class = rng.below(2);
                let centre = if class == 0 { 4.0f32 } else { 11.0 };
                for t in 0..16 {
                    let d = t as f32 - centre;
                    xs.push((-d * d / 4.0).exp() + rng.normal_f32(0.0, 0.25));
                }
                ys.push(class);
            }
            (Tensor::from_vec(xs, &[n, 16]), ys)
        };
        let (train_x, train_y) = make(300, &mut rng);
        let (test_x, test_y) = make(150, &mut rng);

        let conv = Conv1d::new(1, 4, 5, 1, 2, 16, &mut rng);
        let pool = MaxPool1d::new(4, 16, 4);
        let mut model = Sequential::new()
            .with(conv)
            .with(Activation::relu())
            .with(pool)
            .with(crate::Linear::new(16, 2, &mut rng));
        let mut opt = Sgd::with_momentum(0.05, 0.9);
        for _ in 0..10 {
            let mut order: Vec<usize> = (0..train_y.len()).collect();
            rng.shuffle(&mut order);
            for chunk in order.chunks(16) {
                let x = train_x.gather_rows(chunk);
                let y: Vec<usize> = chunk.iter().map(|&i| train_y[i]).collect();
                model.zero_grad();
                let logits = model.forward(&x, Mode::Train);
                let (_, grad) = cross_entropy(&logits, &y);
                model.backward(&grad);
                model.clip_grad_norm(5.0);
                opt.step(&mut model);
            }
        }
        let preds = model.forward(&test_x, Mode::Eval).argmax_rows();
        let correct = preds.iter().zip(&test_y).filter(|(p, y)| p == y).count();
        let acc = correct as f32 / test_y.len() as f32;
        assert!(acc > 0.9, "convnet accuracy only {acc}");
    }
}
