//! Learning-rate schedules.
//!
//! The paper trains with a fixed 1e-3 learning rate, but any production
//! cloud pre-training stage wants a schedule; these are the three
//! standard shapes, exposed as pure `step → lr` functions so they compose
//! with any [`crate::Optimizer`] via [`crate::Optimizer::set_learning_rate`].

/// A learning-rate schedule: maps a 0-based step index to a rate.
#[derive(Clone, Debug, PartialEq)]
pub enum LrSchedule {
    /// Constant rate.
    Constant { lr: f32 },
    /// Multiply by `gamma` every `every` steps.
    Step { lr: f32, gamma: f32, every: usize },
    /// Cosine decay from `lr` to `min_lr` over `total` steps (then stays
    /// at `min_lr`).
    Cosine { lr: f32, min_lr: f32, total: usize },
    /// Linear warmup over `warmup` steps into an inner schedule.
    Warmup { warmup: usize, inner: Box<LrSchedule> },
}

impl LrSchedule {
    /// The learning rate at `step` (0-based).
    pub fn at(&self, step: usize) -> f32 {
        match self {
            LrSchedule::Constant { lr } => *lr,
            LrSchedule::Step { lr, gamma, every } => {
                assert!(*every > 0, "step schedule period must be positive");
                lr * gamma.powi((step / every) as i32)
            }
            LrSchedule::Cosine { lr, min_lr, total } => {
                assert!(*total > 0, "cosine schedule length must be positive");
                if step >= *total {
                    return *min_lr;
                }
                let progress = step as f32 / *total as f32;
                min_lr + 0.5 * (lr - min_lr) * (1.0 + (std::f32::consts::PI * progress).cos())
            }
            LrSchedule::Warmup { warmup, inner } => {
                if step < *warmup {
                    // Ramp linearly into the inner schedule's first value.
                    inner.at(0) * (step + 1) as f32 / (*warmup + 1) as f32
                } else {
                    inner.at(step - warmup)
                }
            }
        }
    }

    /// Convenience: cosine with warmup, the usual pre-training shape.
    pub fn warmup_cosine(lr: f32, min_lr: f32, warmup: usize, total: usize) -> Self {
        LrSchedule::Warmup { warmup, inner: Box::new(LrSchedule::Cosine { lr, min_lr, total }) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nebula_tensor::assert_close;

    #[test]
    fn constant_is_constant() {
        let s = LrSchedule::Constant { lr: 0.1 };
        assert_eq!(s.at(0), 0.1);
        assert_eq!(s.at(10_000), 0.1);
    }

    #[test]
    fn step_decays_in_plateaus() {
        let s = LrSchedule::Step { lr: 1.0, gamma: 0.1, every: 10 };
        assert_close(s.at(0), 1.0, 1e-6);
        assert_close(s.at(9), 1.0, 1e-6);
        assert_close(s.at(10), 0.1, 1e-6);
        assert_close(s.at(25), 0.01, 1e-6);
    }

    #[test]
    fn cosine_hits_both_endpoints_and_is_monotone() {
        let s = LrSchedule::Cosine { lr: 0.2, min_lr: 0.02, total: 100 };
        assert_close(s.at(0), 0.2, 1e-6);
        assert_close(s.at(100), 0.02, 1e-6);
        assert_close(s.at(1000), 0.02, 1e-6);
        let mut prev = s.at(0);
        for step in 1..100 {
            let cur = s.at(step);
            assert!(cur <= prev + 1e-6, "cosine not monotone at {step}");
            prev = cur;
        }
    }

    #[test]
    fn warmup_ramps_then_follows_inner() {
        let s = LrSchedule::warmup_cosine(0.1, 0.01, 10, 100);
        assert!(s.at(0) < s.at(5));
        assert!(s.at(5) < s.at(9));
        // After warmup: equals the inner cosine shifted.
        let inner = LrSchedule::Cosine { lr: 0.1, min_lr: 0.01, total: 100 };
        assert_close(s.at(10), inner.at(0), 1e-6);
        assert_close(s.at(60), inner.at(50), 1e-6);
    }

    #[test]
    fn drives_an_optimizer() {
        use crate::optim::{Optimizer, Sgd};
        let s = LrSchedule::Step { lr: 0.5, gamma: 0.5, every: 1 };
        let mut opt = Sgd::new(s.at(0));
        for step in 1..4 {
            opt.set_learning_rate(s.at(step));
        }
        assert_close(opt.learning_rate(), 0.0625, 1e-6);
    }
}
