//! The [`Layer`] trait and parameter-vector utilities.
//!
//! Federated algorithms (FedAvg, HeteroFL, Nebula's module-wise aggregation)
//! all operate on *flat parameter vectors*; the visitor-based API here lets
//! any layer or composite expose its parameters without committing to a
//! specific container layout.

use nebula_tensor::Tensor;

/// Forward-pass mode. `Train` enables dropout masks, batch statistics and
/// gate noise; `Eval` uses running statistics and deterministic routing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    Train,
    Eval,
}

/// A differentiable layer with explicit forward/backward passes.
///
/// Contract:
/// * `forward` must be called before `backward`; the layer caches whatever
///   the backward pass needs.
/// * `backward` **accumulates** into parameter gradients (callers zero them
///   via [`Layer::zero_grad`] between steps) and returns ∂loss/∂input.
/// * `visit_params` yields `(parameter, gradient)` pairs in a fixed,
///   deterministic order — optimiser state is keyed by this order.
pub trait Layer {
    /// Computes the layer output, caching activations for backward.
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor;

    /// Back-propagates `grad` (∂loss/∂output), accumulating parameter
    /// gradients and returning ∂loss/∂input.
    fn backward(&mut self, grad: &Tensor) -> Tensor;

    /// Visits `(param, grad)` pairs in a fixed order.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor));

    /// Visits parameters immutably (fixed order matching `visit_params`).
    fn visit_params_ref(&self, f: &mut dyn FnMut(&Tensor));

    /// Total number of trainable scalars.
    fn param_count(&self) -> usize {
        let mut n = 0;
        self.visit_params_ref(&mut |p| n += p.len());
        n
    }

    /// Zeroes all accumulated gradients.
    fn zero_grad(&mut self) {
        self.visit_params(&mut |_, g| g.zero_());
    }

    /// Copies all parameters into a single flat vector (visit order).
    fn param_vector(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.param_count());
        self.visit_params_ref(&mut |p| out.extend_from_slice(p.data()));
        out
    }

    /// Loads parameters from a flat vector produced by [`Layer::param_vector`]
    /// on an identically-shaped layer. Panics on length mismatch.
    fn load_param_vector(&mut self, flat: &[f32]) {
        let mut offset = 0;
        self.visit_params(&mut |p, _| {
            let n = p.len();
            assert!(
                offset + n <= flat.len(),
                "flat parameter vector too short: need more than {}",
                flat.len()
            );
            p.data_mut().copy_from_slice(&flat[offset..offset + n]);
            offset += n;
        });
        assert_eq!(offset, flat.len(), "flat parameter vector too long: used {offset} of {}", flat.len());
    }

    /// Copies all gradients into a single flat vector (visit order).
    fn grad_vector(&mut self) -> Vec<f32> {
        let mut out = Vec::new();
        self.visit_params(&mut |_, g| out.extend_from_slice(g.data()));
        out
    }

    /// Global L2 gradient-norm clipping; returns the pre-clip norm.
    fn clip_grad_norm(&mut self, max_norm: f32) -> f32 {
        let mut sq = 0.0f32;
        self.visit_params(&mut |_, g| sq += g.norm_sq());
        let norm = sq.sqrt();
        if norm > max_norm && norm > 0.0 {
            let scale = max_norm / norm;
            self.visit_params(&mut |_, g| g.scale_assign(scale));
        }
        norm
    }
}

/// Blanket impl so `Box<dyn Layer>` composes inside containers.
impl Layer for Box<dyn Layer> {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        (**self).forward(x, mode)
    }
    fn backward(&mut self, grad: &Tensor) -> Tensor {
        (**self).backward(grad)
    }
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        (**self).visit_params(f)
    }
    fn visit_params_ref(&self, f: &mut dyn FnMut(&Tensor)) {
        (**self).visit_params_ref(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::Linear;
    use nebula_tensor::NebulaRng;

    #[test]
    fn param_vector_roundtrip() {
        let mut rng = NebulaRng::seed(1);
        let a = Linear::new(4, 3, &mut rng);
        let mut b = Linear::new(4, 3, &mut rng);
        let va = a.param_vector();
        assert_eq!(va.len(), 4 * 3 + 3);
        b.load_param_vector(&va);
        assert_eq!(b.param_vector(), va);
    }

    #[test]
    #[should_panic(expected = "too long")]
    fn load_rejects_oversized_vector() {
        let mut rng = NebulaRng::seed(2);
        let mut l = Linear::new(2, 2, &mut rng);
        let v = vec![0.0; 100];
        l.load_param_vector(&v);
    }

    #[test]
    fn zero_grad_clears_accumulation() {
        let mut rng = NebulaRng::seed(3);
        let mut l = Linear::new(3, 2, &mut rng);
        let x = Tensor::ones(&[4, 3]);
        let y = l.forward(&x, Mode::Train);
        l.backward(&Tensor::ones(y.shape()));
        assert!(l.grad_vector().iter().any(|&g| g != 0.0));
        l.zero_grad();
        assert!(l.grad_vector().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn clip_grad_norm_scales_down() {
        let mut rng = NebulaRng::seed(4);
        let mut l = Linear::new(3, 2, &mut rng);
        let x = Tensor::full(&[2, 3], 10.0);
        let y = l.forward(&x, Mode::Train);
        l.backward(&Tensor::full(y.shape(), 10.0));
        let pre = l.clip_grad_norm(1.0);
        assert!(pre > 1.0);
        let mut sq = 0.0;
        l.visit_params(&mut |_, g| sq += g.norm_sq());
        assert!((sq.sqrt() - 1.0).abs() < 1e-4);
    }
}
