//! Ordered container of boxed layers.

use crate::layer::{Layer, Mode};
use nebula_tensor::Tensor;

/// A stack of layers applied in order; backward runs in reverse.
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Default for Sequential {
    fn default() -> Self {
        Self::new()
    }
}

impl Sequential {
    /// Empty container (acts as the identity function).
    pub fn new() -> Self {
        Self { layers: Vec::new() }
    }

    /// Builder-style push.
    pub fn with(mut self, layer: impl Layer + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: impl Layer + 'static) {
        self.layers.push(Box::new(layer));
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True when the container holds no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl Layer for Sequential {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        let mut cur = x.clone();
        for layer in &mut self.layers {
            cur = layer.forward(&cur, mode);
        }
        cur
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let mut cur = grad.clone();
        for layer in self.layers.iter_mut().rev() {
            cur = layer.backward(&cur);
        }
        cur
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }

    fn visit_params_ref(&self, f: &mut dyn FnMut(&Tensor)) {
        for layer in &self.layers {
            layer.visit_params_ref(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::gradcheck::check_layer_gradients;
    use crate::linear::Linear;
    use nebula_tensor::NebulaRng;

    #[test]
    fn empty_sequential_is_identity() {
        let mut s = Sequential::new();
        let x = Tensor::matrix(&[&[1.0, 2.0]]);
        assert_eq!(s.forward(&x, Mode::Eval).data(), x.data());
        assert_eq!(s.backward(&x).data(), x.data());
    }

    #[test]
    fn two_layer_mlp_gradcheck() {
        let mut rng = NebulaRng::seed(1);
        let mlp = Sequential::new()
            .with(Linear::new(4, 8, &mut rng))
            .with(Activation::tanh())
            .with(Linear::new(8, 3, &mut rng));
        check_layer_gradients(Box::new(mlp), 4, 2, 99);
    }

    #[test]
    fn param_count_sums_layers() {
        let mut rng = NebulaRng::seed(2);
        let s = Sequential::new()
            .with(Linear::new(4, 8, &mut rng))
            .with(Activation::relu())
            .with(Linear::new(8, 2, &mut rng));
        assert_eq!(s.param_count(), (4 * 8 + 8) + (8 * 2 + 2));
    }

    #[test]
    fn forward_composes_in_order() {
        let mut rng = NebulaRng::seed(3);
        let mut l1 = Linear::new(2, 2, &mut rng);
        let mut l2 = Linear::new(2, 2, &mut rng);
        let x = Tensor::matrix(&[&[1.0, -1.0]]);
        let manual = l2.forward(&l1.forward(&x, Mode::Eval), Mode::Eval);

        let mut rng2 = NebulaRng::seed(3);
        let mut s = Sequential::new().with(Linear::new(2, 2, &mut rng2)).with(Linear::new(2, 2, &mut rng2));
        let composed = s.forward(&x, Mode::Eval);
        nebula_tensor::assert_tensor_close(&composed, &manual, 1e-6);
    }
}
