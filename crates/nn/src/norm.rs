//! Batch normalisation over feature columns (BatchNorm1d).
//!
//! Training mode normalises with batch statistics and updates exponential
//! running averages; eval mode uses the running averages. The backward pass
//! implements the full batch-norm gradient (including the dependence of the
//! batch statistics on every sample).

use crate::layer::{Layer, Mode};
use nebula_tensor::Tensor;

/// Per-feature batch normalisation: `y = γ · (x − μ)/σ + β`.
#[derive(Clone, Debug)]
pub struct BatchNorm1d {
    gamma: Tensor,
    beta: Tensor,
    dgamma: Tensor,
    dbeta: Tensor,
    running_mean: Tensor,
    running_var: Tensor,
    momentum: f32,
    eps: f32,
    // Backward cache (training mode only).
    cache: Option<BnCache>,
}

#[derive(Clone, Debug)]
struct BnCache {
    x_hat: Tensor,
    inv_std: Tensor,
}

impl BatchNorm1d {
    pub fn new(features: usize) -> Self {
        Self {
            gamma: Tensor::ones(&[features]),
            beta: Tensor::zeros(&[features]),
            dgamma: Tensor::zeros(&[features]),
            dbeta: Tensor::zeros(&[features]),
            running_mean: Tensor::zeros(&[features]),
            running_var: Tensor::ones(&[features]),
            momentum: 0.1,
            eps: 1e-5,
            cache: None,
        }
    }

    pub fn features(&self) -> usize {
        self.gamma.len()
    }

    /// Running mean (eval-mode statistics).
    pub fn running_mean(&self) -> &Tensor {
        &self.running_mean
    }

    /// Running variance (eval-mode statistics).
    pub fn running_var(&self) -> &Tensor {
        &self.running_var
    }
}

impl Layer for BatchNorm1d {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        assert_eq!(x.cols(), self.features(), "BatchNorm1d width mismatch");
        let (mean, var) = match mode {
            Mode::Train => {
                let mean = x.mean_rows();
                let var = x.var_rows();
                // Update running stats: r ← (1−m)·r + m·batch.
                self.running_mean.scale_assign(1.0 - self.momentum);
                self.running_mean.axpy(self.momentum, &mean);
                self.running_var.scale_assign(1.0 - self.momentum);
                self.running_var.axpy(self.momentum, &var);
                (mean, var)
            }
            Mode::Eval => (self.running_mean.clone(), self.running_var.clone()),
        };

        let inv_std = var.map(|v| 1.0 / (v + self.eps).sqrt());
        let mut x_hat = x.clone();
        let c = x_hat.cols();
        for row in x_hat.data_mut().chunks_mut(c) {
            for ((v, &m), &s) in row.iter_mut().zip(mean.data()).zip(inv_std.data()) {
                *v = (*v - m) * s;
            }
        }
        let y = x_hat.mul_row_broadcast(&self.gamma).add_row_broadcast(&self.beta);
        if mode == Mode::Train {
            self.cache = Some(BnCache { x_hat, inv_std });
        } else {
            self.cache = None;
        }
        y
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let cache = self.cache.as_ref().expect("BatchNorm1d::backward requires a Train-mode forward");
        let BnCache { x_hat, inv_std } = cache;
        let n = grad.rows() as f32;
        let c = grad.cols();

        // dγ = Σ_b grad ⊙ x̂ ; dβ = Σ_b grad
        self.dgamma.add_assign(&grad.mul(x_hat).sum_rows());
        self.dbeta.add_assign(&grad.sum_rows());

        // dx = (γ/σ) / N * (N·grad − Σgrad − x̂·Σ(grad ⊙ x̂))
        let sum_g = grad.sum_rows();
        let sum_gx = grad.mul(x_hat).sum_rows();
        let mut dx = Tensor::zeros(grad.shape());
        for i in 0..grad.rows() {
            let grow = grad.row(i);
            let xrow = x_hat.row(i);
            let orow = dx.row_mut(i);
            for j in 0..c {
                let coeff = self.gamma.data()[j] * inv_std.data()[j] / n;
                orow[j] = coeff * (n * grow[j] - sum_g.data()[j] - xrow[j] * sum_gx.data()[j]);
            }
        }
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        f(&mut self.gamma, &mut self.dgamma);
        f(&mut self.beta, &mut self.dbeta);
    }

    fn visit_params_ref(&self, f: &mut dyn FnMut(&Tensor)) {
        f(&self.gamma);
        f(&self.beta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer_gradients;
    use nebula_tensor::{assert_close, NebulaRng, Tensor};

    #[test]
    fn train_mode_normalises_batch() {
        let mut bn = BatchNorm1d::new(2);
        let x = Tensor::matrix(&[&[1.0, 10.0], &[3.0, 30.0], &[5.0, 50.0]]);
        let y = bn.forward(&x, Mode::Train);
        // Each column should have ~zero mean and ~unit variance.
        let mean = y.mean_rows();
        let var = y.var_rows();
        for j in 0..2 {
            assert_close(mean.data()[j], 0.0, 1e-4);
            assert_close(var.data()[j], 1.0, 1e-3);
        }
    }

    #[test]
    fn eval_mode_uses_running_stats() {
        let mut bn = BatchNorm1d::new(1);
        let x = Tensor::matrix(&[&[2.0], &[4.0]]);
        // Several training passes move the running stats toward (3, 1).
        for _ in 0..200 {
            bn.forward(&x, Mode::Train);
        }
        assert_close(bn.running_mean().data()[0], 3.0, 0.05);
        let y = bn.forward(&Tensor::matrix(&[&[3.0]]), Mode::Eval);
        assert_close(y.data()[0], 0.0, 0.05);
    }

    #[test]
    fn gradients_pass_finite_difference_check() {
        let bn = BatchNorm1d::new(4);
        check_layer_gradients(Box::new(bn), 4, 6, 17);
    }

    #[test]
    fn gamma_beta_are_trainable() {
        let bn = BatchNorm1d::new(5);
        assert_eq!(bn.param_count(), 10);
    }

    #[test]
    fn eval_before_any_training_is_identityish() {
        // Fresh running stats are (0, 1), so eval ≈ identity.
        let mut bn = BatchNorm1d::new(2);
        let x = Tensor::matrix(&[&[0.5, -0.5]]);
        let y = bn.forward(&x, Mode::Eval);
        assert_close(y.data()[0], 0.5, 1e-3);
        assert_close(y.data()[1], -0.5, 1e-3);
    }

    #[test]
    fn seeded_usage_is_deterministic() {
        let mut rng = NebulaRng::seed(1);
        let x = Tensor::from_vec((0..12).map(|_| rng.normal_f32(0.0, 1.0)).collect(), &[4, 3]);
        let mut a = BatchNorm1d::new(3);
        let mut b = BatchNorm1d::new(3);
        assert_eq!(a.forward(&x, Mode::Train).data(), b.forward(&x, Mode::Train).data());
    }
}
