//! Property-based tests for the NN layer algebra and losses.

use nebula_nn::{cross_entropy, kl_to_target, Activation, Layer, Linear, Mode, Sequential};
use nebula_tensor::{NebulaRng, Tensor};
use proptest::prelude::*;

fn tensor(rows: usize, cols: usize, seed: u64) -> Tensor {
    let mut rng = NebulaRng::seed(seed);
    Tensor::from_vec((0..rows * cols).map(|_| rng.normal_f32(0.0, 1.0)).collect(), &[rows, cols])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn linear_layers_are_linear(
        din in 1usize..6, dout in 1usize..6, batch in 1usize..4,
        alpha in -2.0f32..2.0, seed in 0u64..200
    ) {
        // f(αx + y) = αf(x) + f(y) − (α+1−1)·b … with bias: check on the
        // bias-free difference instead: f(x+y) − f(y) = f(x) − f(0).
        let mut rng = NebulaRng::seed(seed);
        let mut l = Linear::new(din, dout, &mut rng);
        let x = tensor(batch, din, seed ^ 1);
        let y = tensor(batch, din, seed ^ 2);
        let fx = l.forward(&x, Mode::Eval);
        let fy = l.forward(&y, Mode::Eval);
        let fxy = l.forward(&x.scale(alpha).add(&y), Mode::Eval);
        let f0 = l.forward(&Tensor::zeros(&[batch, din]), Mode::Eval);
        // f(αx + y) = α·f(x) + f(y) − α·f(0)
        let expect = fx.scale(alpha).add(&fy).sub(&f0.scale(alpha));
        for (a, b) in fxy.data().iter().zip(expect.data()) {
            prop_assert!((a - b).abs() < 1e-3 * (1.0 + a.abs()), "{a} vs {b}");
        }
    }

    #[test]
    fn cross_entropy_is_nonnegative_and_grad_rows_sum_to_zero(
        batch in 1usize..6, classes in 2usize..8, seed in 0u64..300
    ) {
        let logits = tensor(batch, classes, seed);
        let mut rng = NebulaRng::seed(seed ^ 3);
        let labels: Vec<usize> = (0..batch).map(|_| rng.below(classes)).collect();
        let (loss, grad) = cross_entropy(&logits, &labels);
        prop_assert!(loss >= 0.0);
        for b in 0..batch {
            let s: f32 = grad.row(b).iter().sum();
            prop_assert!(s.abs() < 1e-4, "grad row sums to {}", s);
        }
    }

    #[test]
    fn kl_is_nonnegative_and_zero_only_at_match(
        batch in 1usize..4, classes in 2usize..6, seed in 0u64..300
    ) {
        let logits = tensor(batch, classes, seed);
        let target = tensor(batch, classes, seed ^ 7).softmax_rows();
        let (loss, _) = kl_to_target(&logits, &target);
        prop_assert!(loss >= -1e-5, "negative KL {}", loss);
        // At the matching target the loss vanishes.
        let (zero_loss, _) = kl_to_target(&logits, &logits.softmax_rows());
        prop_assert!(zero_loss.abs() < 1e-4);
    }

    #[test]
    fn relu_backward_never_amplifies(batch in 1usize..4, dim in 1usize..8, seed in 0u64..200) {
        let mut a = Activation::relu();
        let x = tensor(batch, dim, seed);
        a.forward(&x, Mode::Train);
        let g = tensor(batch, dim, seed ^ 5);
        let dx = a.backward(&g);
        for (gi, di) in g.data().iter().zip(dx.data()) {
            prop_assert!(di.abs() <= gi.abs() + 1e-6);
        }
    }

    #[test]
    fn sequential_backward_matches_composition(seed in 0u64..100) {
        // backward through [L1, L2] == L1.backward(L2.backward(g)).
        let mut rng = NebulaRng::seed(seed);
        let mut l1 = Linear::new(4, 5, &mut rng);
        let mut l2 = Linear::new(5, 3, &mut rng);
        let mut rng2 = NebulaRng::seed(seed);
        let mut s = Sequential::new()
            .with(Linear::new(4, 5, &mut rng2))
            .with(Linear::new(5, 3, &mut rng2));

        let x = tensor(2, 4, seed ^ 1);
        let g = tensor(2, 3, seed ^ 2);
        let h = l1.forward(&x, Mode::Train);
        l2.forward(&h, Mode::Train);
        let manual = l1.backward(&l2.backward(&g));
        s.forward(&x, Mode::Train);
        let composed = s.backward(&g);
        for (a, b) in manual.data().iter().zip(composed.data()) {
            prop_assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn grad_accumulation_is_additive(seed in 0u64..200) {
        // Two backward passes accumulate exactly the sum of two separate
        // single-pass gradients.
        let mut rng = NebulaRng::seed(seed);
        let mut l = Linear::new(3, 3, &mut rng);
        let x1 = tensor(2, 3, seed ^ 1);
        let x2 = tensor(2, 3, seed ^ 2);
        let g = Tensor::ones(&[2, 3]);

        l.zero_grad();
        l.forward(&x1, Mode::Train);
        l.backward(&g);
        let g1 = l.grad_vector();
        l.zero_grad();
        l.forward(&x2, Mode::Train);
        l.backward(&g);
        let g2 = l.grad_vector();

        l.zero_grad();
        l.forward(&x1, Mode::Train);
        l.backward(&g);
        l.forward(&x2, Mode::Train);
        l.backward(&g);
        let gsum = l.grad_vector();
        for ((a, b), s) in g1.iter().zip(&g2).zip(&gsum) {
            prop_assert!((a + b - s).abs() < 1e-4, "{} + {} != {}", a, b, s);
        }
    }

    #[test]
    fn clip_grad_norm_is_idempotent_and_bounding(max_norm in 0.1f32..5.0, seed in 0u64..200) {
        let mut rng = NebulaRng::seed(seed);
        let mut l = Linear::new(4, 4, &mut rng);
        let x = tensor(3, 4, seed ^ 9).scale(10.0);
        l.forward(&x, Mode::Train);
        l.backward(&Tensor::full(&[3, 4], 3.0));
        l.clip_grad_norm(max_norm);
        let mut sq = 0.0;
        l.visit_params(&mut |_, g| sq += g.norm_sq());
        prop_assert!(sq.sqrt() <= max_norm * 1.001);
        let pre = l.clip_grad_norm(max_norm);
        prop_assert!(pre <= max_norm * 1.001, "second clip found norm {}", pre);
    }
}
