//! Cross-crate integration: the paper's 20-device testbed configuration
//! (10 Jetson Nanos + 10 Raspberry Pi 4Bs) driven end-to-end.

use nebula::data::{PartitionSpec, Partitioner, SynthSpec, Synthesizer};
use nebula::modular::ModularConfig;
use nebula::sim::experiment::{run_adaptation_step, ExperimentConfig};
use nebula::sim::strategy::{AdaptStrategy, StrategyConfig};
use nebula::sim::{DeviceClass, NebulaStrategy, SimWorld};

fn testbed() -> SimWorld {
    let synth = Synthesizer::new(SynthSpec::toy(), 1);
    let spec = PartitionSpec::new(20, Partitioner::LabelSkew { m: 2 });
    SimWorld::testbed(synth, spec, 9, None, 5).expect("valid 20-device testbed spec")
}

fn toy_cfg() -> StrategyConfig {
    let mut modular = ModularConfig::toy(16, 4);
    modular.gate_noise_std = 0.3;
    let mut cfg = StrategyConfig::new(modular);
    cfg.devices_per_round = 10;
    cfg.rounds_per_step = 3;
    cfg.pretrain_epochs = 6;
    cfg.proxy_samples = 400;
    cfg
}

#[test]
fn nebula_adapts_on_the_testbed() {
    let mut world = testbed();
    let mut s = NebulaStrategy::new(toy_cfg(), 1);
    let out = run_adaptation_step(&mut s, &mut world, &ExperimentConfig { eval_devices: 6, seed: 3 });
    assert!(out.accuracy_after > 0.6, "testbed accuracy only {}", out.accuracy_after);
    assert!(out.comm_total_bytes > 0);
}

#[test]
fn nano_devices_get_bigger_submodels_than_pis() {
    let mut world = testbed();
    let mut s = NebulaStrategy::new(toy_cfg(), 1);
    // Derivation is budget-driven; the fixed testbed hardware gives Nanos
    // budget 0.5 and Pis 0.25 of the full model.
    let _ = run_adaptation_step(&mut s, &mut world, &ExperimentConfig { eval_devices: 4, seed: 3 });
    let nano_fp = s.footprint(&world, 0); // devices 0–9 are Nanos
    let pi_fp = s.footprint(&world, 19); // devices 10–19 are Pis
    assert_eq!(world.devices[0].resources.class, DeviceClass::MobileSoc);
    assert_eq!(world.devices[19].resources.class, DeviceClass::Iot);
    assert!(
        nano_fp.params >= pi_fp.params,
        "Nano sub-model ({}) smaller than Pi's ({})",
        nano_fp.params,
        pi_fp.params
    );
}

#[test]
fn testbed_is_deterministic() {
    let run = || {
        let mut world = testbed();
        let mut s = NebulaStrategy::new(toy_cfg(), 1);
        run_adaptation_step(&mut s, &mut world, &ExperimentConfig { eval_devices: 4, seed: 3 }).accuracy_after
    };
    assert_eq!(run(), run());
}
