//! Cross-crate integration: cloud-model checkpointing across the
//! adaptation lifecycle (snapshot → bad round → rollback).

use nebula::core::checkpoint::{restore, snapshot};
use nebula::core::{EdgeClient, NebulaCloud, NebulaParams, ResourceProfile};
use nebula::data::{SynthSpec, Synthesizer};
use nebula::modular::ModularConfig;
use nebula::nn::Layer;
use nebula::tensor::NebulaRng;

fn cloud() -> NebulaCloud {
    let mut cfg = ModularConfig::toy(16, 4);
    cfg.gate_noise_std = 0.2;
    let mut params = NebulaParams::default();
    params.pretrain.epochs = 6;
    NebulaCloud::new(cfg, params, 11)
}

#[test]
fn rollback_restores_pre_aggregation_state() {
    let synth = Synthesizer::new(SynthSpec::toy(), 1);
    let mut rng = NebulaRng::seed(3);
    let mut c = cloud();
    c.pretrain(&synth.sample(300, 0, &mut rng), &mut rng);

    let ckpt = snapshot(c.model());
    let before = c.model().param_vector();

    // A "bad" round: a device trains on label-noise garbage and pushes
    // the update.
    let garbage = {
        let clean = synth.sample_classes(80, &[0, 1], 0, &mut rng);
        // Re-label everything as class 3.
        nebula::data::Dataset::new(clean.features().clone(), vec![3; clean.len()], 4)
    };
    let outcome = c.derive_for_data(&garbage, &ResourceProfile::unconstrained(), Some(2));
    let payload = c.dispatch(&outcome.spec);
    let mut client = EdgeClient::from_payload(c.model().config().clone(), &payload);
    client.adapt(&garbage, 5, 16, 0.1, &mut rng);
    c.aggregate(&[client.make_update(&garbage)]);
    assert_ne!(c.model().param_vector(), before, "bad round had no effect");

    // Roll back.
    restore(c.model_mut(), &ckpt).unwrap();
    assert_eq!(c.model().param_vector(), before, "rollback incomplete");
}

#[test]
fn checkpoint_survives_json_round_trip_through_disk() {
    let synth = Synthesizer::new(SynthSpec::toy(), 1);
    let mut rng = NebulaRng::seed(5);
    let mut c = cloud();
    c.pretrain(&synth.sample(200, 0, &mut rng), &mut rng);

    let dir = std::env::temp_dir().join("nebula-integration-ckpt");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("cloud.json");
    nebula::core::checkpoint::save_to_file(c.model(), &path).unwrap();

    let mut c2 = cloud();
    nebula::core::checkpoint::load_from_file(c2.model_mut(), &path).unwrap();
    let test = synth.sample(100, 0, &mut rng);
    let a = nebula::data::evaluate_accuracy(c.model_mut(), &test, 64);
    let b = nebula::data::evaluate_accuracy(c2.model_mut(), &test, 64);
    assert_eq!(a, b, "restored cloud behaves differently");
    std::fs::remove_file(&path).ok();
}
