//! Cross-crate integration: the six adaptation strategies on one shared
//! simulated world, checking the relations the paper's evaluation rests
//! on (who communicates, who personalises, relative footprints).

use nebula::data::{PartitionSpec, Partitioner, SynthSpec, Synthesizer};
use nebula::modular::ModularConfig;
use nebula::sim::experiment::{run_adaptation_step, ExperimentConfig};
use nebula::sim::strategy::{AdaptStrategy, StrategyConfig};
use nebula::sim::{
    AdaptiveNetStrategy, FedAvgStrategy, HeteroFlStrategy, LocalAdaptStrategy, NebulaStrategy,
    NoAdaptStrategy, ResourceSampler, SimWorld,
};

fn toy_world(seed: u64) -> SimWorld {
    let synth = Synthesizer::new(SynthSpec::toy(), 1);
    let spec = PartitionSpec::new(10, Partitioner::LabelSkew { m: 2 });
    SimWorld::new(synth, spec, 9, None, &ResourceSampler::default(), seed)
}

fn toy_cfg() -> StrategyConfig {
    let mut modular = ModularConfig::toy(16, 4);
    modular.gate_noise_std = 0.3;
    let mut cfg = StrategyConfig::new(modular);
    cfg.devices_per_round = 5;
    cfg.rounds_per_step = 3;
    cfg.pretrain_epochs = 6;
    cfg.proxy_samples = 400;
    cfg.finetune_epochs = 5;
    cfg
}

fn run(strategy: &mut dyn AdaptStrategy) -> nebula::sim::experiment::AdaptationOutcome {
    let mut world = toy_world(5);
    run_adaptation_step(strategy, &mut world, &ExperimentConfig { eval_devices: 4, seed: 7 })
}

#[test]
fn adaptive_strategies_beat_no_adaptation() {
    let na = run(&mut NoAdaptStrategy::new(toy_cfg(), 1));
    let la = run(&mut LocalAdaptStrategy::new(toy_cfg(), 1));
    let nb = run(&mut NebulaStrategy::new(toy_cfg(), 1));
    assert!(
        la.accuracy_after > na.accuracy_after - 0.02,
        "LA {} vs NA {}",
        la.accuracy_after,
        na.accuracy_after
    );
    assert!(
        nb.accuracy_after > na.accuracy_after,
        "Nebula {} vs NA {}",
        nb.accuracy_after,
        na.accuracy_after
    );
}

#[test]
fn communication_profile_matches_paradigm() {
    // On-device paradigms move no bytes; collaborative ones do; Nebula
    // moves fewer than FedAvg at equal round counts.
    let la = run(&mut LocalAdaptStrategy::new(toy_cfg(), 1));
    let an = run(&mut AdaptiveNetStrategy::new(toy_cfg(), 1));
    let fa = run(&mut FedAvgStrategy::new(toy_cfg(), 1));
    let hfl = run(&mut HeteroFlStrategy::new(toy_cfg(), 1));
    let nb = run(&mut NebulaStrategy::new(toy_cfg(), 1));

    assert_eq!(la.comm_total_bytes, 0);
    assert_eq!(an.comm_total_bytes, 0);
    assert!(fa.comm_total_bytes > 0 && hfl.comm_total_bytes > 0 && nb.comm_total_bytes > 0);
    assert!(
        nb.comm_total_bytes < fa.comm_total_bytes,
        "Nebula {} ≥ FedAvg {}",
        nb.comm_total_bytes,
        fa.comm_total_bytes
    );
    assert!(hfl.comm_total_bytes < fa.comm_total_bytes, "HeteroFL slices should beat full FedAvg");
}

#[test]
fn footprints_respect_resource_awareness() {
    // Resource-aware systems give devices smaller models than full-model
    // systems.
    let fa = run(&mut FedAvgStrategy::new(toy_cfg(), 1));
    let hfl = run(&mut HeteroFlStrategy::new(toy_cfg(), 1));
    let nb = run(&mut NebulaStrategy::new(toy_cfg(), 1));
    assert!(hfl.mean_params <= fa.mean_params, "HFL {} vs FA {}", hfl.mean_params, fa.mean_params);
    assert!(nb.mean_params < fa.mean_params, "Nebula {} vs FA {}", nb.mean_params, fa.mean_params);
    assert!(nb.mean_train_mem_bytes < fa.mean_train_mem_bytes);
}

#[test]
fn adaptation_step_is_deterministic_per_seed() {
    let a = run(&mut NebulaStrategy::new(toy_cfg(), 1));
    let b = run(&mut NebulaStrategy::new(toy_cfg(), 1));
    assert_eq!(a.accuracy_after, b.accuracy_after);
    assert_eq!(a.comm_total_bytes, b.comm_total_bytes);
}

#[test]
fn different_seeds_change_trajectories() {
    let a = run(&mut NebulaStrategy::new(toy_cfg(), 1));
    let b = run(&mut NebulaStrategy::new(toy_cfg(), 2));
    // Different model init ⇒ different outcome (with overwhelming
    // probability on continuous metrics).
    assert_ne!(a.accuracy_after.to_bits(), b.accuracy_after.to_bits());
}
