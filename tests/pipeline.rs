//! Cross-crate integration: the full Nebula offline → online pipeline.

use nebula::core::{EdgeClient, NebulaCloud, NebulaParams, ResourceProfile};
use nebula::data::partition::{cooccurrence_groups, partition, PartitionSpec, Partitioner};
use nebula::data::{SynthSpec, Synthesizer};
use nebula::modular::ModularConfig;
use nebula::tensor::NebulaRng;

fn toy_cloud(seed: u64) -> NebulaCloud {
    let mut cfg = ModularConfig::toy(16, 4);
    cfg.gate_noise_std = 0.3;
    let mut params = NebulaParams::default();
    params.pretrain.epochs = 8;
    NebulaCloud::new(cfg, params, seed)
}

#[test]
fn offline_then_online_improves_personalized_accuracy() {
    let synth = Synthesizer::new(SynthSpec::toy(), 1);
    let mut rng = NebulaRng::seed(3);
    let mut cloud = toy_cloud(11);

    // Offline.
    let proxy = synth.sample(400, 0, &mut rng);
    cloud.pretrain(&proxy, &mut rng);
    let groups = cooccurrence_groups(4, 2, 9);
    let subtasks: Vec<_> = groups.iter().map(|g| synth.sample_classes(100, g, 0, &mut rng)).collect();
    cloud.enhance(&subtasks, &mut rng);

    // Online: three devices, one collaborative exchange each.
    let pspec = PartitionSpec::new(3, Partitioner::LabelSkew { m: 2 });
    let devices = partition(&synth, &pspec, 9, &mut rng);
    let mut updates = Vec::new();
    let mut accs = Vec::new();
    for dev in &devices {
        let outcome = cloud.derive_for_data(&dev.data, &ResourceProfile::unconstrained(), Some(3));
        let payload = cloud.dispatch(&outcome.spec);
        let mut client = EdgeClient::from_payload(cloud.model().config().clone(), &payload);
        client.adapt(&dev.data, 5, 16, 0.03, &mut rng);
        let test = synth.sample_classes(100, &dev.classes, dev.context, &mut rng);
        accs.push(client.accuracy(&test));
        updates.push(client.make_update(&dev.data));
    }
    let touched = cloud.aggregate(&updates);

    assert!(touched > 0, "aggregation touched no modules");
    let mean = accs.iter().sum::<f32>() / accs.len() as f32;
    assert!(mean > 0.7, "personalized accuracy only {mean}");
}

#[test]
fn derivation_respects_budget_end_to_end() {
    let synth = Synthesizer::new(SynthSpec::toy(), 1);
    let mut rng = NebulaRng::seed(5);
    let mut cloud = toy_cloud(7);
    let full = cloud.cost_model().full_model();

    let data = synth.sample_classes(50, &[0, 1], 0, &mut rng);
    let budget = ResourceProfile {
        mem_bytes: full.training_mem_bytes / 2,
        flops: full.flops / 2,
        comm_bytes: full.comm_bytes / 2,
    };
    let outcome = cloud.derive_for_data(&data, &budget, None);
    assert!(!outcome.over_budget);
    let cost = cloud.cost_model().submodel(&outcome.spec);
    assert!(cost.comm_bytes <= budget.comm_bytes);
    assert!(cost.flops <= budget.flops);
    // Shipping the payload costs exactly what the cost model predicts for
    // the sub-model parameters.
    let payload = cloud.dispatch(&outcome.spec);
    assert_eq!(payload.bytes(), cost.comm_bytes, "cost model and payload bytes disagree");
}

#[test]
fn aggregation_isolates_disjoint_subtask_modules() {
    // Two clients training disjoint module sets must not clobber each
    // other's modules — the conflict-isolation property of §5.2.
    let synth = Synthesizer::new(SynthSpec::toy(), 1);
    let mut rng = NebulaRng::seed(9);
    let mut cloud = toy_cloud(3);
    let proxy = synth.sample(200, 0, &mut rng);
    cloud.pretrain(&proxy, &mut rng);

    use nebula::modular::SubModelSpec;
    let spec_a = SubModelSpec::new(vec![vec![0, 1], vec![0, 1]]);
    let spec_b = SubModelSpec::new(vec![vec![2, 3], vec![2, 3]]);

    let data_a = synth.sample_classes(80, &[0, 1], 0, &mut rng);
    let data_b = synth.sample_classes(80, &[2, 3], 0, &mut rng);

    let make = |spec: &SubModelSpec, data: &nebula::data::Dataset, rng: &mut NebulaRng| {
        let payload = cloud.dispatch(spec);
        let mut client = EdgeClient::from_payload(cloud.model().config().clone(), &payload);
        client.adapt(data, 4, 16, 0.05, rng);
        client.make_update(data)
    };
    let ua = make(&spec_a, &data_a, &mut rng);
    let ub = make(&spec_b, &data_b, &mut rng);

    let a_module_before = cloud.model().module_param_vector(0, 0);
    let b_module_before = cloud.model().module_param_vector(0, 2);
    cloud.aggregate(&[ua.clone(), ub.clone()]);

    // Module (0,0) must match client A's parameters (B never touched it),
    // and (0,2) client B's — up to the one-ulp rounding of the weighted
    // average's normalisation.
    let close = |a: &[f32], b: &[f32]| {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() <= 1e-6 * x.abs().max(1.0), "{x} vs {y}");
        }
    };
    close(&cloud.model().module_param_vector(0, 0), &ua.module_params[&(0, 0)]);
    close(&cloud.model().module_param_vector(0, 2), &ub.module_params[&(0, 2)]);
    // And both actually changed from the pre-aggregation cloud values.
    assert_ne!(cloud.model().module_param_vector(0, 0), a_module_before);
    assert_ne!(cloud.model().module_param_vector(0, 2), b_module_before);
}
