//! Cross-crate integration: recovery from environment drift — the
//! behaviour Fig. 1(a)/Fig. 10 measure.

use nebula::data::drift::DriftKind;
use nebula::data::{DriftModel, PartitionSpec, Partitioner, SynthSpec, Synthesizer};
use nebula::modular::ModularConfig;
use nebula::sim::experiment::ExperimentConfig;
use nebula::sim::strategy::{AdaptStrategy, StrategyConfig};
use nebula::sim::{NebulaStrategy, NebulaVariant, NoAdaptStrategy, ResourceSampler, Runner, SimWorld};

fn drifting_world(seed: u64) -> SimWorld {
    let synth = Synthesizer::new(SynthSpec::toy(), 1);
    let spec = PartitionSpec::new(10, Partitioner::LabelSkew { m: 2 });
    let drift = DriftModel::new(0.5, DriftKind::ClassShift { m: 2, group_seed: 9 });
    SimWorld::new(synth, spec, 9, Some(drift), &ResourceSampler::default(), seed)
}

fn toy_cfg() -> StrategyConfig {
    let mut modular = ModularConfig::toy(16, 4);
    modular.gate_noise_std = 0.3;
    let mut cfg = StrategyConfig::new(modular);
    cfg.devices_per_round = 5;
    cfg.rounds_per_step = 2;
    cfg.pretrain_epochs = 6;
    cfg.proxy_samples = 400;
    cfg
}

fn mean_acc(strategy: &mut dyn AdaptStrategy, slots: usize) -> f32 {
    let mut world = drifting_world(5);
    let out = Runner::new(&mut world, strategy)
        .config(ExperimentConfig { eval_devices: 3, seed: 7 })
        .continuous(slots)
        .run()
        .expect("valid config");
    out.accuracy_per_slot.iter().sum::<f32>() / slots as f32
}

#[test]
fn nebula_outperforms_static_model_under_drift() {
    let na = mean_acc(&mut NoAdaptStrategy::new(toy_cfg(), 1), 4);
    let nb = mean_acc(&mut NebulaStrategy::new(toy_cfg(), 1), 4);
    assert!(nb > na, "Nebula {nb} vs static {na} under drift");
}

#[test]
fn full_nebula_beats_its_ablated_variants_under_drift() {
    let full = mean_acc(&mut NebulaStrategy::with_variant(toy_cfg(), 1, NebulaVariant::Full), 4);
    let no_local =
        mean_acc(&mut NebulaStrategy::with_variant(toy_cfg(), 1, NebulaVariant::NoLocalTraining), 4);
    let no_cloud = mean_acc(&mut NebulaStrategy::with_variant(toy_cfg(), 1, NebulaVariant::NoCloud), 4);
    // Both ablations lose something; allow slack for toy-scale noise but
    // the full pipeline must not be dominated by either ablation.
    assert!(
        full + 0.02 >= no_local && full + 0.02 >= no_cloud,
        "full {full} vs no_local {no_local} / no_cloud {no_cloud}"
    );
}

#[test]
fn drift_actually_degrades_a_frozen_model() {
    // Sanity for the drift machinery itself: a frozen model's accuracy on
    // slot-0 environments must beat its accuracy after several class
    // shifts — otherwise the "dynamic edge environment" isn't dynamic.
    let mut s = NoAdaptStrategy::new(toy_cfg(), 1);
    let mut world = drifting_world(5);
    let mut rng = nebula::tensor::NebulaRng::seed(2);
    s.offline(&mut world, &mut rng);
    s.track(&[0, 1, 2]);
    let before: f32 = (0..3).map(|id| s.device_accuracy(&mut world, id)).sum::<f32>() / 3.0;
    // NoAdapt's accuracy is environment-dependent only through test sets;
    // drift changes device class groups, which changes what is asked of
    // the frozen model. It should at minimum *move*.
    for _ in 0..3 {
        world.advance_slot();
    }
    let after: f32 = (0..3).map(|id| s.device_accuracy(&mut world, id)).sum::<f32>() / 3.0;
    assert_ne!(before.to_bits(), after.to_bits(), "drift had no observable effect");
}
