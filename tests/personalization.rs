//! Cross-crate integration: does a derived + adapted sub-model actually
//! *specialise*? Checked with per-class metrics: after adaptation, the
//! device's sub-model must recall its own sub-task classes at least as
//! well as the generic cloud model does.

use nebula::core::{EdgeClient, NebulaCloud, NebulaParams, ResourceProfile};
use nebula::data::metrics::confusion_matrix;
use nebula::data::{SynthSpec, Synthesizer};
use nebula::modular::ModularConfig;
use nebula::tensor::NebulaRng;

#[test]
fn adapted_submodel_specialises_on_its_subtask_classes() {
    let synth = Synthesizer::new(SynthSpec::toy(), 1);
    let mut rng = NebulaRng::seed(4);

    let mut cfg = ModularConfig::toy(16, 4);
    cfg.gate_noise_std = 0.3;
    let mut params = NebulaParams::default();
    params.pretrain.epochs = 10;
    let mut cloud = NebulaCloud::new(cfg, params, 11);
    cloud.pretrain(&synth.sample(500, 0, &mut rng), &mut rng);

    // Device observing classes {0, 1} in a shifted context.
    let device_classes = [0usize, 1];
    let local = synth.sample_classes(150, &device_classes, 2, &mut rng);
    let test = synth.sample_classes(200, &device_classes, 2, &mut rng);

    // Generic cloud model's per-class recall on the device task.
    let cloud_cm = confusion_matrix(cloud.model_mut(), &test, 64);

    // Derived + locally adapted sub-model.
    let out = cloud.derive_for_data(&local, &ResourceProfile::unconstrained(), Some(2));
    let payload = cloud.dispatch(&out.spec);
    let mut client = EdgeClient::from_payload(cloud.model().config().clone(), &payload);
    client.adapt(&local, 8, 16, 0.03, &mut rng);
    let sub_cm = confusion_matrix(client.model_mut(), &test, 64);

    let mean_recall = |cm: &nebula::data::ConfusionMatrix| -> f32 {
        let rs: Vec<f32> = device_classes.iter().filter_map(|&c| cm.recall(c)).collect();
        rs.iter().sum::<f32>() / rs.len().max(1) as f32
    };
    let cloud_recall = mean_recall(&cloud_cm);
    let sub_recall = mean_recall(&sub_cm);
    assert!(
        sub_recall >= cloud_recall - 0.02,
        "specialised sub-model recall {sub_recall} below generic model {cloud_recall}"
    );
    assert!(sub_recall > 0.8, "sub-task recall only {sub_recall}");

    // Overall accuracy agrees with macro-level expectations.
    assert!(sub_cm.accuracy() >= cloud_cm.accuracy() - 0.02);
    assert!(sub_cm.macro_f1() > 0.0);
}

#[test]
fn confusion_matrix_totals_match_test_set() {
    let synth = Synthesizer::new(SynthSpec::toy(), 1);
    let mut rng = NebulaRng::seed(5);
    let mut cfg = ModularConfig::toy(16, 4);
    cfg.gate_noise_std = 0.0;
    let mut cloud = NebulaCloud::new(cfg, NebulaParams::default(), 3);
    let test = synth.sample(123, 0, &mut rng);
    let cm = confusion_matrix(cloud.model_mut(), &test, 32);
    assert_eq!(cm.total(), 123);
    // Row sums equal the class histogram.
    let hist = test.class_histogram();
    for (c, &h) in hist.iter().enumerate().take(4) {
        let row_sum: usize = (0..4).map(|p| cm.count(c, p)).sum();
        assert_eq!(row_sum, h);
    }
}
