//! Offline stand-in for the subset of the crates.io `rand` API this
//! workspace uses (`StdRng`, `SeedableRng::seed_from_u64`, `next_u64`,
//! `gen_range`, `gen_bool`).
//!
//! The build environment has no network access and no vendored registry,
//! so the real crate cannot be fetched. This shim keeps the call sites
//! source-compatible while providing a deterministic xoshiro256**
//! generator. Streams differ numerically from upstream `StdRng`
//! (ChaCha12), which only shifts the arbitrary seed-to-sample mapping —
//! every experiment remains exactly reproducible from its seed.

pub mod rngs {
    /// Deterministic xoshiro256** generator standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn from_u64_seed(seed: u64) -> Self {
            // SplitMix64 seed expansion, the reference initialisation for
            // the xoshiro family.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }

        /// Raw generator state, for checkpoint/resume of seeded streams.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a previously captured [`Self::state`].
        ///
        /// An all-zero state is the xoshiro fixed point (the stream would
        /// be constant zero); it can never be produced by seeding, so it
        /// is rejected here to catch corrupted checkpoints.
        pub fn from_state(s: [u64; 4]) -> Option<Self> {
            if s == [0; 4] {
                return None;
            }
            Some(Self { s })
        }

        pub(crate) fn next(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.next()
        }

        fn next_u32(&mut self) -> u32 {
            (self.next() >> 32) as u32
        }
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng::from_u64_seed(seed)
        }
    }
}

/// Core random-source trait: raw 64/32-bit output.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
    fn next_u32(&mut self) -> u32;
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Debiased multiply-shift (Lemire); span is never 0 here.
                (self.start as u128 + bounded(rng, span) as u128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range in gen_range");
                let span = (hi as u128 - lo as u128 + 1) as u64;
                if span == 0 {
                    // Full-width range: every value is fair.
                    return rng.next_u64() as $t;
                }
                (lo as u128 + bounded(rng, span) as u128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform draw in `[0, span)` by rejection sampling the top bits.
fn bounded<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! impl_float_range {
    ($($t:ty, $bits:expr, $mant:expr);*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let unit = (rng.next_u64() >> (64 - $mant)) as $t / (1u64 << $mant) as $t;
                let v = self.start + unit * (self.end - self.start);
                // Guard the open upper bound against rounding.
                if v >= self.end { self.start } else { v }
            }
        }
    )*};
}

impl_float_range!(f32, 32, 24; f64, 64, 53);

/// The user-facing sampling methods, blanket-implemented for every source.
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        if p >= 1.0 {
            return true;
        }
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_reproduce() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..2000 {
            let u = rng.gen_range(0usize..7);
            assert!(u < 7);
            let i = rng.gen_range(3u64..=9);
            assert!((3..=9).contains(&i));
            let f = rng.gen_range(-1.5f32..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn int_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s), "some bucket never drawn: {seen:?}");
    }

    #[test]
    fn gen_bool_extremes_and_rate() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 rate off: {hits}");
    }
}
