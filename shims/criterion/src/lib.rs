//! Offline stand-in for the criterion API surface this workspace uses.
//!
//! Each benchmark runs a short fixed schedule (one warm-up iteration,
//! then a handful of timed ones) and prints the mean per-iteration time.
//! There is no statistical analysis, HTML report, or CLI filtering —
//! the point is that `cargo test` / `cargo bench` complete quickly and
//! the relative numbers remain comparable within one run.

use std::time::{Duration, Instant};

const WARMUP_ITERS: u64 = 1;
const TIMED_ITERS: u64 = 5;

/// Identity function the optimizer must assume has side effects.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost; irrelevant to the shim's
/// fixed schedule but accepted for API compatibility.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// A benchmark label within a group (`from_parameter(512)` → "512").
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn from_parameter<P: std::fmt::Display>(p: P) -> Self {
        Self { id: p.to_string() }
    }

    pub fn new<S: Into<String>, P: std::fmt::Display>(function: S, p: P) -> Self {
        Self { id: format!("{}/{}", function.into(), p) }
    }
}

/// Entry point handed to each `criterion_group!` function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup { name: name.to_string() }
    }
}

pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Accepted for compatibility; the shim's schedule is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { elapsed: Duration::ZERO, iters: 0 };
        f(&mut b);
        b.report(&self.name, id);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { elapsed: Duration::ZERO, iters: 0 };
        f(&mut b, input);
        b.report(&self.name, &id.id);
        self
    }

    pub fn finish(&mut self) {}
}

/// Runs the measured closure; collects total time and iteration count.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..TIMED_ITERS {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = TIMED_ITERS;
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let input = setup();
        black_box(routine(input));
        let mut total = Duration::ZERO;
        for _ in 0..TIMED_ITERS {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
        self.iters = TIMED_ITERS;
    }

    fn report(&self, group: &str, id: &str) {
        if self.iters == 0 {
            println!("{group}/{id}: no iterations recorded");
            return;
        }
        let per_iter = self.elapsed / self.iters as u32;
        println!("{group}/{id}: {per_iter:?}/iter over {} iters", self.iters);
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim/self_test");
        group.sample_size(10);
        group.bench_function("sum", |b| {
            b.iter(|| (0..1000u64).sum::<u64>());
        });
        group.bench_with_input(BenchmarkId::from_parameter(64), &64usize, |b, &n| {
            b.iter(|| vec![0u8; n]);
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u32; 100], |v| v.iter().sum::<u32>(), BatchSize::LargeInput);
        });
        group.finish();
    }

    criterion_group!(self_benches, sample_bench);

    #[test]
    fn harness_runs_to_completion() {
        self_benches();
    }
}
