//! Offline stand-in for the rayon parallel-iterator API surface this
//! workspace uses (`par_iter`, `into_par_iter`, `par_chunks_mut`).
//!
//! Every `par_*` call returns the corresponding **sequential** std
//! iterator, so downstream `.zip(..).map(..).collect()` chains compile
//! unchanged. The workspace already forks per-device RNG streams before
//! entering parallel sections precisely so results do not depend on the
//! thread count — a thread count of one is therefore observationally
//! identical, and on this single-core build host it costs nothing.

pub mod prelude {
    /// `par_iter` / `par_chunks_mut` on slices (and anything derefing to
    /// a slice, e.g. `Vec`).
    pub trait ParallelSlice<T> {
        fn par_iter(&self) -> std::slice::Iter<'_, T>;
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
        fn par_chunks(&self, size: usize) -> std::slice::Chunks<'_, T>;
        fn par_chunks_mut(&mut self, size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }

        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.iter_mut()
        }

        fn par_chunks(&self, size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(size)
        }

        fn par_chunks_mut(&mut self, size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(size)
        }
    }

    /// `into_par_iter` on owned collections.
    pub trait IntoParallelIterator {
        type Item;
        type Iter: Iterator<Item = Self::Item>;
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T> IntoParallelIterator for Vec<T> {
        type Item = T;
        type Iter = std::vec::IntoIter<T>;

        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Item = usize;
        type Iter = std::ops::Range<usize>;

        fn into_par_iter(self) -> Self::Iter {
            self
        }
    }
}

/// Sequential stand-in for `rayon::join`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_chains_like_std() {
        let xs = [1u32, 2, 3];
        let ys = vec![10u32, 20, 30];
        let sums: Vec<u32> = xs.par_iter().zip(ys).map(|(a, b)| a + b).collect();
        assert_eq!(sums, vec![11, 22, 33]);
    }

    #[test]
    fn into_par_iter_consumes() {
        let v: Vec<String> = vec!["a".into(), "b".into()];
        let out: Vec<String> = v.into_par_iter().map(|s| s + "!").collect();
        assert_eq!(out, vec!["a!", "b!"]);
    }

    #[test]
    fn par_chunks_mut_enumerate_for_each() {
        let mut data = vec![0f32; 6];
        data.par_chunks_mut(2).enumerate().for_each(|(i, row)| {
            for v in row {
                *v = i as f32;
            }
        });
        assert_eq!(data, vec![0.0, 0.0, 1.0, 1.0, 2.0, 2.0]);
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = super::join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }
}
