//! Offline stand-in for the proptest API surface this workspace uses:
//! the `proptest!` test macro, range strategies, `collection::{vec,
//! btree_set}`, `.prop_map`, and the `prop_assert*` / `prop_assume!`
//! macros.
//!
//! Unlike upstream there is no shrinking: a failing case reports its
//! generated inputs and case index so it can be reproduced (generation
//! is a pure function of the test name and case index). Case counts
//! honour `ProptestConfig::with_cases`.

use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// RNG (SplitMix64 — deterministic per (test name, case index))
// ---------------------------------------------------------------------------

/// Deterministic generator handed to strategies for one test case.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_parts(name: &str, case: u64) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h = 0xcbf29ce484222325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        Self { state: h ^ case.wrapping_mul(0x9e3779b97f4a7c15) }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        // Multiply-shift; bias is irrelevant for test-case generation.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------------------
// Strategy trait + combinators
// ---------------------------------------------------------------------------

/// Generates values of `Self::Value` from a [`TestRng`].
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

/// `vec` / `btree_set` size specifications (`0..20`, `2..=2`, `5`).
#[derive(Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        assert!(self.min < self.max_exclusive, "empty size range");
        self.min + rng.below((self.max_exclusive - self.min) as u64) as usize
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange { min: r.start, max_exclusive: r.end }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange { min: *r.start(), max_exclusive: *r.end() + 1 }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max_exclusive: n + 1 }
    }
}

pub mod collection {
    use super::*;

    /// A `Vec` of values from `element`, with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `BTreeSet` of distinct values from `element`, with cardinality
    /// drawn from `size` (best-effort if the element domain is smaller
    /// than the requested cardinality).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut set = BTreeSet::new();
            // Cap attempts so a too-small element domain terminates.
            let mut budget = 64 * (target + 1);
            while set.len() < target && budget > 0 {
                set.insert(self.element.generate(rng));
                budget -= 1;
            }
            set
        }
    }
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Per-`proptest!` block configuration.
#[derive(Clone, Copy)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assert*` failed — the property is violated.
    Fail(String),
    /// `prop_assume!` rejected the inputs — skip, not a failure.
    Reject,
}

/// Drives one `#[test]` expanded from `proptest!`.
pub struct TestRunner {
    config: ProptestConfig,
    name: &'static str,
}

impl TestRunner {
    pub fn new(config: ProptestConfig, name: &'static str) -> Self {
        Self { config, name }
    }

    pub fn cases(&self) -> u64 {
        self.config.cases as u64
    }

    pub fn rng_for_case(&self, case: u64) -> TestRng {
        TestRng::from_parts(self.name, case)
    }

    pub fn handle(&self, case: u64, result: Result<(), TestCaseError>) {
        match result {
            Ok(()) | Err(TestCaseError::Reject) => {}
            Err(TestCaseError::Fail(msg)) => panic!(
                "proptest case {case} of `{}` failed: {msg} (regenerate with the same test \
                 name and case index)",
                self.name
            ),
        }
    }
}

pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig, Strategy,
    };
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(
        $(#[$meta:meta])+
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let runner = $crate::TestRunner::new($cfg, stringify!($name));
            for case in 0..runner.cases() {
                let mut rng = runner.rng_for_case(case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                runner.handle(case, outcome);
            }
        }
    )*};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} ({})", stringify!($cond), format!($($fmt)+)
            )));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}; {})",
                stringify!($left), stringify!($right), l, r, format!($($fmt)+)
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn int_ranges_stay_in_bounds(n in 1usize..10, x in -5i64..5, s in 0u64..100) {
            prop_assert!((1..10).contains(&n));
            prop_assert!((-5..5).contains(&x));
            prop_assert!(s < 100, "saw {}", s);
        }

        #[test]
        fn float_ranges_stay_in_bounds(a in -2.0f32..2.0, b in 1e5f64..1e9) {
            prop_assert!((-2.0..2.0).contains(&a));
            prop_assert!((1e5..1e9).contains(&b));
        }

        #[test]
        fn collections_honour_sizes(
            v in crate::collection::vec(0u64..1_000, 0..20),
            s in crate::collection::btree_set(0usize..4, 1..=4),
        ) {
            prop_assert!(v.len() < 20);
            prop_assert!(!s.is_empty() && s.len() <= 4);
            prop_assert!(s.iter().all(|&e| e < 4));
        }

        #[test]
        fn prop_map_applies(doubled in (0usize..50).prop_map(|x| x * 2)) {
            prop_assert_eq!(doubled % 2, 0);
            prop_assert!(doubled < 100);
        }

        #[test]
        fn assume_rejects_without_failing(k in 0usize..10) {
            prop_assume!(k % 2 == 0);
            prop_assert_eq!(k % 2, 0, "only even values reach here");
        }
    }

    #[test]
    fn generation_is_deterministic_per_case() {
        use super::{Strategy, TestRng};
        let a = (0u64..1_000_000).generate(&mut TestRng::from_parts("t", 7));
        let b = (0u64..1_000_000).generate(&mut TestRng::from_parts("t", 7));
        assert_eq!(a, b);
    }
}
