//! Offline stand-in for the `serde_json` API surface this workspace
//! uses: `to_string` / `to_vec` over `serde::Serialize`, `from_str` /
//! `from_slice` over `serde::Deserialize`, and the `Value` tree
//! (re-exported from the serde shim so both crates share one type).
//!
//! Matches upstream behaviour where the workspace can observe it:
//! object fields print in insertion order, strings are escaped, and
//! non-finite floats serialize as `null` (and deserialize back to NaN
//! through the shim's lenient float lifting).

pub use serde::{Error, Number, Value};

/// Serializes a value to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Serializes a value to compact JSON bytes.
pub fn to_vec<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Parses JSON text into any `serde::Deserialize` type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_value(&value)
}

/// Parses JSON bytes into any `serde::Deserialize` type.
pub fn from_slice<T: serde::Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s =
        std::str::from_utf8(bytes).map_err(|e| Error::custom(format!("invalid UTF-8 in JSON input: {e}")))?;
    from_str(s)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(n, out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (key, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_number(n: &Number, out: &mut String) {
    match n {
        Number::U64(u) => out.push_str(&u.to_string()),
        Number::I64(i) => out.push_str(&i.to_string()),
        Number::F64(f) => {
            if f.is_finite() {
                // `{f:?}` keeps a decimal point or exponent on round
                // floats ("1.0", not "1"), matching upstream output.
                out.push_str(&format!("{f:?}"));
            } else {
                // Upstream serde_json has no representation for
                // NaN/inf and emits null.
                out.push_str("null");
            }
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser (recursive descent)
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!("trailing characters at byte {} of JSON input", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!("expected '{}' at byte {} of JSON input", b as char, self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(other) => Err(Error::custom(format!(
                "unexpected byte '{}' at {} in JSON input",
                other as char, self.pos
            ))),
            None => Err(Error::custom("unexpected end of JSON input".to_string())),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::custom(format!("invalid literal at byte {} of JSON input", self.pos)))
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected ',' or '}}' at byte {} of JSON input",
                        self.pos
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected ',' or ']' at byte {} of JSON input",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::custom(format!("invalid UTF-8 in JSON string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::custom("unexpected end of JSON string escape".to_string()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| {
                                    Error::custom("truncated \\u escape in JSON string".to_string())
                                })?;
                            let code = u32::from_str_radix(hex, 16).map_err(|_| {
                                Error::custom(format!("invalid \\u escape '{hex}' in JSON string"))
                            })?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by this
                            // workspace's writer; map lone surrogates to
                            // the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "invalid escape '\\{}' in JSON string",
                                other as char
                            )))
                        }
                    }
                }
                _ => return Err(Error::custom("unterminated string in JSON input".to_string())),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        let n = if is_float {
            Number::F64(
                text.parse::<f64>().map_err(|_| Error::custom(format!("invalid JSON number '{text}'")))?,
            )
        } else if text.starts_with('-') {
            Number::I64(
                text.parse::<i64>().map_err(|_| Error::custom(format!("invalid JSON number '{text}'")))?,
            )
        } else {
            Number::U64(
                text.parse::<u64>().map_err(|_| Error::custom(format!("invalid JSON number '{text}'")))?,
            )
        };
        Ok(Value::Number(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn roundtrip_scalars_and_containers() {
        let mut m = BTreeMap::new();
        m.insert("alpha".to_string(), vec![1.5f64, -2.0, 3.25]);
        m.insert("beta".to_string(), vec![]);
        let json = to_string(&m).unwrap();
        assert_eq!(json, r#"{"alpha":[1.5,-2.0,3.25],"beta":[]}"#);
        let back: BTreeMap<String, Vec<f64>> = from_str(&json).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "line1\nline2\t\"quoted\" \\slash\u{0001}".to_string();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn value_indexing_matches_report_usage() {
        let v: Value = from_str(r#"{"task":"har","accuracy":0.91,"rounds":12}"#).unwrap();
        assert_eq!(v["task"].as_str(), Some("har"));
        assert_eq!(v["accuracy"].as_f64(), Some(0.91));
        assert_eq!(v["rounds"].as_u64(), Some(12));
        assert_eq!(v["missing"].as_str(), None);
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        let xs = vec![1.0f32, f32::NAN, f32::INFINITY];
        let json = to_string(&xs).unwrap();
        assert_eq!(json, "[1.0,null,null]");
        // The shim's lenient float lifting turns null back into NaN.
        let back: Vec<f32> = from_str(&json).unwrap();
        assert_eq!(back[0], 1.0);
        assert!(back[1].is_nan() && back[2].is_nan());
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<Value>("{\"a\":1,}").is_err());
        assert!(from_str::<Value>("[1 2]").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
        assert!(from_str::<Value>("{} trailing").is_err());
    }

    #[test]
    fn from_slice_matches_from_str() {
        let v: Vec<u32> = from_slice(b"[1,2,3]").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        assert!(from_slice::<Value>(&[0xff, 0xfe]).is_err());
    }
}
