//! Offline stand-in for the serde API surface this workspace uses.
//!
//! The build environment has no network access, so the real `serde`
//! cannot be fetched. This shim keeps call sites source-compatible —
//! `#[derive(Serialize, Deserialize)]`, `use serde::{Serialize,
//! Deserialize}`, `serde_json::{to_string, from_str, Value}` — over a
//! much simpler model: serialization lowers a type to a JSON [`Value`]
//! tree, deserialization lifts it back. The visitor machinery of real
//! serde is unnecessary here because the only format the workspace ever
//! uses is JSON.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A JSON value tree. Object fields keep insertion order so emitted JSON
/// matches struct declaration order, as with real `serde_json`.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

/// A JSON number, kept in its narrowest faithful representation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Number {
    U64(u64),
    I64(i64),
    F64(f64),
}

impl Number {
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U64(v) => v as f64,
            Number::I64(v) => v as f64,
            Number::F64(v) => v,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U64(v) => Some(v),
            Number::I64(v) => u64::try_from(v).ok(),
            Number::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => Some(v as u64),
            Number::F64(_) => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U64(v) => i64::try_from(v).ok(),
            Number::I64(v) => Some(v),
            Number::F64(v) if v.fract() == 0.0 && v.abs() <= i64::MAX as f64 => Some(v as i64),
            Number::F64(_) => None,
        }
    }
}

static NULL: Value = Value::Null;

impl Value {
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// Missing keys and non-objects index to `Null`, as in `serde_json`.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// Serialization / deserialization error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn custom(msg: impl fmt::Display) -> Self {
        Self { msg: msg.to_string() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// A type that lowers to a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// A type that lifts back from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// --- primitive impls -------------------------------------------------------

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| type_err(stringify!($t), v))?;
                <$t>::try_from(n).map_err(|_| Error::custom(format!(
                    "{n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::I64(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| type_err(stringify!($t), v))?;
                <$t>::try_from(n).map_err(|_| Error::custom(format!(
                    "{n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::F64(*self as f64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) => Ok(n.as_f64() as $t),
                    // Non-finite floats serialize to null (as in
                    // serde_json); lift them back as NaN so the domain
                    // layer owns the rejection policy.
                    Value::Null => Ok(<$t>::NAN),
                    _ => Err(type_err(stringify!($t), v)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| type_err("bool", v))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str().map(str::to_string).ok_or_else(|| type_err("string", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array().ok_or_else(|| type_err("array", v))?.iter().map(Deserialize::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| type_err("object", v))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Deterministic output: sort keys.
        let mut entries: Vec<(String, Value)> = self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| type_err("object", v))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

fn type_err(expected: &str, got: &Value) -> Error {
    let kind = match got {
        Value::Null => "null",
        Value::Bool(_) => "bool",
        Value::Number(_) => "number",
        Value::String(_) => "string",
        Value::Array(_) => "array",
        Value::Object(_) => "object",
    };
    Error::custom(format!("expected {expected}, found {kind}"))
}

// --- derive support helpers ------------------------------------------------

/// Looks up and deserializes a struct field (derive-generated code).
pub fn from_field<T: Deserialize>(v: &Value, ty: &str, field: &str) -> Result<T, Error> {
    let val = v.get(field).ok_or_else(|| Error::custom(format!("missing field `{field}` for {ty}")))?;
    T::from_value(val).map_err(|e| Error::custom(format!("{ty}.{field}: {e}")))
}

/// [`from_field`] for `#[serde(default)]` fields: a missing field yields
/// `Default::default()` so payloads written before the field existed
/// still deserialize (derive-generated code).
pub fn from_field_or_default<T: Deserialize + Default>(v: &Value, ty: &str, field: &str) -> Result<T, Error> {
    match v.get(field) {
        None => Ok(T::default()),
        Some(val) => T::from_value(val).map_err(|e| Error::custom(format!("{ty}.{field}: {e}"))),
    }
}

/// Splits a single-key object into `(variant_name, payload)` — the shape
/// of a serialized newtype/tuple enum variant.
pub fn variant_payload(v: &Value) -> Option<(&str, &Value)> {
    match v.as_object()?.as_slice() {
        [(k, inner)] => Some((k.as_str(), inner)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f32::from_value(&1.5f32.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(String::from_value(&"hi".to_string().to_value()).unwrap(), "hi");
        let v: Vec<usize> = Deserialize::from_value(&vec![1usize, 2, 3].to_value()).unwrap();
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    fn numeric_cross_width_casts() {
        // Integer-valued f64 lifts into integer types; integers lift into
        // floats.
        assert_eq!(u8::from_value(&Value::Number(Number::F64(3.0))).unwrap(), 3);
        assert_eq!(f64::from_value(&Value::Number(Number::U64(7))).unwrap(), 7.0);
        assert!(u8::from_value(&Value::Number(Number::F64(3.5))).is_err());
        assert!(u8::from_value(&Value::Number(Number::U64(300))).is_err());
    }

    #[test]
    fn option_and_null() {
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u32>::from_value(&5u32.to_value()).unwrap(), Some(5));
        assert!(Value::Null.is_null());
    }

    #[test]
    fn value_indexing_is_total() {
        let v = Value::Object(vec![("a".into(), Value::Bool(true))]);
        assert_eq!(v["a"].as_bool(), Some(true));
        assert!(v["missing"].is_null());
        assert!(Value::Null["x"].is_null());
    }

    #[test]
    fn type_errors_name_both_sides() {
        let err = u32::from_value(&Value::String("x".into())).unwrap_err();
        assert!(err.to_string().contains("expected u32"), "{err}");
    }
}
