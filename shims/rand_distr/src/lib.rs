//! Offline stand-in for the subset of `rand_distr` this workspace uses:
//! [`Normal`], [`LogNormal`] and the [`Distribution`] trait.
//!
//! Gaussian draws use Box–Muller over the shim `rand` source; each
//! `sample` consumes exactly two `u64`s, keeping streams deterministic.
//! `Normal<T>` is generic over [`Float`] so `Normal::new(0.0f32, 1.0)`
//! infers `T` exactly like upstream.

use rand::RngCore;

/// A value sampleable from an RNG.
pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error for invalid distribution parameters (non-finite or negative scale).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParamError;

impl core::fmt::Display for ParamError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "invalid distribution parameter")
    }
}

impl std::error::Error for ParamError {}

/// The float operations the distributions need, implemented for
/// `f32`/`f64` so the structs can stay generic.
pub trait Float: Copy + PartialOrd {
    fn from_f64(x: f64) -> Self;
    fn zero() -> Self;
    fn is_finite_val(self) -> bool;
    fn mul_add_val(self, a: Self, b: Self) -> Self;
    fn exp_val(self) -> Self;
}

impl Float for f32 {
    fn from_f64(x: f64) -> Self {
        x as f32
    }
    fn zero() -> Self {
        0.0
    }
    fn is_finite_val(self) -> bool {
        self.is_finite()
    }
    fn mul_add_val(self, a: Self, b: Self) -> Self {
        self * a + b
    }
    fn exp_val(self) -> Self {
        self.exp()
    }
}

impl Float for f64 {
    fn from_f64(x: f64) -> Self {
        x
    }
    fn zero() -> Self {
        0.0
    }
    fn is_finite_val(self) -> bool {
        self.is_finite()
    }
    fn mul_add_val(self, a: Self, b: Self) -> Self {
        self * a + b
    }
    fn exp_val(self) -> Self {
        self.exp()
    }
}

/// Gaussian distribution `N(mean, std_dev²)`.
#[derive(Clone, Copy, Debug)]
pub struct Normal<T> {
    mean: T,
    std_dev: T,
}

impl<T: Float> Normal<T> {
    pub fn new(mean: T, std_dev: T) -> Result<Self, ParamError> {
        if !mean.is_finite_val() || !std_dev.is_finite_val() || std_dev < T::zero() {
            return Err(ParamError);
        }
        Ok(Self { mean, std_dev })
    }
}

impl<T: Float> Distribution<T> for Normal<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        self.std_dev.mul_add_val(T::from_f64(standard_normal(rng)), self.mean)
    }
}

/// Log-normal distribution: `exp(N(mu, sigma²))`.
#[derive(Clone, Copy, Debug)]
pub struct LogNormal<T> {
    norm: Normal<T>,
}

impl<T: Float> LogNormal<T> {
    pub fn new(mu: T, sigma: T) -> Result<Self, ParamError> {
        Ok(Self { norm: Normal::new(mu, sigma)? })
    }
}

impl<T: Float> Distribution<T> for LogNormal<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        self.norm.sample(rng).exp_val()
    }
}

/// One standard-normal draw via Box–Muller (cos branch), always consuming
/// exactly two raw `u64`s.
fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0, 1]: shift the 53-bit mantissa draw away from zero so the
    // log is finite.
    let u1 = ((rng.next_u64() >> 11) as f64 + 1.0) / (1u64 << 53) as f64;
    let u2 = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
    (-2.0 * u1.ln()).sqrt() * (2.0 * core::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(11);
        let d = Normal::new(2.0f64, 0.5).unwrap();
        let n = 40_000;
        let draws: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.02, "mean {mean}");
        assert!((var - 0.25).abs() < 0.02, "var {var}");
    }

    #[test]
    fn zero_std_is_constant_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = Normal::new(3.0f32, 0.0).unwrap();
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 3.0);
        }
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(Normal::new(0.0f32, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(LogNormal::new(0.0f32, f32::INFINITY).is_err());
    }

    #[test]
    fn lognormal_is_exp_of_normal_params() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = LogNormal::new(0.0f64, 0.25).unwrap();
        let n = 40_000;
        let mean_log = (0..n).map(|_| d.sample(&mut rng).ln()).sum::<f64>() / n as f64;
        assert!(mean_log.abs() < 0.01, "log-mean {mean_log}");
    }
}
