//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the serde shim.
//!
//! Implemented without `syn`/`quote` (unavailable offline): the input
//! `TokenStream` is walked directly and the impl is emitted as a string.
//! Supported shapes — which cover every derived type in this workspace:
//!
//! * structs with named fields, honouring `#[serde(skip)]`;
//! * enums whose variants are unit (`Iot`) or newtype (`Custom(String)`).
//!
//! Anything else (tuple structs, generics, struct variants) is rejected
//! with a compile error naming the limitation, so a future use fails
//! loudly instead of mis-serializing.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    skip: bool,
    /// `#[serde(default)]`: a missing field deserializes to
    /// `Default::default()` instead of erroring (back-compat for fields
    /// added after payloads were written).
    default: bool,
}

struct Variant {
    name: String,
    arity: usize,
}

enum Shape {
    Struct { name: String, fields: Vec<Field> },
    Enum { name: String, variants: Vec<Variant> },
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = match parse(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let code = match &shape {
        Shape::Struct { name, fields } => {
            let mut pushes = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                pushes.push_str(&format!(
                    "fields.push((\"{n}\".to_string(), ::serde::Serialize::to_value(&self.{n})));\n",
                    n = f.name
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 let mut fields: Vec<(String, ::serde::Value)> = Vec::new();\n\
                 {pushes}\
                 ::serde::Value::Object(fields)\n\
                 }}\n}}\n"
            )
        }
        Shape::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                match v.arity {
                    0 => arms.push_str(&format!(
                        "{name}::{v} => ::serde::Value::String(\"{v}\".to_string()),\n",
                        v = v.name
                    )),
                    1 => arms.push_str(&format!(
                        "{name}::{v}(inner) => ::serde::Value::Object(vec![(\"{v}\".to_string(), \
                         ::serde::Serialize::to_value(inner))]),\n",
                        v = v.name
                    )),
                    n => {
                        return compile_error(&format!(
                            "serde shim derive: variant {}::{} has {n} fields; only unit and \
                             newtype variants are supported",
                            name, v.name
                        ))
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{\n{arms}}}\n\
                 }}\n}}\n"
            )
        }
    };
    code.parse().expect("derive(Serialize) emitted invalid Rust")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = match parse(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let code = match &shape {
        Shape::Struct { name, fields } => {
            let mut inits = String::new();
            for f in &fields[..] {
                if f.skip {
                    inits.push_str(&format!("{}: ::core::default::Default::default(),\n", f.name));
                } else if f.default {
                    inits.push_str(&format!(
                        "{n}: ::serde::from_field_or_default(v, \"{name}\", \"{n}\")?,\n",
                        n = f.name
                    ));
                } else {
                    inits.push_str(&format!(
                        "{n}: ::serde::from_field(v, \"{name}\", \"{n}\")?,\n",
                        n = f.name
                    ));
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                 Ok(Self {{\n{inits}}})\n\
                 }}\n}}\n"
            )
        }
        Shape::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for v in variants {
                match v.arity {
                    0 => unit_arms.push_str(&format!("\"{v}\" => return Ok({name}::{v}),\n", v = v.name)),
                    1 => payload_arms.push_str(&format!(
                        "\"{v}\" => return Ok({name}::{v}(::serde::Deserialize::from_value(inner)?)),\n",
                        v = v.name
                    )),
                    n => {
                        return compile_error(&format!(
                            "serde shim derive: variant {}::{} has {n} fields; only unit and \
                             newtype variants are supported",
                            name, v.name
                        ))
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                 if let ::serde::Value::String(s) = v {{\n\
                 match s.as_str() {{\n{unit_arms}_ => {{}}\n}}\n\
                 }}\n\
                 if let Some((key, inner)) = ::serde::variant_payload(v) {{\n\
                 let _ = inner;\n\
                 match key {{\n{payload_arms}_ => {{}}\n}}\n\
                 }}\n\
                 Err(::serde::Error::custom(format!(\"invalid {name} variant: {{v:?}}\")))\n\
                 }}\n}}\n"
            )
        }
    };
    code.parse().expect("derive(Deserialize) emitted invalid Rust")
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().expect("compile_error emits")
}

/// Walks the derive input down to the shape the generators need.
fn parse(input: TokenStream) -> Result<Shape, String> {
    let mut iter = input.into_iter().peekable();
    let kind = loop {
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next(); // the [...] attribute group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                // Possible pub(crate)/pub(super) scope group.
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    break s;
                }
                return Err(format!("serde shim derive: unexpected token `{s}`"));
            }
            Some(other) => return Err(format!("serde shim derive: unexpected token `{other}`")),
            None => return Err("serde shim derive: ran out of tokens".into()),
        }
    };

    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("serde shim derive: expected type name, got {other:?}")),
    };

    let body = match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            return Err(format!("serde shim derive: {name} is generic; generics are not supported"))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            return Err(format!(
                "serde shim derive: {name} is a tuple struct; only named fields are supported"
            ))
        }
        other => return Err(format!("serde shim derive: expected {{...}} body, got {other:?}")),
    };

    let chunks = split_top_level_commas(body);
    if kind == "struct" {
        let mut fields = Vec::new();
        for chunk in chunks {
            if let Some(f) = parse_field(chunk)? {
                fields.push(f);
            }
        }
        Ok(Shape::Struct { name, fields })
    } else {
        let mut variants = Vec::new();
        for chunk in chunks {
            if let Some(v) = parse_variant(chunk)? {
                variants.push(v);
            }
        }
        Ok(Shape::Enum { name, variants })
    }
}

/// Splits a field/variant list at commas that sit outside both token
/// groups and `<...>` generic brackets (angle brackets are plain puncts,
/// so `HashMap<K, V>` would otherwise split).
fn split_top_level_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle_depth = 0i32;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                out.push(std::mem::take(&mut cur));
                continue;
            }
            _ => {}
        }
        cur.push(tt);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// `(attrs) (pub (scope)?)? name : type` → field name + skip/default flags.
fn parse_field(tokens: Vec<TokenTree>) -> Result<Option<Field>, String> {
    let mut skip = false;
    let mut default = false;
    let mut iter = tokens.into_iter().peekable();
    loop {
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = iter.next() {
                    skip |= attr_has_serde_flag(&g, "skip");
                    default |= attr_has_serde_flag(&g, "default");
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            Some(TokenTree::Ident(id)) => {
                return Ok(Some(Field { name: id.to_string(), skip, default }));
            }
            Some(other) => return Err(format!("serde shim derive: bad field token `{other}`")),
            None => return Ok(None), // trailing comma
        }
    }
}

/// `(attrs) Name ((payload))?` → variant name + payload arity.
fn parse_variant(tokens: Vec<TokenTree>) -> Result<Option<Variant>, String> {
    let mut iter = tokens.into_iter().peekable();
    let name = loop {
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
            }
            Some(TokenTree::Ident(id)) => break id.to_string(),
            Some(other) => return Err(format!("serde shim derive: bad variant token `{other}`")),
            None => return Ok(None),
        }
    };
    let arity = match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let parts = split_top_level_commas(g.stream());
            parts.iter().filter(|p| !p.is_empty()).count()
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            return Err(format!("serde shim derive: struct variant `{name}` is not supported"))
        }
        _ => 0,
    };
    Ok(Some(Variant { name, arity }))
}

/// True when the attribute group is `[serde(... flag ...)]`.
fn attr_has_serde_flag(group: &proc_macro::Group, flag: &str) -> bool {
    let mut iter = group.stream().into_iter();
    match iter.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    match iter.next() {
        Some(TokenTree::Group(args)) => {
            args.stream().into_iter().any(|tt| matches!(&tt, TokenTree::Ident(id) if id.to_string() == flag))
        }
        _ => false,
    }
}
